//! The attack MI6 closes: cross-core LLC contention as a timing channel.
//!
//! An "attacker" enclave on core 0 sweeps a probe buffer a fixed number
//! of times and exits; we record its finish time. A "victim" enclave on
//! core 1 either idles (pure ALU spin) or hammers memory. The security
//! monitor gives the two enclaves DRAM regions that map to *disjoint LLC
//! set quadrants* (regions 5 and 6: different low region bits), exactly
//! as MI6's allocation policy requires.
//!
//! - On the **BASE** machine the LLC is not partitioned and its MSHRs,
//!   entry mux, and queues are shared, so the victim's memory traffic
//!   shifts the attacker's finish time — a timing channel.
//! - On the full **MI6** machine (Figure-3 LLC: set partitioning,
//!   per-core MSHR partitions, round-robin pipeline arbiter, split UQs,
//!   duplicated Downgrade-L1, retry-bit DQ, constant-latency DRAM with
//!   MSHRs sized to never backpressure it) the attacker's finish time is
//!   **identical to the cycle** whatever the victim does — the strong
//!   timing independence of Section 5.4.
//!
//! Run: `cargo run --release --example cache_side_channel`

use mi6::isa::{Assembler, Inst, Reg};
use mi6::mem::RegionId;
use mi6::monitor::SecurityMonitor;
use mi6::soc::loader::{Program, CODE_VA, DATA_VA};
use mi6::soc::{SimBuilder, Variant};

/// Attacker enclave: fixed number of probe sweeps over 128 KiB, then a
/// monitor call (ecall) to exit.
fn attacker() -> Program {
    let mut asm = Assembler::new(CODE_VA);
    asm.li(Reg::S0, DATA_VA);
    asm.li(Reg::S1, 30); // sweeps
    let sweep = asm.here();
    asm.li(Reg::T0, 0);
    asm.li(Reg::T1, 128 << 10);
    let line = asm.here();
    asm.push(Inst::add(Reg::T2, Reg::S0, Reg::T0));
    asm.push(Inst::ld(Reg::T3, Reg::T2, 0));
    asm.push(Inst::addi(Reg::T0, Reg::T0, 64));
    asm.bne(Reg::T0, Reg::T1, line);
    asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
    asm.bnez(Reg::S1, sweep);
    asm.push(Inst::Ecall); // enclave exit -> monitor
    Program {
        name: "attacker".into(),
        code: asm.assemble().expect("assembles"),
        data_size: 128 << 10,
        data_init: vec![],
        stack_size: 4096,
    }
}

/// Victim enclave: endless loop, either pure ALU (quiet) or a memory
/// hammer over 1 MiB (noisy). Never exits; the run ends when the
/// attacker does.
fn victim(noisy: bool) -> Program {
    let mut asm = Assembler::new(CODE_VA);
    asm.li(Reg::S0, DATA_VA);
    asm.li(Reg::S2, (1 << 20) - 64); // wrap mask
    asm.li(Reg::T0, 0);
    let top = asm.here();
    if noisy {
        asm.push(Inst::add(Reg::T2, Reg::S0, Reg::T0));
        asm.push(Inst::ld(Reg::T3, Reg::T2, 0));
        asm.push(Inst::addi(Reg::T0, Reg::T0, 64));
        asm.push(Inst::And {
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::S2,
        });
    } else {
        asm.push(Inst::addi(Reg::T2, Reg::T2, 1));
        asm.push(Inst::Xori {
            rd: Reg::T3,
            rs1: Reg::T3,
            imm: 5,
        });
        asm.nops(2);
    }
    asm.jump(top);
    Program {
        name: if noisy {
            "victim-noisy"
        } else {
            "victim-quiet"
        }
        .into(),
        code: asm.assemble().expect("assembles"),
        data_size: 1 << 20,
        data_init: vec![],
        stack_size: 4096,
    }
}

/// Loads both enclaves in set-disjoint regions and returns the cycle at
/// which the attacker halts.
pub fn attacker_finish_time(variant: Variant, noisy_victim: bool) -> u64 {
    let mut m = SimBuilder::new(variant)
        .cores(2)
        .without_timer()
        .build()
        .unwrap();
    let mut monitor = SecurityMonitor::new(&m);
    // Regions 5 and 6: low region bits 01 vs 10 — disjoint LLC quadrants
    // under the partitioned index.
    let atk = monitor
        .create_enclave(&mut m, &attacker(), &[RegionId(5)])
        .expect("attacker enclave");
    let vic = monitor
        .create_enclave(&mut m, &victim(noisy_victim), &[RegionId(6)])
        .expect("victim enclave");
    monitor.schedule(&mut m, 0, atk).expect("schedule attacker");
    monitor.schedule(&mut m, 1, vic).expect("schedule victim");
    let cap = 400_000_000;
    while !m.core(0).halted && m.now() < cap {
        m.tick();
    }
    assert!(m.core(0).halted, "attacker did not finish");
    m.now()
}

fn main() {
    println!("attacker enclave finish time with quiet vs noisy victim enclave:\n");
    for variant in [Variant::Base, Variant::SecureMi6] {
        let quiet = attacker_finish_time(variant, false);
        let noisy = attacker_finish_time(variant, true);
        let delta = noisy as i64 - quiet as i64;
        println!(
            "{:<10} quiet: {:>10}  noisy: {:>10}  delta: {:>8} cycles   {}",
            variant.name(),
            quiet,
            noisy,
            delta,
            if delta == 0 {
                "<- strong timing independence (no channel)"
            } else {
                "<- victim visible to attacker (timing channel!)"
            }
        );
    }
}
