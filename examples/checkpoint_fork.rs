//! Checkpoint/fork demo: warm one machine up, then fork the warmed state
//! across two variants and diff what each one does with it.
//!
//! ```text
//! cargo run --release --example checkpoint_fork
//! ```
//!
//! The flow is the warm-fork methodology `mi6-experiments --fork-base`
//! uses at grid scale:
//!
//! 1. run gcc's warm-up phase once, on the insecure BASE machine;
//! 2. drain to a memory-quiescent point and snapshot (`Machine::snapshot`);
//! 3. restore the *same* bytes into a BASE machine (exact resume — bit-
//!    identical to never having stopped) and into the full-MI6 machine
//!    (`Machine::restore_forked` — the LLC re-homes its lines under the
//!    partitioned index function);
//! 4. run both forks to completion and compare.

use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};

const WARMUP_CYCLES: u64 = 100_000;
const TIMER: u64 = 50_000;

fn main() {
    let params = WorkloadParams::evaluation().with_target_kinsts(200);

    // 1. Warm up once, on BASE.
    let mut warm = SimBuilder::new(Variant::Base)
        .timer_interval(TIMER)
        .workload(0, Workload::Gcc.build(&params))
        .build()
        .expect("build warm machine");
    warm.run_cycles(WARMUP_CYCLES);
    assert!(!warm.all_halted(), "warm-up consumed the whole workload");

    // 2. Reach a memory-quiescent point and snapshot.
    let drained = warm
        .drain_to_quiescence(1_000_000)
        .expect("machine quiesces");
    let snapshot = warm.snapshot();
    println!(
        "warmed {} cycles on BASE (+{drained} drain), snapshot: {} KiB",
        warm.now(),
        snapshot.len() / 1024
    );

    // 3. Fork the warmed state into both variants.
    let mut results = Vec::new();
    for variant in [Variant::Base, Variant::SecureMi6] {
        let mut fork = SimBuilder::new(variant)
            .timer_interval(TIMER)
            .build()
            .expect("build fork");
        fork.restore_forked(&snapshot).expect("restore warm state");
        let stats = fork
            .run_to_completion(2_000_000_000)
            .expect("fork completes");
        println!(
            "  forked into {variant:<10} finished at cycle {:>9}  \
             (IPC {:.3}, LLC MPKI {:.1})",
            stats.cycles,
            stats.core[0].ipc(),
            stats.llc_mpki(),
        );
        results.push((variant, stats));
    }

    // 4. Diff the forks: identical warmed past, divergent futures.
    let (base, mi6) = (&results[0].1, &results[1].1);
    // Both forks run the same user program; totals differ only by the
    // timer-trap handler work their different runtimes accumulate.
    let (a, b) = (
        base.core[0].committed_instructions,
        mi6.core[0].committed_instructions,
    );
    assert!(
        a.abs_diff(b) * 100 < a,
        "forks ran different programs: {a} vs {b} instructions"
    );
    let overhead = mi6.cycles as f64 / base.cycles as f64 - 1.0;
    println!(
        "same warmed prefix, one warm-up simulated once: MI6 costs {:.1}% over BASE \
         ({} vs {} cycles, +{} LLC misses)",
        overhead * 100.0,
        mi6.cycles,
        base.cycles,
        mi6.llc.misses.saturating_sub(base.llc.misses),
    );
}
