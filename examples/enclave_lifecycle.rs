//! Enclave lifecycle on the full MI6 machine: the security monitor
//! creates, measures, schedules, communicates with, deschedules, and
//! destroys an enclave (paper Section 6.2).
//!
//! Run: `cargo run --release --example enclave_lifecycle`

use mi6::isa::{Assembler, Inst, PhysAddr, Reg};
use mi6::mem::RegionId;
use mi6::monitor::SecurityMonitor;
use mi6::soc::loader::{Program, CODE_VA, DATA_VA};
use mi6::soc::{SimBuilder, Variant};

/// The enclave: sums the buffer the monitor memcopies in, stores the
/// result, and exits to the monitor via `ecall`.
fn enclave_program() -> Program {
    let mut asm = Assembler::new(CODE_VA);
    asm.li(Reg::S0, DATA_VA);
    asm.li(Reg::S1, 8); // 8 input words
    asm.li(Reg::A0, 0);
    let top = asm.here();
    asm.push(Inst::ld(Reg::T0, Reg::S0, 0));
    asm.push(Inst::add(Reg::A0, Reg::A0, Reg::T0));
    asm.push(Inst::addi(Reg::S0, Reg::S0, 8));
    asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
    asm.bnez(Reg::S1, top);
    asm.li(Reg::S0, DATA_VA);
    asm.push(Inst::sd(Reg::A0, Reg::S0, 256)); // result at +256
    asm.push(Inst::Ecall); // exit to the monitor
    Program {
        name: "secret-summer".into(),
        code: asm.assemble().expect("assembles"),
        data_size: 4096,
        data_init: vec![],
        stack_size: 4096,
    }
}

fn main() {
    let mut machine = SimBuilder::new(Variant::SecureMi6)
        .without_timer()
        .build()
        .unwrap();
    let mut monitor = SecurityMonitor::new(&machine);

    // 1. Create: regions 8+9 are claimed, scrubbed, loaded, measured.
    let id = monitor
        .create_enclave(
            &mut machine,
            &enclave_program(),
            &[RegionId(8), RegionId(9)],
        )
        .expect("create enclave");
    let attestation = monitor.attest(id).expect("attest");
    println!("created {id}");
    println!("measurement : {}", attestation.measurement);
    println!("signature   : {}", attestation.signature);

    // 2. The OS supplies input through the monitor's privileged memcopy.
    let os_buf = PhysAddr::new(0x0070_0000);
    for i in 0..8u64 {
        machine
            .mem_mut()
            .phys
            .write_u64(PhysAddr::new(os_buf.raw() + i * 8), (i + 1) * 10);
    }
    monitor
        .memcopy_to_enclave(&mut machine, id, os_buf, DATA_VA, 64)
        .expect("memcopy in");

    // 3. Schedule: the core is purged and starts at the enclave entry.
    monitor.schedule(&mut machine, 0, id).expect("schedule");
    println!("scheduled; purge #{} charged", machine.core(0).stats.purges);
    machine.run_to_completion(50_000_000).expect("enclave runs");

    // 4. Read the result back out through the monitor.
    let os_out = PhysAddr::new(0x0071_0000);
    monitor
        .memcopy_from_enclave(&mut machine, id, DATA_VA + 256, os_out, 8)
        .expect("memcopy out");
    let result = machine.mem().phys.read_u64(os_out);
    println!(
        "enclave result = {result} (expected {})",
        (1..=8).map(|i| i * 10).sum::<u64>()
    );

    // 5. Mailbox: the enclave's "local attestation" message to the OS.
    let mut msg = [0u8; 64];
    msg[..8].copy_from_slice(&result.to_le_bytes());
    monitor.mailbox_send(Some(id), None, msg).expect("mailbox");
    let received = monitor.mailbox_recv(None).expect("recv");
    println!(
        "mailbox from {:?}: first 8 bytes = {:?}",
        received.from,
        &received.data[..8]
    );

    // 6. Deschedule (second purge) and destroy (regions scrubbed + freed).
    monitor.deschedule(&mut machine, id).expect("deschedule");
    monitor.destroy(&mut machine, id).expect("destroy");
    println!(
        "destroyed; total purges on core 0: {}",
        machine.core(0).stats.purges
    );
    assert!(monitor.check_invariants());
}
