//! Quickstart: build a BASE machine, run a SPEC-shaped workload under the
//! toy OS, and print the counters the paper's evaluation is built from.
//!
//! Run: `cargo run --release --example quickstart`

use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};

fn main() {
    let mut machine = SimBuilder::new(Variant::Base).build().unwrap();
    let program = Workload::Bzip2.build(&WorkloadParams::tiny().with_target_kinsts(200));
    machine.load_user_program(0, &program).expect("load");
    let stats = machine.run_to_completion(200_000_000).expect("run");

    let core = &stats.core[0];
    println!("workload          : {}", program.name);
    println!("cycles            : {}", stats.cycles);
    println!("instructions      : {}", core.committed_instructions);
    println!("IPC               : {:.3}", core.ipc());
    println!("branch MPKI       : {:.1}", core.mispredicts_per_kinst());
    println!("LLC MPKI          : {:.1}", stats.llc_mpki());
    println!(
        "L1D hits/misses   : {}/{}",
        stats.l1d[0].hits, stats.l1d[0].misses
    );
    println!("page walks        : {}", core.page_walks);
    println!("traps (OS)        : {}", core.traps);
    println!("DRAM reads/writes : {}/{}", stats.dram.0, stats.dram.1);
}
