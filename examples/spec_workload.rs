//! Run any SPEC-shaped workload on any processor variant.
//!
//! Usage: `cargo run --release --example spec_workload -- <workload> <variant> [kinsts]`
//! e.g.   `cargo run --release --example spec_workload -- astar flush 500`

use mi6::soc::{SimBuilder, Variant};
use mi6::workloads::{Workload, WorkloadParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wname = args.get(1).map(String::as_str).unwrap_or("bzip2");
    let vname = args.get(2).map(String::as_str).unwrap_or("base");
    let kinsts: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(300);

    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.name() == wname)
        .unwrap_or_else(|| {
            panic!(
                "unknown workload `{wname}`; one of: {:?}",
                Workload::ALL.map(|w| w.name())
            )
        });
    let variant = match vname.to_ascii_lowercase().as_str() {
        "base" => Variant::Base,
        "flush" => Variant::Flush,
        "part" => Variant::Part,
        "miss" => Variant::Miss,
        "arb" => Variant::Arb,
        "nonspec" => Variant::NonSpec,
        "fpma" | "f+p+m+a" => Variant::Fpma,
        "mi6" | "secure" => Variant::SecureMi6,
        other => panic!("unknown variant `{other}`"),
    };

    let mut machine = SimBuilder::new(variant).build().unwrap();
    let params = WorkloadParams::evaluation().with_target_kinsts(kinsts);
    machine
        .load_user_program(0, &workload.build(&params))
        .expect("load");
    let stats = machine.run_to_completion(4_000_000_000).expect("run");
    let core = &stats.core[0];
    println!("{workload} on {variant}: {} cycles, {} inst, IPC {:.3}, branch MPKI {:.1}, LLC MPKI {:.1}, {} traps, {} flush-stall cycles",
        stats.cycles, core.committed_instructions, core.ipc(),
        core.mispredicts_per_kinst(), stats.llc_mpki(), core.traps,
        core.flush_stall_cycles);
}
