//! # mi6 — a reproduction of *MI6: Secure Enclaves in a Speculative
//! Out-of-Order Processor* (MICRO 2019)
//!
//! This facade crate re-exports the whole reproduction:
//!
//! - [`isa`] — the RISC-V-inspired ISA, assembler, CSRs, paging, and the
//!   paper's `purge` instruction.
//! - [`mem`] — the memory hierarchy: L1 caches, the RiscyOO last-level cache
//!   with its Figure-2 internals, the MI6 Figure-3 strong-isolation LLC,
//!   MSI coherence, and the constant-latency DRAM controller.
//! - [`core`] — the cycle-level speculative out-of-order core (Figure 4
//!   configuration) with MI6's hardware modifications.
//! - [`soc`] — the multi-core SoC, the seven evaluation processor variants
//!   (BASE / FLUSH / PART / MISS / ARB / NONSPEC / F+P+M+A), the toy
//!   untrusted OS, and the program loader.
//! - [`monitor`] — the security monitor: enclave lifecycle, DRAM-region
//!   allocation, mailboxes, the privileged memcopy, and measurement.
//! - [`workloads`] — eleven SPEC-CINT2006-shaped synthetic workloads.
//!
//! ## Quickstart
//!
//! ```
//! use mi6::soc::{SimBuilder, Variant};
//! use mi6::workloads::{Workload, WorkloadParams};
//!
//! // Build a single-core BASE machine and run a tiny workload to completion.
//! let mut machine = SimBuilder::new(Variant::Base)
//!     .workload(0, Workload::Bzip2.build(&WorkloadParams::tiny()))
//!     .build()
//!     .unwrap();
//! let stats = machine.run_to_completion(50_000_000).unwrap();
//! assert!(stats.core[0].committed_instructions > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured numbers of every figure.

pub use mi6_core as core;
pub use mi6_isa as isa;
pub use mi6_mem as mem;
pub use mi6_monitor as monitor;
pub use mi6_snapshot as snapshot;
pub use mi6_soc as soc;
pub use mi6_workloads as workloads;
