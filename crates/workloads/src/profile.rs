//! Workload profiles: the knobs that shape a synthetic benchmark.
//!
//! Each SPEC CINT2006 benchmark is modelled by a [`Profile`] whose knobs
//! reproduce the characteristics the paper itself reports for it
//! (Figure 7 branch MPKI, Figure 9 LLC MPKI, the xalancbmk syscall rate,
//! libquantum's streaming, mcf's pointer chasing, h264ref's ILP, astar's
//! data-dependent branches, gcc's multi-megabyte sequentially-allocated
//! working set). The generator in [`crate::generate`] lowers a profile to
//! an assembled program.

/// Scale of a generated run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Target run length in thousands of committed instructions. The
    /// generator converts this to a loop count using
    /// [`Profile::insts_per_iteration`], so every workload runs a
    /// comparable instruction volume.
    pub target_kinsts: u64,
    /// RNG seed for data layouts (pointer-chase permutations).
    pub seed: u64,
}

impl WorkloadParams {
    /// The default evaluation scale (a few million instructions).
    pub fn evaluation() -> WorkloadParams {
        WorkloadParams {
            target_kinsts: 3_000,
            seed: 0xC0FFEE,
        }
    }

    /// A tiny scale for unit tests and doc examples.
    pub fn tiny() -> WorkloadParams {
        WorkloadParams {
            target_kinsts: 40,
            seed: 7,
        }
    }

    /// Custom instruction target (in thousands).
    pub fn with_target_kinsts(mut self, target_kinsts: u64) -> WorkloadParams {
        self.target_kinsts = target_kinsts;
        self
    }

    /// Custom data-layout seed (distinct seeds give statistically
    /// independent runs of the same benchmark — the `--seeds` knob of
    /// `mi6-experiments`).
    pub fn with_seed(mut self, seed: u64) -> WorkloadParams {
        self.seed = seed;
        self
    }
}

impl Default for WorkloadParams {
    fn default() -> WorkloadParams {
        WorkloadParams::evaluation()
    }
}

/// How hard a workload's data-dependent branches are to predict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchStyle {
    /// Heavily biased / loop-like: near-perfect prediction (libquantum,
    /// h264ref, hmmer).
    Easy,
    /// Mixed patterns with learnable structure (bzip2, gcc, omnetpp).
    Medium,
    /// Data-dependent, effectively random bits (astar, gobmk, sjeng).
    Hard,
}

/// The shape of one synthetic benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Profile {
    /// Bytes swept sequentially per program (streaming array; 0 = none).
    pub stream_bytes: u64,
    /// Lines streamed per iteration.
    pub stream_lines_per_iter: u32,
    /// Bytes of the pointer-chase arena (0 = none).
    pub chase_bytes: u64,
    /// Nodes chased per iteration.
    pub chase_nodes_per_iter: u32,
    /// Bytes of the random-access working set (0 = none).
    pub ws_bytes: u64,
    /// Random accesses into the working set per iteration.
    pub ws_accesses_per_iter: u32,
    /// Number of distinct data-dependent branch sites in the loop body
    /// (predictor/BTB footprint).
    pub branch_sites: u32,
    /// Difficulty of those branches.
    pub branch_style: BranchStyle,
    /// Independent ALU operations per iteration (ILP).
    pub ilp_ops: u32,
    /// Multiply/divide operations per iteration.
    pub muldiv_ops: u32,
    /// Issue a `print` syscall every N iterations (0 = never).
    pub syscall_every: u32,
}

impl Profile {
    /// A rough per-iteration instruction count, used to normalise run
    /// lengths across workloads.
    pub fn insts_per_iteration(&self) -> u64 {
        let stream = self.stream_lines_per_iter as u64 * 4;
        let chase = self.chase_nodes_per_iter as u64 * 2;
        let ws = self.ws_accesses_per_iter as u64 * 6;
        let branches = self.branch_sites as u64 * 4;
        let ilp = self.ilp_ops as u64;
        let muldiv = self.muldiv_ops as u64;
        8 + stream + chase + ws + branches + ilp + muldiv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_presets() {
        assert!(WorkloadParams::evaluation().target_kinsts > WorkloadParams::tiny().target_kinsts);
        assert_eq!(
            WorkloadParams::tiny().with_target_kinsts(5).target_kinsts,
            5
        );
    }

    #[test]
    fn insts_per_iteration_scales_with_knobs() {
        let base = Profile {
            stream_bytes: 0,
            stream_lines_per_iter: 0,
            chase_bytes: 0,
            chase_nodes_per_iter: 0,
            ws_bytes: 0,
            ws_accesses_per_iter: 0,
            branch_sites: 0,
            branch_style: BranchStyle::Easy,
            ilp_ops: 0,
            muldiv_ops: 0,
            syscall_every: 0,
        };
        let more = Profile {
            branch_sites: 10,
            ilp_ops: 20,
            ..base
        };
        assert!(more.insts_per_iteration() > base.insts_per_iteration());
    }
}
