//! # mi6-workloads
//!
//! Eleven synthetic workloads shaped after the SPEC CINT2006 benchmarks
//! the paper evaluates (Section 7; perlbench is excluded exactly as in the
//! paper, which could not cross-compile it). Each workload's [`Profile`]
//! is tuned to reproduce the characteristics the paper itself reports:
//!
//! - **bzip2** — block-transform flavour: medium working set, mixed
//!   branches, multiplies.
//! - **gcc** — several megabytes of sequentially-allocated working set
//!   with irregular access; the PART victim (Figures 8–9: misses double).
//! - **mcf** — pointer chasing over a large arena; the highest LLC MPKI
//!   (Figure 9 shows ~91).
//! - **gobmk** — branchy game-tree evaluation (hard branches).
//! - **hmmer** — regular dynamic-programming inner loop: high ILP, easy
//!   branches.
//! - **sjeng** — branchy search with a mid-size table.
//! - **libquantum** — pure streaming over a big array; latency-bound
//!   (the ARB victim, Figure 11).
//! - **h264ref** — ILP-dense kernels (the NONSPEC victim, Figure 12:
//!   427 %).
//! - **omnetpp** — event-queue pointer chasing plus a medium working set.
//! - **astar** — data-dependent branches over a pointer-rich arena (the
//!   FLUSH and MISS victim; Figure 7: 30.1 → 46.2 MPKI).
//! - **xalancbmk** — frequent syscalls (stdout) driving trap-flush stalls
//!   (Figure 6: the tallest stall bar).
//!
//! ```
//! use mi6_workloads::{Workload, WorkloadParams};
//!
//! let program = Workload::Mcf.build(&WorkloadParams::tiny());
//! assert_eq!(program.name, "mcf");
//! assert!(!program.code.is_empty());
//! ```

pub mod generate;
pub mod profile;

pub use generate::generate;
pub use profile::{BranchStyle, Profile, WorkloadParams};

use mi6_soc::loader::Program;

/// Per-run cycle budgets.
///
/// Every driver of a workload needs a "the run is stuck" cap on simulated
/// cycles; these used to be magic literals scattered across test modules
/// and harnesses. The budgets are deliberately generous — they exist to
/// catch hangs, not to bound normal runs, so a workload finishing anywhere
/// near its budget is a bug.
pub mod budget {
    /// Cycles granted per thousand target instructions: a hung run is
    /// one that fails to average even one commit per thousand cycles.
    pub const CYCLES_PER_KINST: u64 = 1_000_000;
    /// Floor for the scaled budget, so short runs (tiny kinst targets)
    /// still get room for warm-up transients and kernel work.
    pub const MIN_RUN_CYCLES: u64 = 400_000_000;
    /// Budget for tiny smoke runs (`WorkloadParams::tiny`, ~40k
    /// instructions).
    pub const TINY_RUN_CYCLES: u64 = 60_000_000;
    /// Budget for mid-size runs (~150k-instruction targets, e.g. the
    /// trap-rate characterization).
    pub const MID_RUN_CYCLES: u64 = 120_000_000;
    /// Budget for long characterization runs (~400k-instruction
    /// targets, e.g. LLC-residency checks).
    pub const LONG_RUN_CYCLES: u64 = 400_000_000;

    /// The standard harness budget for a `kinsts`-thousand-instruction
    /// run: scaled by [`CYCLES_PER_KINST`], floored at
    /// [`MIN_RUN_CYCLES`]. Both the benchmark harness and the grid
    /// driver derive their `Machine::begin_run` deadlines from this.
    pub fn cycle_cap(kinsts: u64) -> u64 {
        kinsts.saturating_mul(CYCLES_PER_KINST).max(MIN_RUN_CYCLES)
    }
}

/// One of the eleven SPEC-CINT2006-shaped workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 401.bzip2
    Bzip2,
    /// 403.gcc
    Gcc,
    /// 429.mcf
    Mcf,
    /// 445.gobmk
    Gobmk,
    /// 456.hmmer
    Hmmer,
    /// 458.sjeng
    Sjeng,
    /// 462.libquantum
    Libquantum,
    /// 464.h264ref
    H264ref,
    /// 471.omnetpp
    Omnetpp,
    /// 473.astar
    Astar,
    /// 483.xalancbmk
    Xalancbmk,
    /// The adversarial enclave victim: a dependent pointer chase over a
    /// 256 KiB arena — the access pattern *maximally* sensitive to LLC
    /// eviction (every load's latency is fully exposed, and each lap
    /// revisits every line). The arena size is deliberate: it fits the
    /// shared 1 MiB LLC (so on BASE its steady state is all-hits and an
    /// attacker's stream is what destroys it) *and* fits the 256 KiB
    /// partition MI6's region-keyed indexing leaves a one-region enclave
    /// (so MI6's protection, not its capacity loss, dominates the
    /// contrast). Promoted out of the `enclave-attacker` scenario so
    /// plain figure grids and shards can run it like any other workload;
    /// not part of [`Workload::ALL`] because the paper's figures don't
    /// include it.
    EnclaveWs,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 11] = [
        Workload::Bzip2,
        Workload::Gcc,
        Workload::Mcf,
        Workload::Gobmk,
        Workload::Hmmer,
        Workload::Sjeng,
        Workload::Libquantum,
        Workload::H264ref,
        Workload::Omnetpp,
        Workload::Astar,
        Workload::Xalancbmk,
    ];

    /// [`Workload::ALL`] plus the adversarial additions — what a grid can
    /// run, as opposed to what the paper's figures chart.
    pub const WITH_ADVERSARIAL: [Workload; 12] = [
        Workload::Bzip2,
        Workload::Gcc,
        Workload::Mcf,
        Workload::Gobmk,
        Workload::Hmmer,
        Workload::Sjeng,
        Workload::Libquantum,
        Workload::H264ref,
        Workload::Omnetpp,
        Workload::Astar,
        Workload::Xalancbmk,
        Workload::EnclaveWs,
    ];

    /// The workload whose display name is `name` (the inverse of
    /// [`Workload::name`]; how shard-journal JSON lines and `--workload`
    /// flags map back to workloads).
    pub fn from_name(name: &str) -> Option<Workload> {
        Workload::WITH_ADVERSARIAL
            .into_iter()
            .find(|w| w.name() == name)
    }

    /// The benchmark's display name (as in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Bzip2 => "bzip2",
            Workload::Gcc => "gcc",
            Workload::Mcf => "mcf",
            Workload::Gobmk => "gobmk",
            Workload::Hmmer => "hmmer",
            Workload::Sjeng => "sjeng",
            Workload::Libquantum => "libquantum",
            Workload::H264ref => "h264ref",
            Workload::Omnetpp => "omnetpp",
            Workload::Astar => "astar",
            Workload::Xalancbmk => "xalancbmk",
            Workload::EnclaveWs => "enclave-ws",
        }
    }

    /// The profile that shapes this workload.
    pub fn profile(self) -> Profile {
        let base = Profile {
            stream_bytes: 0,
            stream_lines_per_iter: 0,
            chase_bytes: 0,
            chase_nodes_per_iter: 0,
            ws_bytes: 0,
            ws_accesses_per_iter: 0,
            branch_sites: 0,
            branch_style: BranchStyle::Medium,
            ilp_ops: 0,
            muldiv_ops: 0,
            syscall_every: 0,
        };
        match self {
            Workload::Bzip2 => Profile {
                stream_bytes: 256 << 10,
                stream_lines_per_iter: 2,
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 3,
                branch_sites: 24,
                branch_style: BranchStyle::Medium,
                ilp_ops: 6,
                muldiv_ops: 2,
                ..base
            },
            Workload::Gcc => Profile {
                // A working set that *fits* the 1 MiB LLC on BASE but
                // conflicts hard in the 4x-fewer sets PART leaves it
                // (sequentially allocated pages share their high bits —
                // the Section 7.2 observation): the PART victim.
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 8,
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 2,
                branch_sites: 32,
                branch_style: BranchStyle::Medium,
                ilp_ops: 4,
                ..base
            },
            Workload::Mcf => Profile {
                chase_bytes: 16 << 20,
                chase_nodes_per_iter: 8,
                branch_sites: 12,
                branch_style: BranchStyle::Medium,
                ilp_ops: 2,
                ..base
            },
            Workload::Gobmk => Profile {
                ws_bytes: 512 << 10,
                ws_accesses_per_iter: 2,
                branch_sites: 64,
                branch_style: BranchStyle::Hard,
                ilp_ops: 4,
                muldiv_ops: 1,
                ..base
            },
            Workload::Hmmer => Profile {
                stream_bytes: 512 << 10,
                stream_lines_per_iter: 3,
                branch_sites: 4,
                branch_style: BranchStyle::Easy,
                ilp_ops: 16,
                muldiv_ops: 2,
                ..base
            },
            Workload::Sjeng => Profile {
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 2,
                branch_sites: 48,
                branch_style: BranchStyle::Hard,
                ilp_ops: 4,
                muldiv_ops: 1,
                ..base
            },
            Workload::Libquantum => Profile {
                stream_bytes: 8 << 20,
                stream_lines_per_iter: 8,
                branch_sites: 4,
                branch_style: BranchStyle::Easy,
                ilp_ops: 4,
                ..base
            },
            Workload::H264ref => Profile {
                stream_bytes: 256 << 10,
                stream_lines_per_iter: 2,
                branch_sites: 6,
                branch_style: BranchStyle::Easy,
                ilp_ops: 24,
                muldiv_ops: 4,
                ..base
            },
            Workload::Omnetpp => Profile {
                chase_bytes: 4 << 20,
                chase_nodes_per_iter: 4,
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 3,
                branch_sites: 32,
                branch_style: BranchStyle::Medium,
                ilp_ops: 2,
                ..base
            },
            Workload::Astar => Profile {
                chase_bytes: 2 << 20,
                chase_nodes_per_iter: 3,
                branch_sites: 96,
                branch_style: BranchStyle::Hard,
                ilp_ops: 2,
                ..base
            },
            Workload::Xalancbmk => Profile {
                ws_bytes: 2 << 20,
                ws_accesses_per_iter: 4,
                branch_sites: 32,
                branch_style: BranchStyle::Medium,
                ilp_ops: 4,
                // roughly one syscall per ~10k instructions
                syscall_every: 48,
                ..base
            },
            Workload::EnclaveWs => Profile {
                chase_bytes: 256 << 10,
                chase_nodes_per_iter: 8,
                branch_sites: 2,
                branch_style: BranchStyle::Easy,
                ilp_ops: 2,
                ..base
            },
        }
    }

    /// Builds the assembled program at the given scale.
    pub fn build(self, params: &WorkloadParams) -> Program {
        generate(self.name(), &self.profile(), params)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_soc::SimBuilder;

    #[test]
    fn all_workloads_assemble() {
        for w in Workload::WITH_ADVERSARIAL {
            let p = w.build(&WorkloadParams::tiny());
            assert!(!p.code.is_empty(), "{w}");
            assert!(
                p.code.len() * 4 <= 48 << 10,
                "{w} code too large: {} bytes",
                p.code.len() * 4
            );
            for &word in &p.code {
                mi6_isa::decode(word).unwrap_or_else(|e| panic!("{w}: {e}"));
            }
        }
    }

    fn run_tiny(w: Workload) -> mi6_soc::MachineStats {
        let mut m = SimBuilder::base().without_timer().build().unwrap();
        m.load_user_program(0, &w.build(&WorkloadParams::tiny()))
            .unwrap_or_else(|e| panic!("{w}: {e}"));
        m.run_to_completion(budget::TINY_RUN_CYCLES)
            .unwrap_or_else(|e| panic!("{w}: {e}"))
    }

    #[test]
    fn from_name_inverts_name() {
        for w in Workload::WITH_ADVERSARIAL {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert_eq!(Workload::from_name("perlbench"), None);
        // The adversarial victim is runnable but not in the paper set.
        assert_eq!(Workload::from_name("enclave-ws"), Some(Workload::EnclaveWs));
        assert!(!Workload::ALL.contains(&Workload::EnclaveWs));
    }

    #[test]
    fn adversarial_set_is_a_strict_superset_of_all() {
        // WITH_ADVERSARIAL is what from_name (and thus --workload and
        // shard-journal parsing) consults: a workload added to ALL but
        // forgotten here would journal fine yet fail to parse back,
        // making merges report it missing forever.
        for w in Workload::ALL {
            assert!(
                Workload::WITH_ADVERSARIAL.contains(&w),
                "{w} missing from WITH_ADVERSARIAL"
            );
        }
        assert_eq!(Workload::WITH_ADVERSARIAL.len(), Workload::ALL.len() + 1);
    }

    #[test]
    fn enclave_ws_becomes_llc_resident() {
        // Long enough for several laps over the 256 KiB arena: after the
        // compulsory first lap, the chase is all-hits in the shared LLC
        // (that residency is exactly what the scenario's attacker
        // destroys), so LLC MPKI must collapse far below a chase that
        // overflows the LLC (mcf, 16 MiB arena).
        let run = |w: Workload| {
            let mut m = SimBuilder::base().without_timer().build().unwrap();
            m.load_user_program(0, &w.build(&WorkloadParams::tiny().with_target_kinsts(400)))
                .unwrap();
            m.run_to_completion(budget::LONG_RUN_CYCLES).unwrap()
        };
        let ws = run(Workload::EnclaveWs);
        let inst = ws.core[0].committed_instructions;
        assert!(inst > 200_000, "inst {inst}");
        let mcf = run(Workload::Mcf);
        assert!(
            ws.llc_mpki() < mcf.llc_mpki() / 2.0,
            "enclave-ws {} vs mcf {}",
            ws.llc_mpki(),
            mcf.llc_mpki()
        );
    }

    #[test]
    fn bzip2_runs_to_completion() {
        let stats = run_tiny(Workload::Bzip2);
        // Instruction volume near the 40k target (plus kernel work).
        let inst = stats.core[0].committed_instructions;
        assert!((20_000..250_000).contains(&inst), "inst {inst}");
    }

    #[test]
    fn mcf_misses_much_more_than_hmmer() {
        let mcf = run_tiny(Workload::Mcf);
        let hmmer = run_tiny(Workload::Hmmer);
        // At the tiny scale compulsory misses dominate both (hmmer's
        // stream is entirely cold), so the gap is smaller than at
        // evaluation scale — but mcf must still clearly lead.
        assert!(
            mcf.llc_mpki() > 2.0 * hmmer.llc_mpki().max(0.1),
            "mcf {} vs hmmer {}",
            mcf.llc_mpki(),
            hmmer.llc_mpki()
        );
    }

    #[test]
    fn astar_mispredicts_much_more_than_h264ref() {
        let astar = run_tiny(Workload::Astar);
        let h264 = run_tiny(Workload::H264ref);
        assert!(
            astar.branch_mpki() > 3.0 * h264.branch_mpki().max(0.5),
            "astar {} vs h264ref {}",
            astar.branch_mpki(),
            h264.branch_mpki()
        );
    }

    #[test]
    fn xalancbmk_traps_frequently() {
        let run = |w: Workload| {
            let mut m = SimBuilder::base().without_timer().build().unwrap();
            m.load_user_program(0, &w.build(&WorkloadParams::tiny().with_target_kinsts(150)))
                .unwrap();
            m.run_to_completion(budget::MID_RUN_CYCLES).unwrap()
        };
        let xalan = run(Workload::Xalancbmk);
        let quiet = run(Workload::Libquantum);
        assert!(
            xalan.core[0].traps > 4 * quiet.core[0].traps.max(1),
            "xalan {} vs libquantum {}",
            xalan.core[0].traps,
            quiet.core[0].traps
        );
    }
}
