//! Lowers a [`Profile`] to an assembled user [`Program`].
//!
//! The generated program is one big measurement loop whose body mixes the
//! behaviours the profile asks for:
//!
//! 1. a sequential **streaming** sweep (libquantum-style),
//! 2. a **pointer chase** through a randomly-permuted linked list
//!    (mcf/omnetpp-style; every hop is a data-dependent load),
//! 3. **random accesses** into a working set via an in-register xorshift
//!    (gcc-style capacity/conflict pressure; odd sites store, producing
//!    dirty lines and writebacks),
//! 4. `branch_sites` distinct **data-dependent branch** sites (astar/
//!    gobmk-style predictor and BTB footprint),
//! 5. independent **ILP** ALU operations (h264ref-style),
//! 6. **multiply/divide** work (bzip2/hmmer-style),
//! 7. an optional periodic **syscall** (xalancbmk-style).
//!
//! All sizes must be powers of two (wrap-around uses AND masks).

use crate::profile::{BranchStyle, Profile, WorkloadParams};
use mi6_isa::{Assembler, Inst, Reg};
use mi6_soc::kernel;
use mi6_soc::loader::{Program, CODE_VA, DATA_VA};

/// A small deterministic PRNG (splitmix64) so workload generation needs no
/// external crates and a given seed always produces the same data layout.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// Register allocation for generated code (documented for readers of the
/// disassembly).
mod regs {
    use mi6_isa::Reg;
    /// Stream array base VA.
    pub const STREAM_BASE: Reg = Reg::S0;
    /// Stream offset cursor.
    pub const STREAM_OFF: Reg = Reg::S1;
    /// Pointer-chase cursor (holds a VA).
    pub const CHASE: Reg = Reg::S2;
    /// Working-set base VA.
    pub const WS_BASE: Reg = Reg::S3;
    /// xorshift PRNG state.
    pub const RNG: Reg = Reg::S4;
    /// Remaining iterations.
    pub const ITER: Reg = Reg::S5;
    /// Syscall countdown.
    pub const SYS_CNT: Reg = Reg::S6;
    /// Stream wrap mask.
    pub const STREAM_MASK: Reg = Reg::S7;
    /// Working-set wrap mask.
    pub const WS_MASK: Reg = Reg::S8;
    /// Accumulator (keeps loads live).
    pub const ACC: Reg = Reg::S9;
}

/// Builds the program for a profile at the given scale.
pub fn generate(name: &str, profile: &Profile, params: &WorkloadParams) -> Program {
    let mut rng = SplitMix64(params.seed);
    // ---- data layout ----
    let stream_off = 0u64;
    let chase_off = stream_off + profile.stream_bytes;
    let ws_off = chase_off + profile.chase_bytes;
    let data_size = (ws_off + profile.ws_bytes).max(4096);
    let mut data_init = Vec::new();
    // Pointer-chase permutation: one cycle visiting every node once.
    if profile.chase_bytes > 0 {
        let nodes = (profile.chase_bytes / 64) as usize;
        let mut order: Vec<usize> = (1..nodes).collect();
        rng.shuffle(&mut order);
        // Chain: 0 -> order[0] -> order[1] -> ... -> back to 0.
        let mut cur = 0usize;
        for &next in order.iter().chain(std::iter::once(&0)) {
            data_init.push((
                chase_off + cur as u64 * 64,
                DATA_VA + chase_off + next as u64 * 64,
            ));
            cur = next;
        }
    }

    // ---- code ----
    let mut asm = Assembler::new(CODE_VA);
    asm.li(regs::STREAM_BASE, DATA_VA + stream_off);
    asm.li(regs::STREAM_OFF, 0);
    asm.li(regs::CHASE, DATA_VA + chase_off);
    asm.li(regs::WS_BASE, DATA_VA + ws_off);
    asm.li(regs::RNG, params.seed | 1);
    asm.li(regs::ACC, 0);
    if profile.stream_bytes > 0 {
        asm.li(regs::STREAM_MASK, profile.stream_bytes - 1);
    }
    if profile.ws_bytes > 0 {
        asm.li(regs::WS_MASK, (profile.ws_bytes - 1) & !7);
    }
    if profile.syscall_every > 0 {
        asm.li(regs::SYS_CNT, profile.syscall_every as u64);
    }
    let iterations = params
        .target_kinsts
        .saturating_mul(1000)
        .div_ceil(profile.insts_per_iteration())
        .max(1);
    asm.li(regs::ITER, iterations);

    let top = asm.here();
    // 1. streaming sweep
    for _ in 0..profile.stream_lines_per_iter {
        asm.push(Inst::add(Reg::T0, regs::STREAM_BASE, regs::STREAM_OFF));
        asm.push(Inst::ld(Reg::T1, Reg::T0, 0));
        asm.push(Inst::add(regs::ACC, regs::ACC, Reg::T1));
        asm.push(Inst::addi(regs::STREAM_OFF, regs::STREAM_OFF, 64));
        asm.push(Inst::And {
            rd: regs::STREAM_OFF,
            rs1: regs::STREAM_OFF,
            rs2: regs::STREAM_MASK,
        });
    }
    // 2. pointer chase
    for _ in 0..profile.chase_nodes_per_iter {
        asm.push(Inst::ld(regs::CHASE, regs::CHASE, 0));
    }
    // advance the PRNG once per iteration (xorshift64)
    asm.push(Inst::Srli {
        rd: Reg::T0,
        rs1: regs::RNG,
        sh: 12,
    });
    asm.push(Inst::Xor {
        rd: regs::RNG,
        rs1: regs::RNG,
        rs2: Reg::T0,
    });
    asm.push(Inst::Slli {
        rd: Reg::T0,
        rs1: regs::RNG,
        sh: 25,
    });
    asm.push(Inst::Xor {
        rd: regs::RNG,
        rs1: regs::RNG,
        rs2: Reg::T0,
    });
    asm.push(Inst::Srli {
        rd: Reg::T0,
        rs1: regs::RNG,
        sh: 27,
    });
    asm.push(Inst::Xor {
        rd: regs::RNG,
        rs1: regs::RNG,
        rs2: Reg::T0,
    });
    // 3. random working-set accesses
    for site in 0..profile.ws_accesses_per_iter {
        let shift = 3 + (site % 13) as u8;
        asm.push(Inst::Srli {
            rd: Reg::T0,
            rs1: regs::RNG,
            sh: shift,
        });
        asm.push(Inst::And {
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: regs::WS_MASK,
        });
        asm.push(Inst::add(Reg::T0, regs::WS_BASE, Reg::T0));
        if site % 2 == 1 {
            asm.push(Inst::sd(regs::ACC, Reg::T0, 0));
        } else {
            asm.push(Inst::ld(Reg::T1, Reg::T0, 0));
            asm.push(Inst::add(regs::ACC, regs::ACC, Reg::T1));
        }
    }
    // 4. data-dependent branch sites
    for site in 0..profile.branch_sites {
        let skip = asm.new_label();
        match profile.branch_style {
            BranchStyle::Hard => {
                if site % 4 == 0 {
                    // A fresh pseudo-random bit per iteration: never
                    // predictable (sets the high baseline MPKI).
                    let shift = (site % 48) as u8;
                    asm.push(Inst::Srli {
                        rd: Reg::T0,
                        rs1: regs::RNG,
                        sh: shift,
                    });
                    asm.push(Inst::Andi {
                        rd: Reg::T0,
                        rs1: Reg::T0,
                        imm: 1,
                    });
                } else {
                    // Deep periodic patterns (period up to 64): learnable
                    // once the local/global histories warm up, so a purge
                    // costs real re-learning — the astar effect the paper
                    // measures in Figure 7.
                    let shift = (site % 6) as u8;
                    asm.push(Inst::Srli {
                        rd: Reg::T0,
                        rs1: regs::ITER,
                        sh: shift,
                    });
                    asm.push(Inst::Andi {
                        rd: Reg::T0,
                        rs1: Reg::T0,
                        imm: 1,
                    });
                }
            }
            BranchStyle::Medium => {
                if site % 8 == 0 {
                    // A sprinkling of data-dependent bits sets the
                    // realistic baseline MPKI (SPEC int codes sit near
                    // 10-20 MPKI on this predictor).
                    let shift = (site % 48) as u8;
                    asm.push(Inst::Srli {
                        rd: Reg::T0,
                        rs1: regs::RNG,
                        sh: shift,
                    });
                    asm.push(Inst::Andi {
                        rd: Reg::T0,
                        rs1: Reg::T0,
                        imm: 1,
                    });
                } else {
                    // Periodic in the iteration counter: learnable
                    // patterns of period 2..16 depending on the site.
                    let shift = (site % 4) as u8;
                    asm.push(Inst::Srli {
                        rd: Reg::T0,
                        rs1: regs::ITER,
                        sh: shift,
                    });
                    asm.push(Inst::Andi {
                        rd: Reg::T0,
                        rs1: Reg::T0,
                        imm: 1,
                    });
                }
            }
            BranchStyle::Easy => {
                // Long-period counter bit: almost always the same way.
                let shift = 7 + (site % 3) as u8;
                asm.push(Inst::Srli {
                    rd: Reg::T0,
                    rs1: regs::ITER,
                    sh: shift,
                });
                asm.push(Inst::Andi {
                    rd: Reg::T0,
                    rs1: Reg::T0,
                    imm: 1,
                });
            }
        }
        asm.beqz(Reg::T0, skip);
        asm.push(Inst::addi(regs::ACC, regs::ACC, 1));
        asm.bind(skip);
    }
    // 5. ILP block: independent single-cycle ops
    for op in 0..profile.ilp_ops {
        let r = [Reg::T2, Reg::T3, Reg::T4, Reg::T5][op as usize % 4];
        if op % 2 == 0 {
            asm.push(Inst::addi(r, r, 1));
        } else {
            asm.push(Inst::Xori {
                rd: r,
                rs1: r,
                imm: 0x55,
            });
        }
    }
    // 6. multiply / divide
    for op in 0..profile.muldiv_ops {
        if op % 4 == 3 {
            asm.push(Inst::Divu {
                rd: Reg::T6,
                rs1: regs::RNG,
                rs2: regs::STREAM_MASK,
            });
        } else {
            asm.push(Inst::Mul {
                rd: Reg::T6,
                rs1: regs::RNG,
                rs2: regs::RNG,
            });
        }
    }
    // 7. periodic syscall
    if profile.syscall_every > 0 {
        let skip = asm.new_label();
        asm.push(Inst::addi(regs::SYS_CNT, regs::SYS_CNT, -1));
        asm.bnez(regs::SYS_CNT, skip);
        asm.li(Reg::A7, kernel::sys::PRINT);
        asm.push(Inst::Ecall);
        asm.li(regs::SYS_CNT, profile.syscall_every as u64);
        asm.bind(skip);
    }
    // loop close
    asm.push(Inst::addi(regs::ITER, regs::ITER, -1));
    asm.bnez(regs::ITER, top);
    // exit(acc) so the result is architecturally live
    asm.push(Inst::addi(Reg::A0, regs::ACC, 0));
    asm.li(Reg::A7, kernel::sys::EXIT);
    asm.push(Inst::Ecall);

    Program {
        name: name.to_string(),
        code: asm
            .assemble()
            .unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}")),
        data_size,
        data_init,
        stack_size: 16 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_profile() -> Profile {
        Profile {
            stream_bytes: 4096,
            stream_lines_per_iter: 2,
            chase_bytes: 4096,
            chase_nodes_per_iter: 2,
            ws_bytes: 4096,
            ws_accesses_per_iter: 2,
            branch_sites: 4,
            branch_style: BranchStyle::Medium,
            ilp_ops: 4,
            muldiv_ops: 1,
            syscall_every: 16,
        }
    }

    #[test]
    fn generates_valid_code() {
        let p = generate("t", &minimal_profile(), &WorkloadParams::tiny());
        assert!(!p.code.is_empty());
        // every word decodes
        for &w in &p.code {
            mi6_isa::decode(w).expect("valid encoding");
        }
        assert!(p.data_size >= 3 * 4096);
    }

    #[test]
    fn chase_links_form_one_cycle() {
        let profile = minimal_profile();
        let p = generate("t", &profile, &WorkloadParams::tiny());
        let nodes = (profile.chase_bytes / 64) as usize;
        let chase_off = profile.stream_bytes;
        // Follow the links; we must visit every node exactly once.
        let link_of = |off: u64| -> u64 {
            p.data_init
                .iter()
                .find(|(o, _)| *o == off)
                .map(|(_, v)| *v)
                .expect("link present")
        };
        let mut visited = std::collections::HashSet::new();
        let mut cur = chase_off;
        for _ in 0..nodes {
            assert!(visited.insert(cur), "revisited node at {cur:#x}");
            let next_va = link_of(cur);
            cur = next_va - DATA_VA;
        }
        assert_eq!(cur, chase_off, "chain closes into a cycle");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate("t", &minimal_profile(), &WorkloadParams::tiny());
        let b = generate("t", &minimal_profile(), &WorkloadParams::tiny());
        assert_eq!(a.code, b.code);
        assert_eq!(a.data_init, b.data_init);
    }

    #[test]
    fn iteration_count_scales_with_target() {
        let small = generate(
            "t",
            &minimal_profile(),
            &WorkloadParams::tiny().with_target_kinsts(10),
        );
        let big = generate(
            "t",
            &minimal_profile(),
            &WorkloadParams::tiny().with_target_kinsts(1000),
        );
        // Same code, different loop counts — compare the `li ITER` words.
        assert_eq!(small.code.len(), big.code.len());
        assert_ne!(small.code, big.code);
    }
}
