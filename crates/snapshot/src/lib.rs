//! # mi6-snapshot — the checkpoint codec
//!
//! A versioned, dependency-free binary format for machine checkpoints.
//! Every stateful component of the simulator (pipeline structures, caches,
//! queues, DRAM, the monitor) serializes itself through [`SnapWriter`] and
//! reconstructs itself through [`SnapReader`]; the [`SnapState`] trait is
//! the per-type contract. All integers are little-endian; collections are
//! length-prefixed with a `u64`; enums are a one-byte tag followed by the
//! variant's fields.
//!
//! The codec is deliberately hand-rolled (no serde): the simulator is
//! dependency-free by policy, and a checkpoint's byte layout is part of
//! the on-disk contract — [`FORMAT_VERSION`] must be bumped whenever any
//! component changes its serialized shape.
//!
//! Non-determinism guard: hash-ordered containers (`HashMap`/`HashSet`)
//! must be written in sorted key order so identical machine states always
//! produce identical snapshot bytes. The container impls here cover only
//! deterministically ordered std types; map serialization happens at the
//! call sites, sorted.

use std::collections::VecDeque;
use std::fmt;

/// The first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"MI6S";

/// Bump this whenever any component changes its serialized layout.
pub const FORMAT_VERSION: u32 = 1;

/// Error produced while decoding or validating a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The snapshot ended before the decoder was done.
    Eof {
        /// Byte offset at which more data was expected.
        at: usize,
    },
    /// The buffer does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible codec version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot was taken on a machine whose configuration does not
    /// match the one being restored into.
    ConfigMismatch {
        /// What differed (human-readable).
        what: String,
    },
    /// A decoded value is out of range for its type (corrupt snapshot).
    BadValue {
        /// What failed to decode.
        what: String,
    },
    /// A forked restore needs a quiescent snapshot but in-flight state was
    /// found.
    NotQuiescent {
        /// Which structure still held in-flight state.
        what: String,
    },
    /// An I/O error while reading or writing a snapshot file.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Eof { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::BadMagic => f.write_str("not an MI6 snapshot (bad magic)"),
            SnapError::BadVersion { found, expected } => write!(
                f,
                "snapshot format version {found} is not the supported version {expected}"
            ),
            SnapError::ConfigMismatch { what } => {
                write!(f, "snapshot does not match this machine: {what}")
            }
            SnapError::BadValue { what } => write!(f, "corrupt snapshot: {what}"),
            SnapError::NotQuiescent { what } => write!(
                f,
                "snapshot has in-flight {what}; forking across configurations requires a \
                 memory-quiescent snapshot (see Machine::run_until_mem_quiescent)"
            ),
            SnapError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> SnapError {
        SnapError::Io(e.to_string())
    }
}

/// FNV-1a over a byte string; used for configuration fingerprints.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the snapshot bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i32.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a u64 (portable across hosts).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes raw bytes with no length prefix (fixed-size payloads).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Writes a four-byte section tag (decode-time sanity anchor).
    pub fn tag(&mut self, tag: &[u8; 4]) {
        self.bytes(tag);
    }
}

/// Little-endian snapshot decoder over a borrowed buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof { at: self.pos });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i32.
    pub fn i32(&mut self) -> Result<i32, SnapError> {
        Ok(i32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a u64-encoded `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadValue {
            what: format!("usize {v} does not fit this host"),
        })
    }

    /// Reads a bool (must be 0 or 1).
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::BadValue {
                what: format!("bool byte {other}"),
            }),
        }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads a collection length and guards it against the remaining
    /// buffer (every element is at least one byte, so a length larger
    /// than the remainder is corruption, not a huge allocation).
    pub fn len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::BadValue {
                what: format!("length {n} exceeds remaining {} bytes", self.remaining()),
            });
        }
        Ok(n)
    }

    /// Reads and checks a four-byte section tag.
    pub fn expect_tag(&mut self, tag: &[u8; 4]) -> Result<(), SnapError> {
        let got = self.bytes(4)?;
        if got != tag {
            return Err(SnapError::BadValue {
                what: format!(
                    "expected section {:?}, found {:?}",
                    String::from_utf8_lossy(tag),
                    String::from_utf8_lossy(got)
                ),
            });
        }
        Ok(())
    }

    /// Fails unless every byte has been consumed (trailing garbage check).
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::BadValue {
                what: format!("{} trailing bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

/// Per-type save/load contract.
///
/// `load` must consume exactly the bytes `save` produced, and
/// `load(save(x)) == x` for every reachable state. Geometry-carrying
/// containers (caches, the core) use inherent `save_state`/`restore_state`
/// methods instead, restoring in place into an already-configured
/// structure; this trait is for plain values.
pub trait SnapState: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes one value from `r`.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! prim_impl {
    ($ty:ty, $save:ident, $load:ident) => {
        impl SnapState for $ty {
            fn save(&self, w: &mut SnapWriter) {
                w.$save(*self);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                r.$load()
            }
        }
    };
}

prim_impl!(u8, u8, u8);
prim_impl!(u16, u16, u16);
prim_impl!(u32, u32, u32);
prim_impl!(u64, u64, u64);
prim_impl!(i32, i32, i32);
prim_impl!(usize, usize, usize);
prim_impl!(bool, bool, bool);

impl<T: SnapState> SnapState for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            other => Err(SnapError::BadValue {
                what: format!("Option tag {other}"),
            }),
        }
    }
}

impl<T: SnapState> SnapState for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: SnapState> SnapState for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: SnapState, B: SnapState> SnapState for (A, B) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: SnapState, B: SnapState, C: SnapState> SnapState for (A, B, C) {
    fn save(&self, w: &mut SnapWriter) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<T: SnapState, const N: usize> SnapState for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        out.try_into().map_err(|_| SnapError::BadValue {
            what: "array length".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: SnapState + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::load(&mut r).unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0xabu8);
        round_trip(0xdeadu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(-42i32);
        round_trip(1_234_567usize);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1u32, 2, 3]);
        round_trip(VecDeque::from([9u64, 8, 7]));
        round_trip((1u8, 2u64));
        round_trip((1u8, 2u64, true));
        round_trip([5u64; 4]);
    }

    #[test]
    fn truncation_is_eof() {
        let mut w = SnapWriter::new();
        0x1122_3344_5566_7788u64.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes[..5]);
        assert!(matches!(u64::load(&mut r), Err(SnapError::Eof { .. })));
    }

    #[test]
    fn bad_bool_and_option_tags() {
        let mut r = SnapReader::new(&[7]);
        assert!(matches!(
            bool::load(&mut r),
            Err(SnapError::BadValue { .. })
        ));
        let mut r = SnapReader::new(&[9]);
        assert!(matches!(
            Option::<u8>::load(&mut r),
            Err(SnapError::BadValue { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            Vec::<u8>::load(&mut r),
            Err(SnapError::BadValue { .. })
        ));
    }

    #[test]
    fn tags_anchor_sections() {
        let mut w = SnapWriter::new();
        w.tag(b"CORE");
        w.u64(1);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        r.expect_tag(b"CORE").unwrap();
        assert_eq!(r.u64().unwrap(), 1);
        let mut r = SnapReader::new(&bytes);
        assert!(r.expect_tag(b"MEMS").is_err());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"mi6"), fnv1a64(b"mi7"));
    }
}
