//! Bench-side glue between the figure grids and `mi6-grid`'s sharding.
//!
//! A [`GridPlan`] is the deduplicated point set of a figure/seed request
//! plus the bookkeeping to reassemble per-figure, per-seed result vectors
//! from it. The same plan drives three paths, which is what makes sharded
//! runs trustworthy:
//!
//! - the **unsharded run** executes `plan.points` and renders tables;
//! - a **shard run** executes the subset `ShardSpec::contains` assigns to
//!   it, journaling each completed point as a JSON line;
//! - **merge** re-derives the identical plan from the identical flags,
//!   validates that the journal lines cover `plan.points` exactly once
//!   (missing or duplicated points are hard errors), and renders the
//!   same tables — byte-identical to the unsharded run, because the JSON
//!   round-trips every counter and float exactly.

use crate::figures::figure_points_for;
use crate::runner::{GridPoint, PointResult};
use crate::{mean_results, render_figure, render_seed_ci, HarnessOpts};
use mi6_grid::{validate_coverage, Coverage, Journal, ShardSpec};
use mi6_workloads::Workload;
use std::collections::BTreeMap;
use std::path::Path;

/// The deduplicated execution plan of a figure/seed request.
#[derive(Debug)]
pub struct GridPlan {
    /// Workload seeds per point (`--seeds`).
    pub seeds: u64,
    /// The unique grid points, in first-use order. A BASE pass shared by
    /// e.g. figures 5 and 7 appears once per seed.
    pub points: Vec<GridPoint>,
    /// Per figure: per seed: indices into `points`, in `figure_points`
    /// order.
    fig_indices: Vec<(u32, Vec<Vec<usize>>)>,
}

/// Builds the plan for a set of figures: every requested figure × seed,
/// deduplicated by point key.
pub fn plan_grid(
    figures: &[u32],
    opts: HarnessOpts,
    seeds: u64,
    workloads: &[Workload],
) -> GridPlan {
    let mut unique: BTreeMap<String, usize> = BTreeMap::new();
    let mut points = Vec::new();
    let mut fig_indices: Vec<(u32, Vec<Vec<usize>>)> = Vec::new();
    for &fig in figures {
        let mut per_seed = Vec::with_capacity(seeds as usize);
        for s in 0..seeds {
            let opts = opts.with_seed(opts.seed_at(s));
            let fig_points = figure_points_for(fig, opts, workloads);
            let mut indices = Vec::with_capacity(fig_points.len());
            for p in &fig_points {
                let idx = *unique.entry(p.key()).or_insert_with(|| {
                    points.push(*p);
                    points.len() - 1
                });
                indices.push(idx);
            }
            per_seed.push(indices);
        }
        fig_indices.push((fig, per_seed));
    }
    GridPlan {
        seeds,
        points,
        fig_indices,
    }
}

impl GridPlan {
    /// Total point executions across figures and seeds (before dedup).
    pub fn gross_points(&self) -> usize {
        self.fig_indices
            .iter()
            .map(|(_, per_seed)| per_seed.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// The subset of `points` a shard owns.
    pub fn shard_points(&self, spec: ShardSpec) -> Vec<GridPoint> {
        self.points
            .iter()
            .filter(|p| spec.contains(&p.key()))
            .copied()
            .collect()
    }

    /// Renders every planned figure from results in `points` order
    /// (single-seed figures directly; multi-seed ones as per-point means
    /// followed by the 95% CI table).
    pub fn render(&self, results: &[PointResult]) -> String {
        assert_eq!(results.len(), self.points.len(), "results/plan mismatch");
        let mut out = String::new();
        for (fig, per_seed_idx) in &self.fig_indices {
            let per_seed: Vec<Vec<PointResult>> = per_seed_idx
                .iter()
                .map(|indices| indices.iter().map(|&i| results[i].clone()).collect())
                .collect();
            if per_seed.len() == 1 || per_seed[0].is_empty() {
                out.push_str(&render_figure(*fig, &per_seed[0]));
            } else {
                out.push_str(&render_figure(*fig, &mean_results(&per_seed)));
                out.push_str(&render_seed_ci(*fig, &per_seed));
            }
        }
        out
    }
}

/// A shard journal opened for a run: the completed points replayed from
/// disk plus the open append handle.
#[derive(Debug)]
pub struct ShardJournal {
    /// The append handle.
    pub journal: Journal,
    /// Key → already-completed result, replayed from the journal.
    pub done: BTreeMap<String, PointResult>,
    /// Replayed lines that failed to parse (besides a torn tail these
    /// indicate manual tampering; they are recomputed like missing ones).
    pub bad_lines: usize,
    /// Replayed `"partial":true` progress lines (a previous invocation
    /// hit its deadline mid-point). Expected, not an error: the points
    /// they describe are simply recomputed.
    pub partial_lines: usize,
    /// Whether a torn trailing line (mid-write kill) was dropped.
    pub torn_tail: bool,
}

/// Opens (creating `dir` if needed) the journal for `spec` and replays
/// completed points.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory or file cannot be
/// created or read.
pub fn open_shard_journal(dir: &Path, spec: ShardSpec) -> std::io::Result<ShardJournal> {
    std::fs::create_dir_all(dir)?;
    let (journal, replay) = Journal::open(dir.join(spec.file_name()))?;
    let mut done = BTreeMap::new();
    let mut bad_lines = 0usize;
    let mut partial_lines = 0usize;
    for line in &replay.lines {
        match PointResult::from_json(line) {
            Ok(res) => {
                done.insert(res.point.key(), res);
            }
            Err(_) if crate::is_partial_line(line) => partial_lines += 1,
            Err(_) => bad_lines += 1,
        }
    }
    Ok(ShardJournal {
        journal,
        done,
        bad_lines,
        partial_lines,
        torn_tail: replay.torn_tail,
    })
}

/// Everything read back from a shard directory.
#[derive(Debug, Default)]
pub struct LoadedShards {
    /// Every parseable journaled point, with its key (duplicates kept —
    /// coverage validation counts them).
    pub results: Vec<(String, PointResult)>,
    /// Shard files read.
    pub files: usize,
    /// Lines skipped as unparseable (torn tails of killed shards).
    pub skipped_lines: usize,
    /// `"partial":true` progress lines skipped (deadline-interrupted
    /// points awaiting recomputation; not counted toward coverage).
    pub partial_lines: usize,
}

/// Reads every `shard-*.jsonl` journal in `dir`. Only files with the
/// journal name prefix count: a `--json` stream file dropped into the
/// same directory (`--out shards --json shards/results.jsonl`) must not
/// be double-counted as a shard and break the merge with phantom
/// duplicates.
///
/// # Errors
///
/// Returns the underlying I/O error if the directory cannot be listed or
/// a file cannot be read.
pub fn load_shard_dir(dir: &Path) -> std::io::Result<LoadedShards> {
    let mut loaded = LoadedShards::default();
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "jsonl")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-"))
        })
        .collect();
    paths.sort();
    for path in paths {
        loaded.files += 1;
        for line in std::fs::read_to_string(&path)?.lines() {
            match PointResult::from_json(line) {
                Ok(res) => loaded.results.push((res.point.key(), res)),
                Err(_) if crate::is_partial_line(line) => loaded.partial_lines += 1,
                Err(_) => loaded.skipped_lines += 1,
            }
        }
    }
    Ok(loaded)
}

/// Renders the shard-balance report: per-worker wall-clock totals across
/// every loaded journal point, plus the busiest worker's skew over the
/// mean — the headroom a rebalance (more shards, smaller batches) would
/// reclaim. Seed-aggregated sentinel points ([`crate::AGGREGATED_WORKER`])
/// are excluded: their time was already journaled under the real workers
/// that produced the per-seed runs, and crediting the aggregate to a fake
/// worker would double-count it.
pub fn balance_report(loaded: &LoadedShards) -> String {
    use std::fmt::Write as _;
    let mut per_worker: BTreeMap<usize, (u64, usize)> = BTreeMap::new();
    let mut aggregated = 0usize;
    for (_, res) in &loaded.results {
        if res.worker == crate::AGGREGATED_WORKER {
            aggregated += 1;
            continue;
        }
        let slot = per_worker.entry(res.worker).or_insert((0, 0));
        slot.0 += res.wall_ms;
        slot.1 += 1;
    }
    let mut out = String::new();
    if per_worker.is_empty() {
        writeln!(
            out,
            "shard balance: no per-worker points journaled{}",
            if aggregated > 0 {
                format!(" ({aggregated} aggregated point(s) excluded)")
            } else {
                String::new()
            }
        )
        .expect("string write");
        return out;
    }
    let points: usize = per_worker.values().map(|&(_, n)| n).sum();
    writeln!(
        out,
        "shard balance: {points} point(s) across {} worker(s){}",
        per_worker.len(),
        if aggregated > 0 {
            format!(" ({aggregated} aggregated point(s) excluded)")
        } else {
            String::new()
        }
    )
    .expect("string write");
    for (worker, &(ms, n)) in &per_worker {
        writeln!(out, "  worker {worker:>3}: {ms:>8} ms over {n} point(s)").expect("string write");
    }
    let max = per_worker.values().map(|&(ms, _)| ms).max().unwrap_or(0);
    let total: u64 = per_worker.values().map(|&(ms, _)| ms).sum();
    let mean = total as f64 / per_worker.len() as f64;
    writeln!(
        out,
        "  busiest: {max} ms vs {mean:.1} ms mean ({:.2}x skew)",
        if mean > 0.0 { max as f64 / mean } else { 1.0 },
    )
    .expect("string write");
    out
}

/// Why a merge refused to combine shard files.
#[derive(Clone, Debug)]
pub enum MergeError {
    /// The shard set does not cover the expected grid exactly once.
    Coverage(Coverage),
    /// The shards mix fork-base warm-ups with other methodologies (the
    /// distinct `warm` tags found). Cold and exact warm-forks are
    /// bit-identical and mix freely; fork-base results measure a
    /// different shared-prefix methodology and must be homogeneous.
    MixedWarm(Vec<String>),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Coverage(cov) => write!(f, "{cov}"),
            MergeError::MixedWarm(tags) => writeln!(
                f,
                "shards mix fork-base with other warm-up methodologies ({}); \
                 rerun the odd shards with matching --warmup/--fork-base flags",
                tags.join(", ")
            ),
        }
    }
}

/// Merges loaded shard results against a plan: validates coverage
/// (missing or duplicated expected points are hard errors; extra points
/// — e.g. merging one figure out of an `--all` shard directory — are
/// ignored), rejects fork-base/non-fork-base mixes, and returns the
/// results in `plan.points` order, plus the coverage report (whose
/// `extra` list names the ignored points).
///
/// # Errors
///
/// Returns [`MergeError`] on a missing or duplicated point, or on shards
/// whose warm-up methodologies cannot be combined.
pub fn merge_shards(
    plan: &GridPlan,
    loaded: &LoadedShards,
) -> Result<(Vec<PointResult>, Coverage), MergeError> {
    let expected: Vec<String> = plan.points.iter().map(|p| p.key()).collect();
    let coverage = validate_coverage(
        expected.iter().map(String::as_str),
        loaded.results.iter().map(|(k, _)| k.as_str()),
    )
    .map_err(MergeError::Coverage)?;
    let by_key: BTreeMap<&str, &PointResult> = loaded
        .results
        .iter()
        .map(|(k, r)| (k.as_str(), r))
        .collect();
    let results: Vec<PointResult> = expected
        .iter()
        .map(|k| (*by_key.get(k.as_str()).expect("validated above")).clone())
        .collect();
    let warms: std::collections::BTreeSet<&str> = results.iter().map(|r| r.warm.as_str()).collect();
    if warms.len() > 1 && warms.iter().any(|w| w.starts_with("forkbase")) {
        return Err(MergeError::MixedWarm(
            warms.into_iter().map(str::to_string).collect(),
        ));
    }
    Ok((results, coverage))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts::default().with_kinsts(10).with_timer(0)
    }

    #[test]
    fn plan_dedupes_shared_base_passes() {
        // Figures 5 and 7 share their BASE and FLUSH passes entirely.
        let plan = plan_grid(&[5, 7], tiny_opts(), 1, &Workload::ALL);
        assert_eq!(plan.points.len(), 22);
        assert_eq!(plan.gross_points(), 44);
        // Distinct seeds do not dedupe.
        let plan = plan_grid(&[5], tiny_opts(), 2, &Workload::ALL);
        assert_eq!(plan.points.len(), 44);
    }

    #[test]
    fn shards_partition_the_plan() {
        let plan = plan_grid(&[13], tiny_opts(), 1, &Workload::ALL);
        let total = 3u32;
        let mut seen = 0usize;
        for index in 0..total {
            seen += plan.shard_points(ShardSpec { index, total }).len();
        }
        assert_eq!(seen, plan.points.len());
    }

    fn fake(p: &GridPoint, warm: &str) -> PointResult {
        PointResult {
            point: *p,
            record: crate::RunRecord {
                name: p.workload.name(),
                cycles: 1,
                instructions: 1,
                branch_mpki: 0.0,
                llc_mpki: 0.0,
                flush_stall_cycles: 0,
                traps: 0,
                cpi: Default::default(),
                commit_width: 2,
                cycles_ticked: 0,
                cycles_skipped: 0,
            },
            wall_ms: 0,
            worker: 0,
            warm: warm.to_string(),
            metrics: None,
        }
    }

    fn coverage_err(err: MergeError) -> Coverage {
        match err {
            MergeError::Coverage(cov) => cov,
            other => panic!("expected a coverage error, got {other:?}"),
        }
    }

    #[test]
    fn merge_detects_missing_and_duplicate_points() {
        let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
        let full: Vec<(String, PointResult)> = plan
            .points
            .iter()
            .map(|p| (p.key(), fake(p, "cold")))
            .collect();
        // Exact coverage merges.
        let loaded = LoadedShards {
            results: full.clone(),
            files: 1,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let (merged, cov) = merge_shards(&plan, &loaded).unwrap();
        assert_eq!(merged.len(), plan.points.len());
        assert!(cov.extra.is_empty());
        // A missing point is a hard error.
        let loaded = LoadedShards {
            results: full[1..].to_vec(),
            files: 1,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let err = coverage_err(merge_shards(&plan, &loaded).unwrap_err());
        assert_eq!(err.missing, vec![full[0].0.clone()]);
        // A duplicated point is a hard error.
        let mut dup = full.clone();
        dup.push(full[3].clone());
        let loaded = LoadedShards {
            results: dup,
            files: 2,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let err = coverage_err(merge_shards(&plan, &loaded).unwrap_err());
        assert_eq!(err.duplicate.len(), 1);
        assert_eq!(err.duplicate[0].0, full[3].0);
    }

    #[test]
    fn merge_rejects_forkbase_mixed_with_other_warm_modes() {
        let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
        let mixed: Vec<(String, PointResult)> = plan
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let warm = if i == 0 { "forkbase:500000" } else { "cold" };
                (p.key(), fake(p, warm))
            })
            .collect();
        let loaded = LoadedShards {
            results: mixed,
            files: 2,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let err = merge_shards(&plan, &loaded).unwrap_err();
        assert!(
            matches!(&err, MergeError::MixedWarm(tags) if tags.len() == 2),
            "{err:?}"
        );
        // Cold + exact mix freely (both bit-identical to cold runs)...
        let ok: Vec<(String, PointResult)> = plan
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let warm = if i % 2 == 0 { "exact:500000" } else { "cold" };
                (p.key(), fake(p, warm))
            })
            .collect();
        let loaded = LoadedShards {
            results: ok,
            files: 2,
            skipped_lines: 0,
            partial_lines: 0,
        };
        assert!(merge_shards(&plan, &loaded).is_ok());
        // ... and homogeneous fork-base shards also merge.
        let all_fb: Vec<(String, PointResult)> = plan
            .points
            .iter()
            .map(|p| (p.key(), fake(p, "forkbase:500000")))
            .collect();
        let loaded = LoadedShards {
            results: all_fb,
            files: 2,
            skipped_lines: 0,
            partial_lines: 0,
        };
        assert!(merge_shards(&plan, &loaded).is_ok());
    }

    #[test]
    fn journal_resume_skips_completed_points() {
        let dir = std::env::temp_dir().join(format!("mi6-shardj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
        let spec = ShardSpec::whole();
        // First open: empty journal; pretend we completed two points.
        {
            let mut sj = open_shard_journal(&dir, spec).unwrap();
            assert!(sj.done.is_empty());
            for p in &plan.points[..2] {
                let res = PointResult {
                    point: *p,
                    record: crate::RunRecord {
                        name: p.workload.name(),
                        cycles: 7,
                        instructions: 7,
                        branch_mpki: 0.5,
                        llc_mpki: 0.25,
                        flush_stall_cycles: 0,
                        traps: 0,
                        cpi: Default::default(),
                        commit_width: 2,
                        cycles_ticked: 0,
                        cycles_skipped: 0,
                    },
                    wall_ms: 3,
                    worker: 1,
                    warm: "cold".to_string(),
                    metrics: None,
                };
                sj.journal.append(&res.to_json()).unwrap();
            }
        }
        // Reopen: the two points replay and would be skipped.
        let sj = open_shard_journal(&dir, spec).unwrap();
        assert_eq!(sj.done.len(), 2);
        assert!(!sj.torn_tail);
        assert!(sj.done.contains_key(&plan.points[0].key()));
        let todo: Vec<&GridPoint> = plan
            .points
            .iter()
            .filter(|p| !sj.done.contains_key(&p.key()))
            .collect();
        assert_eq!(todo.len(), plan.points.len() - 2);
        // The replayed result round-tripped exactly.
        let r = &sj.done[&plan.points[0].key()];
        assert_eq!(r.record.cycles, 7);
        assert_eq!(r.record.llc_mpki, 0.25);
        assert_eq!(r.worker, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn balance_report_sums_per_worker_and_excludes_aggregates() {
        let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
        let mut results: Vec<(String, PointResult)> = Vec::new();
        // Workers 0 and 1 split the grid 2:1 by wall time; one
        // seed-aggregated sentinel point must not be credited anywhere.
        for (i, p) in plan.points.iter().enumerate() {
            let mut r = fake(p, "cold");
            if i == 0 {
                r.worker = crate::AGGREGATED_WORKER;
                r.wall_ms = 1_000_000; // would dwarf everything if counted
            } else if i % 2 == 0 {
                r.worker = 0;
                r.wall_ms = 20;
            } else {
                r.worker = 1;
                r.wall_ms = 10;
            }
            results.push((p.key(), r));
        }
        let loaded = LoadedShards {
            results,
            files: 1,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let report = balance_report(&loaded);
        assert!(
            report.contains("1 aggregated point(s) excluded"),
            "{report}"
        );
        assert!(!report.contains("1000000"), "{report}");
        assert!(report.contains("worker   0"), "{report}");
        assert!(report.contains("worker   1"), "{report}");
        // Totals per worker appear verbatim.
        let w0: u64 = plan
            .points
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && i % 2 == 0)
            .count() as u64
            * 20;
        assert!(report.contains(&format!("{w0} ms")), "{report}");
        assert!(report.contains("x skew"), "{report}");
        // No journaled workers at all degrades gracefully.
        let empty = balance_report(&LoadedShards::default());
        assert!(empty.contains("no per-worker points"), "{empty}");
    }

    #[test]
    fn extra_points_do_not_block_a_subset_merge() {
        // Shards produced with --all, merged with just --figure 6.
        let all13 = plan_grid(&[6, 13], tiny_opts(), 1, &Workload::ALL);
        let just6 = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
        let loaded = LoadedShards {
            results: all13
                .points
                .iter()
                .map(|p| (p.key(), fake(p, "cold")))
                .collect(),
            files: 1,
            skipped_lines: 0,
            partial_lines: 0,
        };
        let (merged, cov) = merge_shards(&just6, &loaded).unwrap();
        assert_eq!(merged.len(), just6.points.len());
        assert_eq!(cov.extra.len(), all13.points.len() - just6.points.len());
    }
}
