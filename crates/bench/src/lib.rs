//! # mi6-bench
//!
//! The experiment harness behind the `mi6-experiments` CLI: a shared
//! [`runner`] that fans the variant×workload grid out across OS threads,
//! the [`figures`] definitions reproducing every evaluation figure of the
//! paper (Section 7), and a dependency-free [`microbench`] harness for the
//! component benches.
//!
//! Every figure runs the eleven SPEC-shaped workloads on the BASE
//! processor and on the figure's variant, then prints the per-benchmark
//! overhead next to the paper's reported number. Absolute cycle counts
//! are not expected to match the FPGA prototype; the *shape* — which
//! benchmarks hurt, roughly how much, and the average — is the
//! reproduction target (see `DESIGN.md` and `EXPERIMENTS.md`).
//!
//! Run e.g. `cargo run --release -p mi6-bench --bin mi6-experiments -- \
//! --figure 13`. The CLI accepts `--kinsts N` (thousands of instructions
//! per run; default 2000), `--timer N` (scheduler tick in cycles; default
//! 250000), `--threads N` (worker threads; default: all cores), and
//! `--json PATH` (stream one JSON object per grid point). The grid also
//! shards across processes and hosts with no coordination: `--shard i/N
//! --out DIR` journals one shard resumably, and the `merge` subcommand
//! validates coverage and renders figures byte-identical to an unsharded
//! run (see [`sharding`] and `mi6-grid`).

pub mod figures;
pub mod microbench;
pub mod runner;
pub mod scenario;
pub mod sharding;

pub use figures::{
    figure_points, mean_results, render_cpi_decomposition, render_figure, render_seed_ci, FIGURES,
};
pub use runner::{
    is_partial_line, run_grid, run_grid_scheduled, run_grid_with, GridMetrics, GridOutcome,
    GridPoint, GridSchedule, PartialPoint, PointResult, WarmFork, AGGREGATED_WORKER, SLICE_CYCLES,
};
pub use sharding::{plan_grid, GridPlan};

use mi6_core::CpiStack;
#[allow(unused_imports)] // `Machine` anchors intra-doc links.
use mi6_soc::{Machine, MachineStats, RunError, SimBuilder, Variant};
use mi6_workloads::{Workload, WorkloadParams};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// One workload run's summary.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Benchmark name.
    pub name: &'static str,
    /// Cycles to completion.
    pub cycles: u64,
    /// Committed instructions (core 0).
    pub instructions: u64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// LLC misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Cycles stalled waiting for microarchitectural flushes.
    pub flush_stall_cycles: u64,
    /// Traps taken.
    pub traps: u64,
    /// Core 0's CPI stack: every commit slot of every accounted cycle
    /// attributed to retired work or its oldest blocking reason, plus the
    /// structural-pressure event counters. Runtime-only on the machine
    /// side, so a restored run reports only its own post-restore stack
    /// (the stack's own `cycles` counter keeps the sum invariant exact
    /// relative to the restore point).
    pub cpi: CpiStack,
    /// The commit width the stack was accounted against (slots per cycle).
    pub commit_width: u64,
    /// Cycles the machine actually ticked structure-by-structure.
    pub cycles_ticked: u64,
    /// Cycles the machine fast-forwarded through provably inert spans
    /// (`cycles_ticked + cycles_skipped` covers this run's own cycles,
    /// excluding any restored warm prefix).
    pub cycles_skipped: u64,
}

impl RunRecord {
    fn from_run(
        name: &'static str,
        machine: &Machine,
        stats: &MachineStats,
        start_cycle: u64,
    ) -> RunRecord {
        RunRecord {
            name,
            cycles: stats.cycles,
            instructions: stats.core[0].committed_instructions,
            branch_mpki: stats.branch_mpki(),
            llc_mpki: stats.llc_mpki(),
            flush_stall_cycles: stats.core[0].flush_stall_cycles,
            traps: stats.core[0].traps,
            cpi: machine.core(0).cpi.clone(),
            commit_width: machine.core(0).config().commit_width as u64,
            cycles_ticked: machine.ticks(),
            cycles_skipped: (machine.now() - start_cycle).saturating_sub(machine.ticks()),
        }
    }

    /// Flush stall time as a percentage of total cycles (Figure 6).
    pub fn flush_stall_pct(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flush_stall_cycles as f64 * 100.0 / self.cycles as f64
    }
}

/// Per-run options (instruction volume, scheduler tick, workload seed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HarnessOpts {
    /// Thousands of instructions per run.
    pub kinsts: u64,
    /// Scheduler timer interval in cycles (0 = off).
    pub timer: u64,
    /// Workload data-layout seed (the `--seeds` sweep varies this).
    pub seed: u64,
}

/// The default workload seed (the historical fixed seed every figure has
/// been measured with; `--seeds N` keeps it as seed index 0).
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

impl Default for HarnessOpts {
    fn default() -> HarnessOpts {
        HarnessOpts {
            kinsts: 2_000,
            timer: 250_000,
            seed: DEFAULT_SEED,
        }
    }
}

impl HarnessOpts {
    /// Replaces the timer interval.
    pub fn with_timer(mut self, timer: u64) -> HarnessOpts {
        self.timer = timer;
        self
    }

    /// Replaces the instruction target.
    pub fn with_kinsts(mut self, kinsts: u64) -> HarnessOpts {
        self.kinsts = kinsts;
        self
    }

    /// Replaces the workload seed.
    pub fn with_seed(mut self, seed: u64) -> HarnessOpts {
        self.seed = seed;
        self
    }

    /// The seed for seed index `i` of a `--seeds N` sweep: index 0 is the
    /// historical default (so `--seeds 1` reproduces every existing
    /// number); later indices are splitmix64-derived.
    pub fn seed_at(&self, i: u64) -> u64 {
        if i == 0 {
            self.seed
        } else {
            splitmix64(self.seed.wrapping_add(i))
        }
    }

    /// The run-length cap handed to `run_to_completion` (or armed via
    /// `Machine::begin_run` by the sliced grid driver): the shared
    /// [`mi6_workloads::budget`] scaling.
    pub fn cycle_cap(&self) -> u64 {
        mi6_workloads::budget::cycle_cap(self.kinsts)
    }
}

/// One step of the splitmix64 generator (seed derivation for `--seeds`).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A per-run metrics attachment (the observability tentpole's grid
/// wiring): sample the time-series metrics registry every `every` cycles
/// into `path`. Sampling is runtime-only and never perturbs simulated
/// timing, so observed and unobserved runs report identical counters.
#[derive(Clone, Debug)]
pub struct MetricsSpec {
    /// JSONL output file (one `(cycle, core, metric)` row per sample).
    pub path: PathBuf,
    /// Sampling interval in cycles.
    pub every: u64,
}

/// Runs one workload on one variant to completion.
pub fn run_workload(variant: Variant, workload: Workload, opts: &HarnessOpts) -> RunRecord {
    run_workload_cancellable(variant, workload, opts, None).expect("no cancel flag to raise")
}

/// [`run_workload`] with a cooperative cancel flag: the machine polls the
/// flag while running (the `SimBuilder::cancel_flag` hook), and a raised
/// flag makes the run return `None` within a few thousand simulated
/// cycles — how a `--deadline` interrupts in-flight grid points.
pub fn run_workload_cancellable(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    cancel: Option<Arc<AtomicBool>>,
) -> Option<RunRecord> {
    run_workload_observed(variant, workload, opts, cancel, None)
}

/// [`run_workload_cancellable`] with an optional [`MetricsSpec`] attached
/// to the machine for the duration of the run.
pub fn run_workload_observed(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    cancel: Option<Arc<AtomicBool>>,
    metrics: Option<&MetricsSpec>,
) -> Option<RunRecord> {
    let mut machine = build_workload_machine(variant, workload, opts, cancel, metrics);
    match machine.run_to_completion(opts.cycle_cap()) {
        Ok(stats) => Some(RunRecord::from_run(workload.name(), &machine, &stats, 0)),
        Err(RunError::Cancelled { .. }) => None,
        Err(e) => panic!("running {workload} on {variant}: {e}"),
    }
}

/// Builds the machine for one cold run — workload loaded, cancel flag and
/// metrics attached — without running it. This is the construction half
/// of [`run_workload_observed`]; the sliced grid driver uses it directly
/// so it can drive the machine through `Machine::step_slice`.
pub fn build_workload_machine(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    cancel: Option<Arc<AtomicBool>>,
    metrics: Option<&MetricsSpec>,
) -> Machine {
    let params = WorkloadParams::evaluation()
        .with_target_kinsts(opts.kinsts)
        .with_seed(opts.seed);
    let mut builder = SimBuilder::new(variant)
        .timer_interval(opts.timer)
        .workload(0, workload.build(&params));
    if let Some(flag) = cancel {
        builder = builder.cancel_flag(flag);
    }
    if let Some(m) = metrics {
        builder = builder.metrics(m.path.clone(), m.every);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("loading {workload}: {e}"))
}

/// Builds the bare machine a warm snapshot restores into — no workload
/// (the snapshot supplies memory and images), cancel flag and metrics
/// attached. The construction half of [`run_workload_restored_observed`];
/// callers restore via `Machine::restore`/`restore_forked` (or hand the
/// blob to `SimBuilder::restore_from_bytes` themselves).
pub fn build_restore_target(
    variant: Variant,
    opts: &HarnessOpts,
    cancel: Option<Arc<AtomicBool>>,
    metrics: Option<&MetricsSpec>,
) -> Machine {
    let mut builder = SimBuilder::new(variant).timer_interval(opts.timer);
    if let Some(flag) = cancel {
        builder = builder.cancel_flag(flag);
    }
    if let Some(m) = metrics {
        builder = builder.metrics(m.path.clone(), m.every);
    }
    builder
        .build()
        .unwrap_or_else(|e| panic!("building {variant}: {e}"))
}

/// Continues one workload to completion from a warm checkpoint.
///
/// `forked` selects [`Machine::restore_forked`] (a cross-variant warm
/// state, e.g. a BASE-warmed prefix measured under every variant) over
/// the strict [`Machine::restore`] (same-variant resume, bit-identical to
/// an uninterrupted run). Reported counters cover the whole run including
/// the warm prefix.
pub fn run_workload_restored(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    snapshot: &[u8],
    forked: bool,
) -> RunRecord {
    run_workload_restored_cancellable(variant, workload, opts, snapshot, forked, None)
        .expect("no cancel flag to raise")
}

/// [`run_workload_restored`] with a cooperative cancel flag (see
/// [`run_workload_cancellable`]).
pub fn run_workload_restored_cancellable(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    snapshot: &[u8],
    forked: bool,
    cancel: Option<Arc<AtomicBool>>,
) -> Option<RunRecord> {
    run_workload_restored_observed(variant, workload, opts, snapshot, forked, cancel, None)
}

/// [`run_workload_restored_cancellable`] with an optional [`MetricsSpec`]
/// (metrics cover only the measured continuation, not the warm prefix).
#[allow(clippy::too_many_arguments)]
pub fn run_workload_restored_observed(
    variant: Variant,
    workload: Workload,
    opts: &HarnessOpts,
    snapshot: &[u8],
    forked: bool,
    cancel: Option<Arc<AtomicBool>>,
    metrics: Option<&MetricsSpec>,
) -> Option<RunRecord> {
    let mut builder = SimBuilder::new(variant).timer_interval(opts.timer);
    if let Some(flag) = cancel {
        builder = builder.cancel_flag(flag);
    }
    if let Some(m) = metrics {
        builder = builder.metrics(m.path.clone(), m.every);
    }
    let mut machine = builder
        .build()
        .unwrap_or_else(|e| panic!("building {variant}: {e}"));
    let restored = if forked {
        machine.restore_forked(snapshot)
    } else {
        machine.restore(snapshot)
    };
    restored.unwrap_or_else(|e| panic!("restoring {workload} warm state on {variant}: {e}"));
    let start_cycle = machine.now();
    match machine.run_to_completion(opts.cycle_cap()) {
        Ok(stats) => Some(RunRecord::from_run(
            workload.name(),
            &machine,
            &stats,
            start_cycle,
        )),
        Err(RunError::Cancelled { .. }) => None,
        Err(e) => panic!("running {workload} on {variant} from checkpoint: {e}"),
    }
}

/// Runs all eleven workloads on a variant, serially (the parallel path is
/// [`run_grid`]).
pub fn run_all(variant: Variant, opts: &HarnessOpts) -> Vec<RunRecord> {
    Workload::ALL
        .iter()
        .map(|&w| {
            eprintln!("  running {w} on {variant}...");
            run_workload(variant, w, opts)
        })
        .collect()
}

/// Arithmetic mean.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Renders an overhead figure: per-benchmark runtime increase of
/// `variant` over `base`, next to the paper's reported percentages.
///
/// All figure tables render to `String` (and are printed by the CLI) so
/// the sharded path has something exact to reproduce: a merge of shard
/// journals must produce *byte-identical* tables to the unsharded run.
pub fn render_overhead_figure(
    title: &str,
    paper: &[(&str, f64)],
    base: &[RunRecord],
    variant: &[RunRecord],
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "\n=== {title} ===").unwrap();
    writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>10} {:>10}",
        "benchmark", "BASE cycles", "variant cycles", "measured", "paper"
    )
    .unwrap();
    let mut overheads = Vec::new();
    for (b, v) in base.iter().zip(variant) {
        assert_eq!(b.name, v.name);
        let overhead = (v.cycles as f64 / b.cycles as f64 - 1.0) * 100.0;
        overheads.push(overhead);
        let paper_pct = paper
            .iter()
            .find(|(n, _)| *n == b.name)
            .map(|(_, p)| format!("{p:.1}%"))
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{:<12} {:>14} {:>14} {:>9.1}% {:>10}",
            b.name, b.cycles, v.cycles, overhead, paper_pct
        )
        .unwrap();
    }
    let paper_avg = paper.iter().find(|(n, _)| *n == "average").map(|(_, p)| *p);
    writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>9.1}% {:>10}",
        "average",
        "",
        "",
        mean(overheads),
        paper_avg
            .map(|p| format!("{p:.1}%"))
            .unwrap_or_else(|| "-".into())
    )
    .unwrap();
    out
}

/// Renders a metric figure (e.g. MPKI) for two variants side by side with
/// the paper's average values.
pub fn render_metric_figure(
    title: &str,
    metric_name: &str,
    paper_avgs: (f64, f64),
    labels: (&str, &str),
    base: &[RunRecord],
    variant: &[RunRecord],
    metric: impl Fn(&RunRecord) -> f64,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "\n=== {title} ===").unwrap();
    writeln!(out, "{:<12} {:>12} {:>12}", "benchmark", labels.0, labels.1).unwrap();
    for (b, v) in base.iter().zip(variant) {
        writeln!(
            out,
            "{:<12} {:>12.1} {:>12.1}",
            b.name,
            metric(b),
            metric(v)
        )
        .unwrap();
    }
    writeln!(
        out,
        "{:<12} {:>12.1} {:>12.1}   (paper: {:.1} -> {:.1} {metric_name})",
        "average",
        mean(base.iter().map(&metric)),
        mean(variant.iter().map(&metric)),
        paper_avgs.0,
        paper_avgs.1,
    )
    .unwrap();
    out
}

/// The paper's Figure 5 numbers (FLUSH overhead %, approximate bar
/// readings; stated values: average 5.4, max astar 10.9).
pub const PAPER_FIG5: &[(&str, f64)] = &[
    ("bzip2", 4.0),
    ("gcc", 5.0),
    ("mcf", 3.0),
    ("gobmk", 7.0),
    ("hmmer", 2.0),
    ("sjeng", 7.0),
    ("libquantum", 1.0),
    ("h264ref", 4.0),
    ("omnetpp", 6.0),
    ("astar", 10.9),
    ("xalancbmk", 8.0),
    ("average", 5.4),
];

/// Figure 8 (PART overhead %; average 7.4, max gcc 21.6).
pub const PAPER_FIG8: &[(&str, f64)] = &[
    ("bzip2", 6.0),
    ("gcc", 21.6),
    ("mcf", 7.0),
    ("gobmk", 2.0),
    ("hmmer", 2.0),
    ("sjeng", 4.0),
    ("libquantum", 10.0),
    ("h264ref", 3.0),
    ("omnetpp", 12.0),
    ("astar", 8.0),
    ("xalancbmk", 6.0),
    ("average", 7.4),
];

/// Figure 10 (MISS overhead %; average 3.2, max astar 8.3).
pub const PAPER_FIG10: &[(&str, f64)] = &[
    ("bzip2", 3.0),
    ("gcc", 4.0),
    ("mcf", 5.0),
    ("gobmk", 1.0),
    ("hmmer", 1.0),
    ("sjeng", 2.0),
    ("libquantum", 6.0),
    ("h264ref", 1.0),
    ("omnetpp", 4.0),
    ("astar", 8.3),
    ("xalancbmk", 3.0),
    ("average", 3.2),
];

/// Figure 11 (ARB overhead %; average 8.5, max libquantum 14).
pub const PAPER_FIG11: &[(&str, f64)] = &[
    ("bzip2", 8.0),
    ("gcc", 9.0),
    ("mcf", 12.0),
    ("gobmk", 5.0),
    ("hmmer", 5.0),
    ("sjeng", 7.0),
    ("libquantum", 14.0),
    ("h264ref", 6.0),
    ("omnetpp", 11.0),
    ("astar", 10.0),
    ("xalancbmk", 8.0),
    ("average", 8.5),
];

/// Figure 12 (NONSPEC overhead %; average 205, max h264ref 427).
pub const PAPER_FIG12: &[(&str, f64)] = &[
    ("bzip2", 180.0),
    ("gcc", 160.0),
    ("mcf", 120.0),
    ("gobmk", 200.0),
    ("hmmer", 260.0),
    ("sjeng", 190.0),
    ("libquantum", 150.0),
    ("h264ref", 427.0),
    ("omnetpp", 140.0),
    ("astar", 160.0),
    ("xalancbmk", 270.0),
    ("average", 205.0),
];

/// Figure 13 (F+P+M+A overhead %; average 16.4, max gcc 34.8).
pub const PAPER_FIG13: &[(&str, f64)] = &[
    ("bzip2", 14.0),
    ("gcc", 34.8),
    ("mcf", 18.0),
    ("gobmk", 12.0),
    ("hmmer", 8.0),
    ("sjeng", 14.0),
    ("libquantum", 22.0),
    ("h264ref", 10.0),
    ("omnetpp", 25.0),
    ("astar", 24.0),
    ("xalancbmk", 16.0),
    ("average", 16.4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([]), 0.0);
    }

    #[test]
    fn paper_tables_have_all_benchmarks_plus_average() {
        for table in [
            PAPER_FIG5,
            PAPER_FIG8,
            PAPER_FIG10,
            PAPER_FIG11,
            PAPER_FIG12,
            PAPER_FIG13,
        ] {
            assert_eq!(table.len(), 12);
            assert!(table.iter().any(|(n, _)| *n == "average"));
            for w in Workload::ALL {
                assert!(table.iter().any(|(n, _)| *n == w.name()), "missing {w}");
            }
        }
    }

    #[test]
    fn tiny_run_produces_record() {
        let opts = HarnessOpts::default().with_kinsts(30).with_timer(0);
        let rec = run_workload(Variant::Base, Workload::Hmmer, &opts);
        assert!(rec.cycles > 0);
        assert!(rec.instructions > 10_000);
    }
}
