//! The parallel experiment runner.
//!
//! A figure is a grid of (variant, workload, opts) points. [`run_grid`]
//! fans the points out across OS threads with a shared work queue, streams
//! each finished point through a caller-supplied callback (the CLI writes
//! one JSON object per point), and returns the results in point order so
//! figure rendering stays deterministic regardless of completion order.

use crate::{run_workload, HarnessOpts, RunRecord};
use mi6_soc::Variant;
use mi6_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// One point of the variant×workload grid.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Processor variant to simulate.
    pub variant: Variant,
    /// Workload to run on core 0.
    pub workload: Workload,
    /// Run options (instruction volume, timer).
    pub opts: HarnessOpts,
}

/// A completed grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point that produced this result.
    pub point: GridPoint,
    /// The run's counters.
    pub record: RunRecord,
    /// Host wall-clock time the simulation took, in milliseconds.
    pub wall_ms: u64,
}

impl PointResult {
    /// One JSON object describing this point (hand-rolled: the harness is
    /// dependency-free, and every field is numeric or a known-safe name).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"variant\":\"{}\",\"workload\":\"{}\",\"kinsts\":{},",
                "\"timer\":{},\"cycles\":{},\"instructions\":{},",
                "\"branch_mpki\":{:.3},\"llc_mpki\":{:.3},",
                "\"flush_stall_cycles\":{},\"traps\":{},\"wall_ms\":{}}}"
            ),
            self.point.variant.name(),
            self.record.name,
            self.point.opts.kinsts,
            self.point.opts.timer,
            self.record.cycles,
            self.record.instructions,
            self.record.branch_mpki,
            self.record.llc_mpki,
            self.record.flush_stall_cycles,
            self.record.traps,
            self.wall_ms,
        )
    }
}

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs every grid point across `threads` worker threads.
///
/// `on_result` is invoked on the caller's thread as each point finishes
/// (in completion order — use it for streaming output, not rendering).
/// The returned vector is in `points` order.
pub fn run_grid(
    points: &[GridPoint],
    threads: usize,
    mut on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, PointResult)>();
    let mut results: Vec<Option<PointResult>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = points[i];
                let t0 = Instant::now();
                let record = run_workload(point.variant, point.workload, &point.opts);
                let wall_ms = t0.elapsed().as_millis() as u64;
                if tx
                    .send((
                        i,
                        PointResult {
                            point,
                            record,
                            wall_ms,
                        },
                    ))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, res)) = rx.recv() {
            on_result(&res);
            results[i] = Some(res);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every grid point completed"))
        .collect()
}

/// The full variant×workload grid for one variant (all eleven workloads).
pub fn variant_points(variant: Variant, opts: HarnessOpts) -> Vec<GridPoint> {
    Workload::ALL
        .iter()
        .map(|&workload| GridPoint {
            variant,
            workload,
            opts,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts::default().with_kinsts(10).with_timer(0)
    }

    #[test]
    fn grid_results_arrive_in_point_order() {
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Arb,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let mut streamed = 0usize;
        let results = run_grid(&points, 3, |_| streamed += 1);
        assert_eq!(streamed, 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].record.name, "hmmer");
        assert_eq!(results[1].record.name, "sjeng");
        assert_eq!(results[2].point.variant, Variant::Arb);
        for r in &results {
            assert!(r.record.cycles > 0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let points = variant_points(Variant::Base, tiny_opts())[..3].to_vec();
        let serial = run_grid(&points, 1, |_| {});
        let parallel = run_grid(&points, 3, |_| {});
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.record.cycles, b.record.cycles, "{}", a.record.name);
            assert_eq!(a.record.instructions, b.record.instructions);
        }
    }

    #[test]
    fn json_shape() {
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: tiny_opts(),
        }];
        let results = run_grid(&points, 1, |_| {});
        let json = results[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"variant\":\"BASE\""));
        assert!(json.contains("\"workload\":\"hmmer\""));
        assert!(json.contains("\"cycles\":"));
    }
}
