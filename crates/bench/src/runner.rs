//! The parallel experiment runner.
//!
//! A figure is a grid of (variant, workload, opts) points. [`run_grid`]
//! fans the points out across the `mi6-grid` work-stealing scheduler —
//! per-worker queues, batched claims that amortize synchronization over
//! many short simulations, steal-on-empty — streams each finished point
//! through a caller-supplied callback (the CLI writes one JSON object per
//! point), and returns the results in point order so figure rendering
//! stays deterministic regardless of completion order.
//!
//! [`run_grid_scheduled`] is the full surface: an optional warm-fork
//! phase, an optional deadline (in-flight machines are interrupted via
//! the `SimBuilder::cancel_flag` hook and the shard journal resumes the
//! rest later), and per-point worker attribution.

use crate::{
    run_workload_observed, run_workload_restored_observed, HarnessOpts, MetricsSpec, RunRecord,
};
use mi6_core::{CpiCategory, CpiStack};
use mi6_grid::Scheduler;
use mi6_soc::{SimBuilder, Variant};
use mi6_workloads::{Workload, WorkloadParams};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One point of the variant×workload grid.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Processor variant to simulate.
    pub variant: Variant,
    /// Workload to run on core 0.
    pub workload: Workload,
    /// Run options (instruction volume, timer).
    pub opts: HarnessOpts,
}

impl GridPoint {
    /// The point's canonical key: `variant/workload/kinsts/timer/seed-hex`.
    ///
    /// The key is the identity a point has *everywhere* — it dedupes
    /// shared passes across figures, assigns the point to a shard
    /// (`mi6_grid::shard_of`), identifies it in the shard journal, and is
    /// what `merge` validates coverage over. Its format is an on-disk
    /// contract; never change it without a migration story.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{:x}",
            self.variant.name(),
            self.workload.name(),
            self.opts.kinsts,
            self.opts.timer,
            self.opts.seed
        )
    }
}

/// The `worker` value marking a result aggregated across seeds (see
/// `mi6_bench::mean_results`) rather than produced by one scheduler
/// worker. Distinct from any real worker id so the shard-balance report
/// built from journal `wall_ms`/`worker` fields can exclude aggregated
/// points instead of silently crediting them all to worker 0.
pub const AGGREGATED_WORKER: usize = u32::MAX as usize;

/// A completed grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point that produced this result.
    pub point: GridPoint,
    /// The run's counters.
    pub record: RunRecord,
    /// Host wall-clock time the simulation took, in milliseconds.
    pub wall_ms: u64,
    /// The scheduler worker that ran the point (0 when not run by the
    /// scheduler, e.g. a merge-reconstructed result predating workers;
    /// [`AGGREGATED_WORKER`] for seed-aggregated means).
    pub worker: usize,
    /// Warm-up provenance: `"cold"`, `"exact:<cycles>"`, or
    /// `"forkbase:<cycles>"`. Cold and exact runs are bit-identical and
    /// mix freely; fork-base results measure a different (shared-prefix)
    /// methodology, so `merge` hard-errors when shards mix fork-base
    /// with anything else.
    pub warm: String,
    /// Path of the per-point metrics JSONL artifact, when the run was
    /// sampled (`--metrics-every`); `None` for unobserved runs. The
    /// journal field is append-only: readers tolerate its absence.
    pub metrics: Option<String>,
}

impl PointResult {
    /// One JSON object describing this point (hand-rolled: the harness is
    /// dependency-free, and every field is numeric or a known-safe name).
    ///
    /// Floats are formatted with `{}` (shortest round-trip form), so a
    /// merge that re-parses this line reproduces the in-memory value
    /// bit-for-bit — sharded figure tables must be byte-identical to
    /// unsharded ones.
    pub fn to_json(&self) -> String {
        // New fields go at the end (the journal shape is append-only):
        // stall attribution (the `stall_*` keys survive under their
        // historical names, now sourced from the CPI stack's pressure
        // counters), ticked-vs-skipped cycle accounting, the CPI-stack
        // slots, and the optional metrics-artifact path, all absent from
        // old journals and defaulted by `from_json`.
        let metrics = match &self.metrics {
            Some(p) => format!(",\"metrics\":\"{p}\""),
            None => String::new(),
        };
        let mut cpi = format!(
            "\"cpi_cycles\":{},\"cpi_commit_width\":{}",
            self.record.cpi.cycles, self.record.commit_width
        );
        for cat in CpiCategory::ALL {
            use std::fmt::Write as _;
            let _ = write!(
                cpi,
                ",\"{}\":{}",
                cat.metric_name(),
                self.record.cpi.get(cat)
            );
        }
        format!(
            concat!(
                "{{\"variant\":\"{}\",\"workload\":\"{}\",\"kinsts\":{},",
                "\"timer\":{},\"seed\":{},\"cycles\":{},\"instructions\":{},",
                "\"branch_mpki\":{},\"llc_mpki\":{},",
                "\"flush_stall_cycles\":{},\"traps\":{},\"wall_ms\":{},",
                "\"worker\":{},\"warm\":\"{}\",",
                "\"stall_rob_full\":{},\"stall_iq_full\":{},\"stall_lq_full\":{},",
                "\"stall_sq_full\":{},\"stall_sb_full\":{},",
                "\"cycles_ticked\":{},\"cycles_skipped\":{},{}{}}}"
            ),
            self.point.variant.name(),
            self.record.name,
            self.point.opts.kinsts,
            self.point.opts.timer,
            self.point.opts.seed,
            self.record.cycles,
            self.record.instructions,
            self.record.branch_mpki,
            self.record.llc_mpki,
            self.record.flush_stall_cycles,
            self.record.traps,
            self.wall_ms,
            self.worker,
            self.warm,
            self.record.cpi.rename_rob_full,
            self.record.cpi.rename_iq_full,
            self.record.cpi.rename_lq_full,
            self.record.cpi.rename_sq_full,
            self.record.cpi.commit_sb_full,
            self.record.cycles_ticked,
            self.record.cycles_skipped,
            cpi,
            metrics,
        )
    }

    /// Parses one [`PointResult::to_json`] line back (the merge path).
    ///
    /// # Errors
    ///
    /// Returns a description of the first defect: malformed JSON (e.g. a
    /// journal line torn by a mid-write kill), a missing field, or an
    /// unknown variant/workload name.
    pub fn from_json(line: &str) -> Result<PointResult, String> {
        let obj = mi6_grid::parse_object(line).map_err(|e| e.to_string())?;
        let str_field = |name: &str| -> Result<&str, String> {
            obj.get(name)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("missing string field `{name}`"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            obj.get(name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field `{name}`"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing number field `{name}`"))
        };
        let variant_name = str_field("variant")?;
        let variant = Variant::from_name(variant_name)
            .ok_or_else(|| format!("unknown variant `{variant_name}`"))?;
        let workload_name = str_field("workload")?;
        let workload = Workload::from_name(workload_name)
            .ok_or_else(|| format!("unknown workload `{workload_name}`"))?;
        let point = GridPoint {
            variant,
            workload,
            opts: HarnessOpts {
                kinsts: u64_field("kinsts")?,
                timer: u64_field("timer")?,
                seed: u64_field("seed")?,
            },
        };
        // Post-observability journal fields: absent from old journals,
        // so they default instead of erroring (append-only tolerance).
        let opt_u64 = |name: &str| -> u64 { obj.get(name).and_then(|v| v.as_u64()).unwrap_or(0) };
        Ok(PointResult {
            point,
            record: RunRecord {
                name: workload.name(),
                cycles: u64_field("cycles")?,
                instructions: u64_field("instructions")?,
                branch_mpki: f64_field("branch_mpki")?,
                llc_mpki: f64_field("llc_mpki")?,
                flush_stall_cycles: u64_field("flush_stall_cycles")?,
                traps: u64_field("traps")?,
                cpi: CpiStack::from_raw(
                    opt_u64("cpi_cycles"),
                    {
                        let mut slots = [0u64; mi6_core::CPI_CATEGORIES];
                        for (i, cat) in CpiCategory::ALL.into_iter().enumerate() {
                            slots[i] = opt_u64(cat.metric_name());
                        }
                        slots
                    },
                    [
                        opt_u64("stall_rob_full"),
                        opt_u64("stall_iq_full"),
                        opt_u64("stall_lq_full"),
                        opt_u64("stall_sq_full"),
                        opt_u64("stall_sb_full"),
                    ],
                ),
                // 0 = "stack absent" (pre-CPI-stack journal); renderers
                // key stack columns off `cpi.cycles > 0`.
                commit_width: opt_u64("cpi_commit_width"),
                cycles_ticked: opt_u64("cycles_ticked"),
                cycles_skipped: opt_u64("cycles_skipped"),
            },
            wall_ms: u64_field("wall_ms")?,
            worker: u64_field("worker")? as usize,
            warm: str_field("warm")?.to_string(),
            metrics: obj
                .get("metrics")
                .and_then(|v| v.as_str())
                .map(str::to_string),
        })
    }
}

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warm-fork configuration: simulate each point's warm-up prefix once,
/// snapshot it into `dir`, and start every grid run from the warmed state.
///
/// Two modes:
///
/// - **exact** (`fork_base == false`): one snapshot per (variant,
///   workload, seed), restored strictly. Results are bit-identical to
///   non-forked runs; the checkpoint directory acts as a cross-invocation
///   cache (re-running a figure, sharing BASE passes between figures,
///   resuming after preemption, and *sharing warm-ups between shard
///   hosts* all skip the warm-up simulation).
/// - **fork-base** (`fork_base == true`): one snapshot per (workload,
///   seed), warmed on BASE and run to a memory-quiescent point, then
///   *forked into every variant* — the reference-warming methodology:
///   each variant's measurement shares the identical warmed prefix, and
///   the grid simulates each warm-up exactly once.
#[derive(Clone, Debug)]
pub struct WarmFork {
    /// Cycles of warm-up to simulate before the snapshot.
    pub warmup_cycles: u64,
    /// Directory the warm snapshots are cached in.
    pub dir: PathBuf,
    /// Warm on BASE once per workload and fork across variants.
    pub fork_base: bool,
}

/// Extra cycles allowed for the quiescence search after a fork-base
/// warm-up (quiescent windows occur within a handful of misses' worth of
/// cycles; this cap only guards against pathological configurations).
const QUIESCE_CAP: u64 = 5_000_000;

impl WarmFork {
    /// The variant a point's warm-up is simulated on.
    fn warm_variant(&self, point: &GridPoint) -> Variant {
        if self.fork_base {
            Variant::Base
        } else {
            point.variant
        }
    }

    /// The snapshot file backing a point (shared across variants in
    /// fork-base mode).
    pub fn snapshot_path(&self, point: &GridPoint) -> PathBuf {
        let variant = if self.fork_base {
            "forkbase".to_string()
        } else {
            point
                .variant
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
        };
        self.dir.join(format!(
            "warm-{variant}-{}-k{}-t{}-s{:x}-c{}.mi6snap",
            point.workload.name(),
            point.opts.kinsts,
            point.opts.timer,
            point.opts.seed,
            self.warmup_cycles
        ))
    }

    /// Simulates one warm-up and writes its snapshot (atomically, so a
    /// preempted run never leaves a torn file behind).
    fn create_snapshot(&self, point: &GridPoint, path: &PathBuf) {
        let variant = self.warm_variant(point);
        let opts = &point.opts;
        let params = WorkloadParams::evaluation()
            .with_target_kinsts(opts.kinsts)
            .with_seed(opts.seed);
        let mut machine = SimBuilder::new(variant)
            .timer_interval(opts.timer)
            .workload(0, point.workload.build(&params))
            .build()
            .unwrap_or_else(|e| panic!("warming {} on {variant}: {e}", point.workload));
        machine.run_cycles(self.warmup_cycles);
        assert!(
            !machine.all_halted(),
            "--warmup {} exceeds the total runtime of {} at {}k instructions; lower it",
            self.warmup_cycles,
            point.workload,
            opts.kinsts
        );
        if self.fork_base {
            // Opportunistic first: many workloads hit a natural quiescent
            // window (no timing perturbation at all); streaming workloads
            // never do and need the fetch-stall drain.
            if machine.run_until_mem_quiescent(20_000).is_err() {
                machine
                    .drain_to_quiescence(QUIESCE_CAP)
                    .unwrap_or_else(|e| panic!("draining {} warm-up: {e}", point.workload));
            }
            assert!(
                !machine.all_halted(),
                "--warmup {} left no work after the warm-up of {}; lower it",
                self.warmup_cycles,
                point.workload
            );
        }
        // Unique per process: the checkpoint dir is a shared cache, and
        // two racing invocations writing the same temp name could publish
        // a torn file through the other's rename.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, machine.snapshot())
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// Per-grid metrics sampling: every point's run gets its own JSONL
/// artifact in `dir`, named after the point's canonical key, and the
/// artifact path is attributed in the point's journal line.
#[derive(Clone, Debug)]
pub struct GridMetrics {
    /// Sampling interval in cycles.
    pub every: u64,
    /// Directory the per-point `<key>.metrics.jsonl` files land in.
    pub dir: PathBuf,
}

impl GridMetrics {
    /// The metrics artifact backing one point (`/` in the key becomes
    /// `-` so the whole key stays one path component).
    pub fn artifact_path(&self, point: &GridPoint) -> PathBuf {
        self.dir
            .join(format!("{}.metrics.jsonl", point.key().replace('/', "-")))
    }
}

/// How [`run_grid_scheduled`] runs a point set.
#[derive(Clone, Debug)]
pub struct GridSchedule<'w> {
    /// Worker thread count.
    pub threads: usize,
    /// Points claimed per queue visit (0 = auto; see
    /// [`mi6_grid::Scheduler`]).
    pub batch: usize,
    /// Optional warm-fork phase.
    pub warm: Option<&'w WarmFork>,
    /// Stop claiming new points and cancel in-flight machines once this
    /// instant passes; unfinished points stay un-journaled so a resumed
    /// shard recomputes exactly them.
    pub deadline: Option<Instant>,
    /// Optional per-point metrics sampling (`--metrics-every`).
    pub metrics: Option<GridMetrics>,
}

impl<'w> GridSchedule<'w> {
    /// A schedule with `threads` workers and nothing else.
    pub fn new(threads: usize) -> GridSchedule<'w> {
        GridSchedule {
            threads,
            batch: 0,
            warm: None,
            deadline: None,
            metrics: None,
        }
    }
}

/// What a scheduled grid run produced.
#[derive(Debug)]
pub struct GridOutcome {
    /// Per-point results in `points` order; `None` = cancelled/unstarted.
    pub results: Vec<Option<PointResult>>,
    /// Points that finished.
    pub completed: usize,
    /// Points that did not (deadline).
    pub cancelled: usize,
    /// Whether the deadline fired.
    pub deadline_hit: bool,
}

/// Runs every grid point across `threads` worker threads.
///
/// `on_result` is invoked on the caller's thread as each point finishes
/// (in completion order — use it for streaming output, not rendering).
/// The returned vector is in `points` order.
pub fn run_grid(
    points: &[GridPoint],
    threads: usize,
    on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    run_grid_with(points, threads, None, on_result)
}

/// [`run_grid`] with an optional warm-fork phase: missing warm snapshots
/// are generated first (in parallel, one per unique warm-up), then every
/// grid point starts from its warmed state.
pub fn run_grid_with(
    points: &[GridPoint],
    threads: usize,
    warm: Option<&WarmFork>,
    on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    let mut schedule = GridSchedule::new(threads);
    schedule.warm = warm;
    run_grid_scheduled(points, &schedule, on_result)
        .results
        .into_iter()
        .map(|r| r.expect("every grid point completed (no deadline set)"))
        .collect()
}

/// The full scheduled grid run: warm-fork phase (if configured), then the
/// measurement phase on the work-stealing scheduler, with per-point
/// cancellation against the deadline.
pub fn run_grid_scheduled(
    points: &[GridPoint],
    schedule: &GridSchedule<'_>,
    mut on_result: impl FnMut(&PointResult),
) -> GridOutcome {
    let n = points.len();
    if n == 0 {
        return GridOutcome {
            results: Vec::new(),
            completed: 0,
            cancelled: 0,
            deadline_hit: false,
        };
    }
    let warm_sched = Scheduler::new(schedule.threads).with_deadline(schedule.deadline);
    if let Some(warm) = schedule.warm {
        std::fs::create_dir_all(&warm.dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", warm.dir.display()));
        // One warm-up per unique snapshot file; skip files that already
        // exist (the cache / preemption-resume / cross-host path).
        let mut pending: BTreeMap<PathBuf, GridPoint> = BTreeMap::new();
        for p in points {
            let path = warm.snapshot_path(p);
            if !path.exists() {
                pending.entry(path).or_insert(*p);
            }
        }
        let todo: Vec<(PathBuf, GridPoint)> = pending.into_iter().collect();
        if !todo.is_empty() {
            eprintln!(
                "  warm-fork: simulating {} warm-up prefix(es) of {} cycles",
                todo.len(),
                warm.warmup_cycles
            );
            // Deadline granularity here is one warm-up: a warm-up that
            // has started always completes and publishes its snapshot
            // (later invocations reuse it), but no new ones are claimed
            // past the deadline.
            warm_sched.run(
                &todo,
                |_ctx, _i, (path, point)| {
                    warm.create_snapshot(point, path);
                    Some(())
                },
                |_, _| {},
            );
        }
    }
    let warm_tag = match schedule.warm {
        None => "cold".to_string(),
        Some(w) if w.fork_base => format!("forkbase:{}", w.warmup_cycles),
        Some(w) => format!("exact:{}", w.warmup_cycles),
    };
    if let Some(metrics) = &schedule.metrics {
        std::fs::create_dir_all(&metrics.dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", metrics.dir.display()));
    }
    let sched = Scheduler::new(schedule.threads)
        .with_batch(schedule.batch)
        .with_deadline(schedule.deadline);
    let outcome = sched.run(
        points,
        |ctx, _i, point| {
            let t0 = Instant::now();
            let cancel = Some(Arc::clone(&ctx.cancel));
            let metrics = schedule.metrics.as_ref().map(|g| MetricsSpec {
                path: g.artifact_path(point),
                every: g.every,
            });
            let record = match schedule.warm {
                None => run_workload_observed(
                    point.variant,
                    point.workload,
                    &point.opts,
                    cancel,
                    metrics.as_ref(),
                )?,
                Some(warm) => {
                    let path = warm.snapshot_path(point);
                    let snapshot = std::fs::read(&path)
                        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
                    run_workload_restored_observed(
                        point.variant,
                        point.workload,
                        &point.opts,
                        &snapshot,
                        warm.fork_base,
                        cancel,
                        metrics.as_ref(),
                    )?
                }
            };
            Some(PointResult {
                point: *point,
                record,
                wall_ms: t0.elapsed().as_millis() as u64,
                worker: ctx.worker,
                warm: warm_tag.clone(),
                metrics: metrics.map(|m| m.path.display().to_string()),
            })
        },
        |_, res| on_result(res),
    );
    GridOutcome {
        results: outcome.results,
        completed: outcome.completed,
        cancelled: outcome.cancelled,
        deadline_hit: outcome.deadline_hit,
    }
}

/// The full variant×workload grid for one variant (all eleven paper
/// workloads).
pub fn variant_points(variant: Variant, opts: HarnessOpts) -> Vec<GridPoint> {
    variant_points_for(variant, opts, &Workload::ALL)
}

/// One variant's grid over an explicit workload set (how `--workload`
/// restricts a figure, and how the adversarial `enclave-ws` runs in a
/// plain grid).
pub fn variant_points_for(
    variant: Variant,
    opts: HarnessOpts,
    workloads: &[Workload],
) -> Vec<GridPoint> {
    workloads
        .iter()
        .map(|&workload| GridPoint {
            variant,
            workload,
            opts,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts::default().with_kinsts(10).with_timer(0)
    }

    #[test]
    fn grid_results_arrive_in_point_order() {
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Arb,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let mut streamed = 0usize;
        let results = run_grid(&points, 3, |_| streamed += 1);
        assert_eq!(streamed, 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].record.name, "hmmer");
        assert_eq!(results[1].record.name, "sjeng");
        assert_eq!(results[2].point.variant, Variant::Arb);
        for r in &results {
            assert!(r.record.cycles > 0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let points = variant_points(Variant::Base, tiny_opts())[..3].to_vec();
        let serial = run_grid(&points, 1, |_| {});
        let parallel = run_grid(&points, 3, |_| {});
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.record.cycles, b.record.cycles, "{}", a.record.name);
            assert_eq!(a.record.instructions, b.record.instructions);
        }
    }

    fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mi6-warm-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exact_warm_fork_matches_cold_runs_bit_for_bit() {
        let dir = scratch_dir("exact");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let cold = run_grid(&points, 2, |_| {});
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: dir.clone(),
            fork_base: false,
        };
        // First pass simulates the warm-ups; the second reuses the cache.
        for pass in 0..2 {
            let warmed = run_grid_with(&points, 2, Some(&warm), |_| {});
            for (c, f) in cold.iter().zip(&warmed) {
                assert_eq!(c.record.cycles, f.record.cycles, "pass {pass}");
                assert_eq!(c.record.instructions, f.record.instructions);
                assert_eq!(c.record.traps, f.record.traps);
            }
        }
        // One snapshot per (variant, workload).
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fork_base_shares_one_warmup_across_variants() {
        let dir = scratch_dir("forkbase");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
        ];
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: dir.clone(),
            fork_base: true,
        };
        let a = run_grid_with(&points, 2, Some(&warm), |_| {});
        // Both variants forked from one shared BASE-warmed snapshot.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // The BASE point is an exact continuation: identical to a cold run.
        let cold = run_grid(&points[..1], 1, |_| {});
        assert_eq!(a[0].record.cycles, cold[0].record.cycles);
        assert_eq!(a[0].record.instructions, cold[0].record.instructions);
        // Forked runs are deterministic and complete.
        let b = run_grid_with(&points, 2, Some(&warm), |_| {});
        assert_eq!(a[1].record.cycles, b[1].record.cycles);
        assert!(a[1].record.instructions > 5_000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_shape() {
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: tiny_opts(),
        }];
        let results = run_grid(&points, 1, |_| {});
        let json = results[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"variant\":\"BASE\""));
        assert!(json.contains("\"workload\":\"hmmer\""));
        assert!(json.contains("\"cycles\":"));
        assert!(json.contains("\"wall_ms\":"));
        assert!(json.contains("\"worker\":"));
        assert!(json.contains("\"warm\":\"cold\""));
        // Seed sweeps are distinguishable in the JSONL stream.
        assert!(json.contains(&format!("\"seed\":{}", crate::DEFAULT_SEED)));
        // The CPI stack rides along: its own cycle counter, the width it
        // was accounted against, and one key per category.
        assert!(json.contains("\"cpi_cycles\":"));
        assert!(json.contains("\"cpi_commit_width\":2"));
        for cat in CpiCategory::ALL {
            assert!(
                json.contains(&format!("\"{}\":", cat.metric_name())),
                "missing {}",
                cat.metric_name()
            );
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let points = [GridPoint {
            variant: Variant::Fpma,
            workload: Workload::Sjeng,
            opts: tiny_opts().with_seed(0xDEAD_BEEF_1234_5678),
        }];
        let results = run_grid(&points, 1, |_| {});
        let parsed = PointResult::from_json(&results[0].to_json()).unwrap();
        assert_eq!(parsed.point.key(), results[0].point.key());
        assert_eq!(parsed.record.cycles, results[0].record.cycles);
        assert_eq!(parsed.record.instructions, results[0].record.instructions);
        // Floats round-trip bit-for-bit: merged figure tables must be
        // byte-identical to unsharded ones.
        assert_eq!(parsed.record.branch_mpki, results[0].record.branch_mpki);
        assert_eq!(parsed.record.llc_mpki, results[0].record.llc_mpki);
        assert_eq!(parsed.wall_ms, results[0].wall_ms);
        assert_eq!(parsed.worker, results[0].worker);
        assert_eq!(parsed.warm, "cold");
        // The journaled CPI-stack state (slots, pressure counters, its
        // own cycle counter) survives the round trip, invariant intact.
        // (In-flight attribution bookkeeping is deliberately not
        // journaled, so compare the journaled fields, not the struct.)
        assert_eq!(parsed.record.cpi.slots, results[0].record.cpi.slots);
        assert_eq!(parsed.record.cpi.cycles, results[0].record.cpi.cycles);
        assert_eq!(
            parsed.record.cpi.pressure(),
            results[0].record.cpi.pressure()
        );
        assert_eq!(parsed.record.commit_width, results[0].record.commit_width);
        assert_eq!(
            parsed.record.cpi.total_slots(),
            parsed.record.cpi.cycles * parsed.record.commit_width
        );
        // And a torn line is rejected, not misparsed.
        let json = results[0].to_json();
        assert!(PointResult::from_json(&json[..json.len() - 8]).is_err());
    }

    #[test]
    fn point_key_is_the_documented_contract() {
        let p = GridPoint {
            variant: Variant::Fpma,
            workload: Workload::Gcc,
            opts: HarnessOpts {
                kinsts: 2000,
                timer: 0,
                seed: 0xC0FFEE,
            },
        };
        assert_eq!(p.key(), "F+P+M+A/gcc/2000/0/c0ffee");
    }

    #[test]
    fn expired_deadline_cancels_everything_cleanly() {
        let points = variant_points(Variant::Base, tiny_opts());
        let mut schedule = GridSchedule::new(2);
        schedule.deadline = Some(Instant::now());
        let mut streamed = 0usize;
        let out = run_grid_scheduled(&points, &schedule, |_| streamed += 1);
        assert!(out.deadline_hit);
        assert_eq!(out.completed, 0);
        assert_eq!(out.cancelled, points.len());
        assert_eq!(streamed, 0);
        assert!(out.results.iter().all(Option::is_none));
    }

    #[test]
    fn worker_ids_are_recorded() {
        let points = variant_points(Variant::Base, tiny_opts());
        let results = run_grid(&points, 3, |_| {});
        assert!(results.iter().all(|r| r.worker < 3));
    }
}
