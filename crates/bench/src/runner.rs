//! The parallel experiment runner.
//!
//! A figure is a grid of (variant, workload, opts) points. [`run_grid`]
//! fans the points out across OS threads with a shared work queue, streams
//! each finished point through a caller-supplied callback (the CLI writes
//! one JSON object per point), and returns the results in point order so
//! figure rendering stays deterministic regardless of completion order.

use crate::{run_workload, run_workload_restored, HarnessOpts, RunRecord};
use mi6_soc::{SimBuilder, Variant};
use mi6_workloads::{Workload, WorkloadParams};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// One point of the variant×workload grid.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Processor variant to simulate.
    pub variant: Variant,
    /// Workload to run on core 0.
    pub workload: Workload,
    /// Run options (instruction volume, timer).
    pub opts: HarnessOpts,
}

/// A completed grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point that produced this result.
    pub point: GridPoint,
    /// The run's counters.
    pub record: RunRecord,
    /// Host wall-clock time the simulation took, in milliseconds.
    pub wall_ms: u64,
}

impl PointResult {
    /// One JSON object describing this point (hand-rolled: the harness is
    /// dependency-free, and every field is numeric or a known-safe name).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"variant\":\"{}\",\"workload\":\"{}\",\"kinsts\":{},",
                "\"timer\":{},\"seed\":{},\"cycles\":{},\"instructions\":{},",
                "\"branch_mpki\":{:.3},\"llc_mpki\":{:.3},",
                "\"flush_stall_cycles\":{},\"traps\":{},\"wall_ms\":{}}}"
            ),
            self.point.variant.name(),
            self.record.name,
            self.point.opts.kinsts,
            self.point.opts.timer,
            self.point.opts.seed,
            self.record.cycles,
            self.record.instructions,
            self.record.branch_mpki,
            self.record.llc_mpki,
            self.record.flush_stall_cycles,
            self.record.traps,
            self.wall_ms,
        )
    }
}

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warm-fork configuration: simulate each point's warm-up prefix once,
/// snapshot it into `dir`, and start every grid run from the warmed state.
///
/// Two modes:
///
/// - **exact** (`fork_base == false`): one snapshot per (variant,
///   workload, seed), restored strictly. Results are bit-identical to
///   non-forked runs; the checkpoint directory acts as a cross-invocation
///   cache (re-running a figure, sharing BASE passes between figures, and
///   resuming after preemption all skip the warm-up simulation).
/// - **fork-base** (`fork_base == true`): one snapshot per (workload,
///   seed), warmed on BASE and run to a memory-quiescent point, then
///   *forked into every variant* — the reference-warming methodology:
///   each variant's measurement shares the identical warmed prefix, and
///   the grid simulates each warm-up exactly once.
#[derive(Clone, Debug)]
pub struct WarmFork {
    /// Cycles of warm-up to simulate before the snapshot.
    pub warmup_cycles: u64,
    /// Directory the warm snapshots are cached in.
    pub dir: PathBuf,
    /// Warm on BASE once per workload and fork across variants.
    pub fork_base: bool,
}

/// Extra cycles allowed for the quiescence search after a fork-base
/// warm-up (quiescent windows occur within a handful of misses' worth of
/// cycles; this cap only guards against pathological configurations).
const QUIESCE_CAP: u64 = 5_000_000;

impl WarmFork {
    /// The variant a point's warm-up is simulated on.
    fn warm_variant(&self, point: &GridPoint) -> Variant {
        if self.fork_base {
            Variant::Base
        } else {
            point.variant
        }
    }

    /// The snapshot file backing a point (shared across variants in
    /// fork-base mode).
    pub fn snapshot_path(&self, point: &GridPoint) -> PathBuf {
        let variant = if self.fork_base {
            "forkbase".to_string()
        } else {
            point
                .variant
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
        };
        self.dir.join(format!(
            "warm-{variant}-{}-k{}-t{}-s{:x}-c{}.mi6snap",
            point.workload.name(),
            point.opts.kinsts,
            point.opts.timer,
            point.opts.seed,
            self.warmup_cycles
        ))
    }

    /// Simulates one warm-up and writes its snapshot (atomically, so a
    /// preempted run never leaves a torn file behind).
    fn create_snapshot(&self, point: &GridPoint, path: &PathBuf) {
        let variant = self.warm_variant(point);
        let opts = &point.opts;
        let params = WorkloadParams::evaluation()
            .with_target_kinsts(opts.kinsts)
            .with_seed(opts.seed);
        let mut machine = SimBuilder::new(variant)
            .timer_interval(opts.timer)
            .workload(0, point.workload.build(&params))
            .build()
            .unwrap_or_else(|e| panic!("warming {} on {variant}: {e}", point.workload));
        machine.run_cycles(self.warmup_cycles);
        assert!(
            !machine.all_halted(),
            "--warmup {} exceeds the total runtime of {} at {}k instructions; lower it",
            self.warmup_cycles,
            point.workload,
            opts.kinsts
        );
        if self.fork_base {
            // Opportunistic first: many workloads hit a natural quiescent
            // window (no timing perturbation at all); streaming workloads
            // never do and need the fetch-stall drain.
            if machine.run_until_mem_quiescent(20_000).is_err() {
                machine
                    .drain_to_quiescence(QUIESCE_CAP)
                    .unwrap_or_else(|e| panic!("draining {} warm-up: {e}", point.workload));
            }
            assert!(
                !machine.all_halted(),
                "--warmup {} left no work after the warm-up of {}; lower it",
                self.warmup_cycles,
                point.workload
            );
        }
        // Unique per process: the checkpoint dir is a shared cache, and
        // two racing invocations writing the same temp name could publish
        // a torn file through the other's rename.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, machine.snapshot())
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    }
}

/// Runs every grid point across `threads` worker threads.
///
/// `on_result` is invoked on the caller's thread as each point finishes
/// (in completion order — use it for streaming output, not rendering).
/// The returned vector is in `points` order.
pub fn run_grid(
    points: &[GridPoint],
    threads: usize,
    on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    run_grid_with(points, threads, None, on_result)
}

/// [`run_grid`] with an optional warm-fork phase: missing warm snapshots
/// are generated first (in parallel, one per unique warm-up), then every
/// grid point starts from its warmed state.
pub fn run_grid_with(
    points: &[GridPoint],
    threads: usize,
    warm: Option<&WarmFork>,
    mut on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if let Some(warm) = warm {
        std::fs::create_dir_all(&warm.dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", warm.dir.display()));
        // One warm-up per unique snapshot file; skip files that already
        // exist (the cache / preemption-resume path).
        let mut pending: BTreeMap<PathBuf, GridPoint> = BTreeMap::new();
        for p in points {
            let path = warm.snapshot_path(p);
            if !path.exists() {
                pending.entry(path).or_insert(*p);
            }
        }
        let todo: Vec<(PathBuf, GridPoint)> = pending.into_iter().collect();
        if !todo.is_empty() {
            eprintln!(
                "  warm-fork: simulating {} warm-up prefix(es) of {} cycles",
                todo.len(),
                warm.warmup_cycles
            );
            let next = AtomicUsize::new(0);
            let workers = threads.max(1).min(todo.len());
            thread::scope(|s| {
                for _ in 0..workers {
                    let next = &next;
                    let todo = &todo;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= todo.len() {
                            break;
                        }
                        let (path, point) = &todo[i];
                        warm.create_snapshot(point, path);
                    });
                }
            });
        }
    }
    let workers = threads.max(1).min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, PointResult)>();
    let mut results: Vec<Option<PointResult>> = (0..n).map(|_| None).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let point = points[i];
                let t0 = Instant::now();
                let record = match warm {
                    None => run_workload(point.variant, point.workload, &point.opts),
                    Some(warm) => {
                        let path = warm.snapshot_path(&point);
                        let snapshot = std::fs::read(&path)
                            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
                        run_workload_restored(
                            point.variant,
                            point.workload,
                            &point.opts,
                            &snapshot,
                            warm.fork_base,
                        )
                    }
                };
                let wall_ms = t0.elapsed().as_millis() as u64;
                if tx
                    .send((
                        i,
                        PointResult {
                            point,
                            record,
                            wall_ms,
                        },
                    ))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, res)) = rx.recv() {
            on_result(&res);
            results[i] = Some(res);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every grid point completed"))
        .collect()
}

/// The full variant×workload grid for one variant (all eleven workloads).
pub fn variant_points(variant: Variant, opts: HarnessOpts) -> Vec<GridPoint> {
    Workload::ALL
        .iter()
        .map(|&workload| GridPoint {
            variant,
            workload,
            opts,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts::default().with_kinsts(10).with_timer(0)
    }

    #[test]
    fn grid_results_arrive_in_point_order() {
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Arb,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let mut streamed = 0usize;
        let results = run_grid(&points, 3, |_| streamed += 1);
        assert_eq!(streamed, 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].record.name, "hmmer");
        assert_eq!(results[1].record.name, "sjeng");
        assert_eq!(results[2].point.variant, Variant::Arb);
        for r in &results {
            assert!(r.record.cycles > 0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let points = variant_points(Variant::Base, tiny_opts())[..3].to_vec();
        let serial = run_grid(&points, 1, |_| {});
        let parallel = run_grid(&points, 3, |_| {});
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.record.cycles, b.record.cycles, "{}", a.record.name);
            assert_eq!(a.record.instructions, b.record.instructions);
        }
    }

    fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mi6-warm-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exact_warm_fork_matches_cold_runs_bit_for_bit() {
        let dir = scratch_dir("exact");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let cold = run_grid(&points, 2, |_| {});
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: dir.clone(),
            fork_base: false,
        };
        // First pass simulates the warm-ups; the second reuses the cache.
        for pass in 0..2 {
            let warmed = run_grid_with(&points, 2, Some(&warm), |_| {});
            for (c, f) in cold.iter().zip(&warmed) {
                assert_eq!(c.record.cycles, f.record.cycles, "pass {pass}");
                assert_eq!(c.record.instructions, f.record.instructions);
                assert_eq!(c.record.traps, f.record.traps);
            }
        }
        // One snapshot per (variant, workload).
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fork_base_shares_one_warmup_across_variants() {
        let dir = scratch_dir("forkbase");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
        ];
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: dir.clone(),
            fork_base: true,
        };
        let a = run_grid_with(&points, 2, Some(&warm), |_| {});
        // Both variants forked from one shared BASE-warmed snapshot.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // The BASE point is an exact continuation: identical to a cold run.
        let cold = run_grid(&points[..1], 1, |_| {});
        assert_eq!(a[0].record.cycles, cold[0].record.cycles);
        assert_eq!(a[0].record.instructions, cold[0].record.instructions);
        // Forked runs are deterministic and complete.
        let b = run_grid_with(&points, 2, Some(&warm), |_| {});
        assert_eq!(a[1].record.cycles, b[1].record.cycles);
        assert!(a[1].record.instructions > 5_000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_shape() {
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: tiny_opts(),
        }];
        let results = run_grid(&points, 1, |_| {});
        let json = results[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"variant\":\"BASE\""));
        assert!(json.contains("\"workload\":\"hmmer\""));
        assert!(json.contains("\"cycles\":"));
        // Seed sweeps are distinguishable in the JSONL stream.
        assert!(json.contains(&format!("\"seed\":{}", crate::DEFAULT_SEED)));
    }
}
