//! The parallel experiment runner.
//!
//! A figure is a grid of (variant, workload, opts) points. [`run_grid`]
//! fans the points out across the `mi6-grid` slice-multiplexing machine
//! driver: each point's machine is advanced in bounded slices
//! (`Machine::step_slice`), so `--mux` can keep more machines in flight
//! than there are worker threads, machines that prove themselves inert
//! until a far-future cycle park in a wake-ordered heap instead of
//! owning a thread, and a deadline lands between slices instead of only
//! between points. The slice sequence is provably invisible in the
//! results (see `Machine::step_slice`), so driver output is
//! byte-identical to a serial run.
//!
//! [`run_grid_scheduled`] is the full surface: an optional warm-fork
//! phase (served from the in-memory [`SnapshotPool`] and/or the on-disk
//! checkpoint cache), a content-addressed [`ResultCache`] admission
//! check that short-circuits already-journaled points, an optional
//! deadline (interrupted machines record [`PartialPoint`] progress and
//! the shard journal resumes the rest later), and per-point worker
//! attribution.

use crate::{build_restore_target, build_workload_machine, HarnessOpts, MetricsSpec, RunRecord};
use mi6_core::{CpiCategory, CpiStack};
use mi6_grid::{MachineDriver, ResultCache, Scheduler, SliceTask, Step, WorkerCtx};
use mi6_soc::{Machine, PoolKey, SliceOutcome, SnapshotPool, Variant};
use mi6_workloads::Workload;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One point of the variant×workload grid.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// Processor variant to simulate.
    pub variant: Variant,
    /// Workload to run on core 0.
    pub workload: Workload,
    /// Run options (instruction volume, timer).
    pub opts: HarnessOpts,
}

impl GridPoint {
    /// The point's canonical key: `variant/workload/kinsts/timer/seed-hex`.
    ///
    /// The key is the identity a point has *everywhere* — it dedupes
    /// shared passes across figures, assigns the point to a shard
    /// (`mi6_grid::shard_of`), identifies it in the shard journal,
    /// addresses the point's result in the [`ResultCache`], and is
    /// what `merge` validates coverage over. Its format is an on-disk
    /// contract; never change it without a migration story.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{:x}",
            self.variant.name(),
            self.workload.name(),
            self.opts.kinsts,
            self.opts.timer,
            self.opts.seed
        )
    }
}

/// The `worker` value marking a result aggregated across seeds (see
/// `mi6_bench::mean_results`) rather than produced by one scheduler
/// worker. Distinct from any real worker id so the shard-balance report
/// built from journal `wall_ms`/`worker` fields can exclude aggregated
/// points instead of silently crediting them all to worker 0.
pub const AGGREGATED_WORKER: usize = u32::MAX as usize;

/// A completed grid point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The point that produced this result.
    pub point: GridPoint,
    /// The run's counters.
    pub record: RunRecord,
    /// Host wall-clock time the simulation took, in milliseconds. Under
    /// `--mux` this is the point's *active* time summed over its slices,
    /// excluding time parked or queued, so per-point costs stay
    /// comparable across mux factors.
    pub wall_ms: u64,
    /// The worker that ran the point's final slice (0 when not run by a
    /// worker, e.g. a merge-reconstructed result predating workers;
    /// [`AGGREGATED_WORKER`] for seed-aggregated means).
    pub worker: usize,
    /// Warm-up provenance: `"cold"`, `"exact:<cycles>"`, or
    /// `"forkbase:<cycles>"`. Cold and exact runs are bit-identical and
    /// mix freely; fork-base results measure a different (shared-prefix)
    /// methodology, so `merge` hard-errors when shards mix fork-base
    /// with anything else.
    pub warm: String,
    /// Path of the per-point metrics JSONL artifact, when the run was
    /// sampled (`--metrics-every`); `None` for unobserved runs. The
    /// journal field is append-only: readers tolerate its absence.
    pub metrics: Option<String>,
}

impl PointResult {
    /// One JSON object describing this point (hand-rolled: the harness is
    /// dependency-free, and every field is numeric or a known-safe name).
    ///
    /// Floats are formatted with `{}` (shortest round-trip form), so a
    /// merge that re-parses this line reproduces the in-memory value
    /// bit-for-bit — sharded figure tables must be byte-identical to
    /// unsharded ones.
    pub fn to_json(&self) -> String {
        // New fields go at the end (the journal shape is append-only):
        // stall attribution (the `stall_*` keys survive under their
        // historical names, now sourced from the CPI stack's pressure
        // counters), ticked-vs-skipped cycle accounting, the CPI-stack
        // slots, and the optional metrics-artifact path, all absent from
        // old journals and defaulted by `from_json`.
        let metrics = match &self.metrics {
            Some(p) => format!(",\"metrics\":\"{p}\""),
            None => String::new(),
        };
        let mut cpi = format!(
            "\"cpi_cycles\":{},\"cpi_commit_width\":{}",
            self.record.cpi.cycles, self.record.commit_width
        );
        for cat in CpiCategory::ALL {
            use std::fmt::Write as _;
            let _ = write!(
                cpi,
                ",\"{}\":{}",
                cat.metric_name(),
                self.record.cpi.get(cat)
            );
        }
        format!(
            concat!(
                "{{\"variant\":\"{}\",\"workload\":\"{}\",\"kinsts\":{},",
                "\"timer\":{},\"seed\":{},\"cycles\":{},\"instructions\":{},",
                "\"branch_mpki\":{},\"llc_mpki\":{},",
                "\"flush_stall_cycles\":{},\"traps\":{},\"wall_ms\":{},",
                "\"worker\":{},\"warm\":\"{}\",",
                "\"stall_rob_full\":{},\"stall_iq_full\":{},\"stall_lq_full\":{},",
                "\"stall_sq_full\":{},\"stall_sb_full\":{},",
                "\"cycles_ticked\":{},\"cycles_skipped\":{},{}{}}}"
            ),
            self.point.variant.name(),
            self.record.name,
            self.point.opts.kinsts,
            self.point.opts.timer,
            self.point.opts.seed,
            self.record.cycles,
            self.record.instructions,
            self.record.branch_mpki,
            self.record.llc_mpki,
            self.record.flush_stall_cycles,
            self.record.traps,
            self.wall_ms,
            self.worker,
            self.warm,
            self.record.cpi.rename_rob_full,
            self.record.cpi.rename_iq_full,
            self.record.cpi.rename_lq_full,
            self.record.cpi.rename_sq_full,
            self.record.cpi.commit_sb_full,
            self.record.cycles_ticked,
            self.record.cycles_skipped,
            cpi,
            metrics,
        )
    }

    /// Parses one [`PointResult::to_json`] line back (the merge path).
    ///
    /// # Errors
    ///
    /// Returns a description of the first defect: malformed JSON (e.g. a
    /// journal line torn by a mid-write kill), a missing field, an
    /// unknown variant/workload name, or a [`PartialPoint`] progress line
    /// (flagged `"partial":true`), which is *not* a completed result and
    /// must be recomputed, never merged.
    pub fn from_json(line: &str) -> Result<PointResult, String> {
        let obj = mi6_grid::parse_object(line).map_err(|e| e.to_string())?;
        if obj.contains_key("partial") {
            return Err("partial-progress line (interrupted point; recompute it)".to_string());
        }
        let str_field = |name: &str| -> Result<&str, String> {
            obj.get(name)
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("missing string field `{name}`"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            obj.get(name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("missing integer field `{name}`"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing number field `{name}`"))
        };
        let variant_name = str_field("variant")?;
        let variant = Variant::from_name(variant_name)
            .ok_or_else(|| format!("unknown variant `{variant_name}`"))?;
        let workload_name = str_field("workload")?;
        let workload = Workload::from_name(workload_name)
            .ok_or_else(|| format!("unknown workload `{workload_name}`"))?;
        let point = GridPoint {
            variant,
            workload,
            opts: HarnessOpts {
                kinsts: u64_field("kinsts")?,
                timer: u64_field("timer")?,
                seed: u64_field("seed")?,
            },
        };
        // Post-observability journal fields: absent from old journals,
        // so they default instead of erroring (append-only tolerance).
        let opt_u64 = |name: &str| -> u64 { obj.get(name).and_then(|v| v.as_u64()).unwrap_or(0) };
        Ok(PointResult {
            point,
            record: RunRecord {
                name: workload.name(),
                cycles: u64_field("cycles")?,
                instructions: u64_field("instructions")?,
                branch_mpki: f64_field("branch_mpki")?,
                llc_mpki: f64_field("llc_mpki")?,
                flush_stall_cycles: u64_field("flush_stall_cycles")?,
                traps: u64_field("traps")?,
                cpi: CpiStack::from_raw(
                    opt_u64("cpi_cycles"),
                    {
                        let mut slots = [0u64; mi6_core::CPI_CATEGORIES];
                        for (i, cat) in CpiCategory::ALL.into_iter().enumerate() {
                            slots[i] = opt_u64(cat.metric_name());
                        }
                        slots
                    },
                    [
                        opt_u64("stall_rob_full"),
                        opt_u64("stall_iq_full"),
                        opt_u64("stall_lq_full"),
                        opt_u64("stall_sq_full"),
                        opt_u64("stall_sb_full"),
                    ],
                ),
                // 0 = "stack absent" (pre-CPI-stack journal); renderers
                // key stack columns off `cpi.cycles > 0`.
                commit_width: opt_u64("cpi_commit_width"),
                cycles_ticked: opt_u64("cycles_ticked"),
                cycles_skipped: opt_u64("cycles_skipped"),
            },
            wall_ms: u64_field("wall_ms")?,
            worker: u64_field("worker")? as usize,
            warm: str_field("warm")?.to_string(),
            metrics: obj
                .get("metrics")
                .and_then(|v| v.as_str())
                .map(str::to_string),
        })
    }
}

/// Whether a journal line is a [`PartialPoint`] progress record
/// (`"partial":true`) rather than a completed result. Journal readers
/// count these separately from torn/garbage lines: partials are expected
/// after a deadline and simply mean the point must be recomputed.
pub fn is_partial_line(line: &str) -> bool {
    mi6_grid::parse_object(line).is_ok_and(|obj| obj.contains_key("partial"))
}

/// Partial progress of a point interrupted by a deadline or cancel.
///
/// Journaled with a `"partial":true` marker so campaign tooling can see
/// how far an interrupted shard got; [`PointResult::from_json`] rejects
/// these lines, so a resumed shard recomputes the point and merge
/// coverage never counts it.
#[derive(Clone, Debug)]
pub struct PartialPoint {
    /// The interrupted point.
    pub point: GridPoint,
    /// Simulated cycle the run was interrupted at.
    pub cycles: u64,
    /// Instructions committed so far (core 0).
    pub instructions: u64,
    /// Active host milliseconds spent before the interruption.
    pub wall_ms: u64,
    /// The worker running (or last to run) the point.
    pub worker: usize,
    /// Warm-up provenance tag of the interrupted run.
    pub warm: String,
}

impl PartialPoint {
    /// One JSON progress line, shaped like a [`PointResult`] prefix plus
    /// the terminal `"partial":true` marker.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"variant\":\"{}\",\"workload\":\"{}\",\"kinsts\":{},",
                "\"timer\":{},\"seed\":{},\"cycles\":{},\"instructions\":{},",
                "\"wall_ms\":{},\"worker\":{},\"warm\":\"{}\",\"partial\":true}}"
            ),
            self.point.variant.name(),
            self.point.workload.name(),
            self.point.opts.kinsts,
            self.point.opts.timer,
            self.point.opts.seed,
            self.cycles,
            self.instructions,
            self.wall_ms,
            self.worker,
            self.warm,
        )
    }
}

/// Default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warm-fork configuration: simulate each point's warm-up prefix once,
/// snapshot it, and start every grid run from the warmed state. Warm
/// states live in the in-memory [`SnapshotPool`] (when the schedule has
/// one), on disk under `dir` (when set), or both — the pool serves
/// restores without file I/O, the directory makes them durable across
/// invocations and shard hosts.
///
/// Two modes:
///
/// - **exact** (`fork_base == false`): one snapshot per (variant,
///   workload, seed), restored strictly. Results are bit-identical to
///   non-forked runs; the checkpoint directory acts as a cross-invocation
///   cache (re-running a figure, sharing BASE passes between figures,
///   resuming after preemption, and *sharing warm-ups between shard
///   hosts* all skip the warm-up simulation).
/// - **fork-base** (`fork_base == true`): one snapshot per (workload,
///   seed), warmed on BASE and run to a memory-quiescent point, then
///   *forked into every variant* — the reference-warming methodology:
///   each variant's measurement shares the identical warmed prefix, and
///   the grid simulates each warm-up exactly once.
#[derive(Clone, Debug)]
pub struct WarmFork {
    /// Cycles of warm-up to simulate before the snapshot.
    pub warmup_cycles: u64,
    /// On-disk snapshot cache; `None` runs pool-only (warm states live
    /// and die with the process, so the schedule must supply a
    /// [`SnapshotPool`]).
    pub dir: Option<PathBuf>,
    /// Warm on BASE once per workload and fork across variants.
    pub fork_base: bool,
}

/// Extra cycles allowed for the quiescence search after a fork-base
/// warm-up (quiescent windows occur within a handful of misses' worth of
/// cycles; this cap only guards against pathological configurations).
const QUIESCE_CAP: u64 = 5_000_000;

impl WarmFork {
    /// The variant a point's warm-up is simulated on.
    fn warm_variant(&self, point: &GridPoint) -> Variant {
        if self.fork_base {
            Variant::Base
        } else {
            point.variant
        }
    }

    /// The identity of a point's warm state (shared across variants in
    /// fork-base mode): the snapshot file name, so the in-memory pool
    /// and the on-disk cache name states identically.
    pub fn warm_tag(&self, point: &GridPoint) -> String {
        let variant = if self.fork_base {
            "forkbase".to_string()
        } else {
            point
                .variant
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_lowercase()
        };
        format!(
            "warm-{variant}-{}-k{}-t{}-s{:x}-c{}.mi6snap",
            point.workload.name(),
            point.opts.kinsts,
            point.opts.timer,
            point.opts.seed,
            self.warmup_cycles
        )
    }

    /// The snapshot file backing a point, when a checkpoint directory is
    /// configured (`None` in pool-only mode).
    pub fn snapshot_path(&self, point: &GridPoint) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(self.warm_tag(point)))
    }

    /// The pool key a point's warm state is filed under: the fingerprint
    /// of the machine it restores into (strict for exact restores,
    /// structural for cross-variant forks — computable on a freshly
    /// built machine, before any restore) plus the warm tag.
    fn pool_key(&self, point: &GridPoint, machine: &Machine) -> PoolKey {
        PoolKey {
            config: if self.fork_base {
                machine.structural_fingerprint()
            } else {
                machine.strict_fingerprint()
            },
            tag: self.warm_tag(point),
        }
    }

    /// Simulates one warm-up and publishes its snapshot to the pool (if
    /// given) and to disk (if a directory is configured; written
    /// atomically, so a preempted run never leaves a torn file behind).
    fn create_snapshot(&self, point: &GridPoint, pool: Option<&SnapshotPool>) {
        let variant = self.warm_variant(point);
        let mut machine = build_workload_machine(variant, point.workload, &point.opts, None, None);
        machine.run_cycles(self.warmup_cycles);
        assert!(
            !machine.all_halted(),
            "--warmup {} exceeds the total runtime of {} at {}k instructions; lower it",
            self.warmup_cycles,
            point.workload,
            point.opts.kinsts
        );
        if self.fork_base {
            // Opportunistic first: many workloads hit a natural quiescent
            // window (no timing perturbation at all); streaming workloads
            // never do and need the fetch-stall drain.
            if machine.run_until_mem_quiescent(20_000).is_err() {
                machine
                    .drain_to_quiescence(QUIESCE_CAP)
                    .unwrap_or_else(|e| panic!("draining {} warm-up: {e}", point.workload));
            }
            assert!(
                !machine.all_halted(),
                "--warmup {} left no work after the warm-up of {}; lower it",
                self.warmup_cycles,
                point.workload
            );
        }
        let bytes = machine.snapshot();
        if let Some(path) = self.snapshot_path(point) {
            // Unique per process: the checkpoint dir is a shared cache,
            // and two racing invocations writing the same temp name could
            // publish a torn file through the other's rename.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, &bytes)
                .and_then(|()| std::fs::rename(&tmp, &path))
                .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        }
        if let Some(pool) = pool {
            pool.insert(self.pool_key(point, &machine), bytes);
        }
    }
}

/// Per-grid metrics sampling: every point's run gets its own JSONL
/// artifact in `dir`, named after the point's canonical key, and the
/// artifact path is attributed in the point's journal line.
#[derive(Clone, Debug)]
pub struct GridMetrics {
    /// Sampling interval in cycles.
    pub every: u64,
    /// Directory the per-point `<key>.metrics.jsonl` files land in.
    pub dir: PathBuf,
}

impl GridMetrics {
    /// The metrics artifact backing one point (`/` in the key becomes
    /// `-` so the whole key stays one path component).
    pub fn artifact_path(&self, point: &GridPoint) -> PathBuf {
        self.dir
            .join(format!("{}.metrics.jsonl", point.key().replace('/', "-")))
    }
}

/// Default measurement slice, in simulated cycles: long enough that
/// slicing overhead vanishes (a slice boundary is one function return
/// plus one queue push), short enough that `--mux` oversubscription
/// actually interleaves points and a deadline lands promptly between
/// slices.
pub const SLICE_CYCLES: u64 = 4_000_000;

/// How [`run_grid_scheduled`] runs a point set.
#[derive(Clone, Debug)]
pub struct GridSchedule<'w> {
    /// Worker thread count.
    pub threads: usize,
    /// Warm-ups claimed per queue visit in the warm-fork phase (0 =
    /// auto; see [`mi6_grid::Scheduler`]). The measurement phase admits
    /// machines one at a time — a slice is long enough that claim
    /// batching has nothing left to amortize.
    pub batch: usize,
    /// Optional warm-fork phase.
    pub warm: Option<&'w WarmFork>,
    /// Stop admitting new points and cancel in-flight machines once this
    /// instant passes; unfinished points stay un-journaled (their
    /// progress is reported as [`PartialPoint`]s) so a resumed shard
    /// recomputes exactly them.
    pub deadline: Option<Instant>,
    /// Optional per-point metrics sampling (`--metrics-every`).
    pub metrics: Option<GridMetrics>,
    /// In-flight machines per worker (the `--mux` oversubscription
    /// factor; 0 or 1 = one machine per worker, the classic schedule).
    pub mux: usize,
    /// Measurement slice length in simulated cycles (0 = auto,
    /// [`SLICE_CYCLES`]). Slicing is invisible in the results; this only
    /// tunes scheduling granularity.
    pub slice: u64,
    /// In-memory warm-snapshot pool: warm states are published here by
    /// the warm phase and restores are served from it without file I/O.
    pub pool: Option<Arc<SnapshotPool>>,
    /// Content-addressed result cache: points whose key is already
    /// cached under this grid's warm tag are replayed without
    /// simulation, and every computed result is inserted.
    pub cache: Option<Arc<ResultCache>>,
    /// Force warm restores to read snapshots from disk even when the
    /// pool holds them (the bench's pool-vs-disk comparison switch).
    pub warm_from_disk: bool,
}

impl<'w> GridSchedule<'w> {
    /// A schedule with `threads` workers and nothing else.
    pub fn new(threads: usize) -> GridSchedule<'w> {
        GridSchedule {
            threads,
            batch: 0,
            warm: None,
            deadline: None,
            metrics: None,
            mux: 1,
            slice: 0,
            pool: None,
            cache: None,
            warm_from_disk: false,
        }
    }
}

/// What a scheduled grid run produced.
#[derive(Debug)]
pub struct GridOutcome {
    /// Per-point results in `points` order; `None` = cancelled/unstarted.
    pub results: Vec<Option<PointResult>>,
    /// Points that finished (simulated or replayed from the cache).
    pub completed: usize,
    /// Points that did not (deadline).
    pub cancelled: usize,
    /// Whether the deadline fired.
    pub deadline_hit: bool,
    /// Partial progress of interrupted points (machines that had started
    /// when the deadline/cancel landed), for journaling and reporting.
    pub partials: Vec<PartialPoint>,
}

/// Runs every grid point across `threads` worker threads.
///
/// `on_result` is invoked on the caller's thread as each point finishes
/// (in completion order — use it for streaming output, not rendering).
/// The returned vector is in `points` order.
pub fn run_grid(
    points: &[GridPoint],
    threads: usize,
    on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    run_grid_with(points, threads, None, on_result)
}

/// [`run_grid`] with an optional warm-fork phase: missing warm snapshots
/// are generated first (in parallel, one per unique warm-up), then every
/// grid point starts from its warmed state.
pub fn run_grid_with(
    points: &[GridPoint],
    threads: usize,
    warm: Option<&WarmFork>,
    on_result: impl FnMut(&PointResult),
) -> Vec<PointResult> {
    let mut schedule = GridSchedule::new(threads);
    schedule.warm = warm;
    run_grid_scheduled(points, &schedule, on_result)
        .results
        .into_iter()
        .map(|r| r.expect("every grid point completed (no deadline set)"))
        .collect()
}

/// One in-flight grid point driven in slices by the machine driver.
///
/// The machine is built lazily on the first slice (so a 10,000-point
/// grid holds at most `workers × mux` machines), armed once with
/// `begin_run`, then advanced slice by slice. `step_slice`'s contract
/// makes the slice sequence invisible, so results are byte-identical to
/// the old run-to-completion path.
struct PointTask<'a> {
    point: GridPoint,
    schedule: &'a GridSchedule<'a>,
    warm_tag: &'a str,
    cancel: Arc<AtomicBool>,
    /// Slice budget in simulated cycles.
    slice: u64,
    /// Interrupted-progress sink shared with the grid run.
    partials: &'a Mutex<Vec<PartialPoint>>,
    /// The machine and the cycle measurement started at (post-restore),
    /// built on the first slice.
    machine: Option<(Machine, u64)>,
    /// Metrics attachment (resolved per point; the path is attributed in
    /// the result).
    metrics: Option<MetricsSpec>,
    /// Minimum budget for the next slice: a parked idle-skip jump must
    /// fit entirely in the slice that resumes it, or the task would
    /// re-park forever.
    boost: u64,
    /// Worker that ran the most recent slice (partial attribution when
    /// the task is abandoned in a queue).
    last_worker: usize,
    /// Active host time accumulated across slices.
    wall: Duration,
}

impl PointTask<'_> {
    /// Builds the point's machine (cold, or restored from the warm pool
    /// or disk cache) and arms the run.
    fn build(&self) -> (Machine, u64) {
        let p = &self.point;
        let cancel = Some(Arc::clone(&self.cancel));
        let mut built = match self.schedule.warm {
            None => (
                build_workload_machine(
                    p.variant,
                    p.workload,
                    &p.opts,
                    cancel,
                    self.metrics.as_ref(),
                ),
                0,
            ),
            Some(warm) => {
                let mut machine =
                    build_restore_target(p.variant, &p.opts, cancel, self.metrics.as_ref());
                let blob = self.warm_blob(warm, &machine);
                let restored = if warm.fork_base {
                    machine.restore_forked(&blob)
                } else {
                    machine.restore(&blob)
                };
                restored.unwrap_or_else(|e| {
                    panic!("restoring {} warm state on {}: {e}", p.workload, p.variant)
                });
                let start = machine.now();
                (machine, start)
            }
        };
        built.0.begin_run(p.opts.cycle_cap());
        built
    }

    /// Fetches the point's warm snapshot: from the pool when allowed and
    /// present, else from disk (publishing the bytes back into the pool
    /// so sibling points skip the read).
    fn warm_blob(&self, warm: &WarmFork, machine: &Machine) -> Arc<Vec<u8>> {
        let pool = self
            .schedule
            .pool
            .as_deref()
            .filter(|_| !self.schedule.warm_from_disk);
        let key = pool.map(|_| warm.pool_key(&self.point, machine));
        if let (Some(pool), Some(key)) = (pool, &key) {
            if let Some(blob) = pool.get(key) {
                return blob;
            }
        }
        let path = warm.snapshot_path(&self.point).unwrap_or_else(|| {
            panic!(
                "warm snapshot for {} is in neither the pool nor a checkpoint dir",
                self.point.key()
            )
        });
        let bytes =
            std::fs::read(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        match (pool, key) {
            (Some(pool), Some(k)) => pool.insert(k.clone(), bytes),
            _ => Arc::new(bytes),
        }
    }

    /// Records the point's progress at an interruption.
    fn record_partial(&self, worker: usize) {
        let Some((machine, _)) = &self.machine else {
            return;
        };
        self.partials.lock().unwrap().push(PartialPoint {
            point: self.point,
            cycles: machine.now(),
            instructions: machine.stats().core[0].committed_instructions,
            wall_ms: self.wall.as_millis() as u64,
            worker,
            warm: self.warm_tag.to_string(),
        });
    }
}

impl SliceTask for PointTask<'_> {
    type Done = PointResult;

    fn step(&mut self, ctx: &WorkerCtx) -> Step<PointResult> {
        let t0 = Instant::now();
        self.last_worker = ctx.worker;
        if self.machine.is_none() {
            self.machine = Some(self.build());
        }
        let (machine, start_cycle) = self.machine.as_mut().expect("just built");
        let budget = self.slice.max(self.boost);
        self.boost = 0;
        let outcome = machine.step_slice(budget);
        self.wall += t0.elapsed();
        match outcome {
            SliceOutcome::Completed(stats) => {
                let record =
                    RunRecord::from_run(self.point.workload.name(), machine, &stats, *start_cycle);
                Step::Done(PointResult {
                    point: self.point,
                    record,
                    wall_ms: self.wall.as_millis() as u64,
                    worker: ctx.worker,
                    warm: self.warm_tag.to_string(),
                    metrics: self.metrics.as_ref().map(|m| m.path.display().to_string()),
                })
            }
            SliceOutcome::BudgetExhausted { .. } => Step::Yield,
            SliceOutcome::Blocked { until_cycle } => {
                self.boost = until_cycle.saturating_sub(machine.now());
                Step::Blocked { wake: until_cycle }
            }
            SliceOutcome::Cancelled { .. } => {
                self.record_partial(ctx.worker);
                Step::Abort
            }
            SliceOutcome::TimedOut { at_cycle } => panic!(
                "{} on {} still running after {at_cycle} cycles",
                self.point.workload, self.point.variant
            ),
        }
    }

    fn abandon(&mut self) {
        self.record_partial(self.last_worker);
    }
}

/// The full scheduled grid run: cache admission, then the warm-fork
/// phase for the points that still need simulating (if configured), then
/// the measurement phase on the slice-multiplexing machine driver, with
/// per-point cancellation against the deadline.
pub fn run_grid_scheduled(
    points: &[GridPoint],
    schedule: &GridSchedule<'_>,
    mut on_result: impl FnMut(&PointResult),
) -> GridOutcome {
    let n = points.len();
    if n == 0 {
        return GridOutcome {
            results: Vec::new(),
            completed: 0,
            cancelled: 0,
            deadline_hit: false,
            partials: Vec::new(),
        };
    }
    let warm_tag = match schedule.warm {
        None => "cold".to_string(),
        Some(w) if w.fork_base => format!("forkbase:{}", w.warmup_cycles),
        Some(w) => format!("exact:{}", w.warmup_cycles),
    };
    // Result-cache admission: a point whose key is already cached under
    // this grid's warm-up methodology is replayed, never simulated. The
    // warm-tag check keeps fork-base and cold/exact results from
    // cross-contaminating a grid (which would poison the merge's
    // warm-consistency check).
    let mut results: Vec<Option<PointResult>> = vec![None; n];
    let mut todo: Vec<usize> = Vec::with_capacity(n);
    match &schedule.cache {
        None => todo.extend(0..n),
        Some(cache) => {
            for (i, p) in points.iter().enumerate() {
                let hit = cache
                    .get(&p.key())
                    .and_then(|line| PointResult::from_json(&line).ok())
                    .filter(|r| r.warm == warm_tag);
                match hit {
                    Some(r) => {
                        on_result(&r);
                        results[i] = Some(r);
                    }
                    None => todo.push(i),
                }
            }
        }
    }
    let cached = n - todo.len();
    if let Some(warm) = schedule.warm {
        if !todo.is_empty() {
            let need: Vec<GridPoint> = todo.iter().map(|&i| points[i]).collect();
            run_warm_phase(&need, schedule, warm);
        }
    }
    if let Some(metrics) = &schedule.metrics {
        std::fs::create_dir_all(&metrics.dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", metrics.dir.display()));
    }
    let cancel = Arc::new(AtomicBool::new(false));
    let slice = if schedule.slice == 0 {
        SLICE_CYCLES
    } else {
        schedule.slice
    };
    let partials = Mutex::new(Vec::new());
    let mut driver = MachineDriver::new(schedule.threads)
        .with_mux(schedule.mux.max(1))
        .with_deadline(schedule.deadline);
    driver.cancel = Some(Arc::clone(&cancel));
    let outcome = driver.run(
        todo.len(),
        |j| PointTask {
            point: points[todo[j]],
            schedule,
            warm_tag: &warm_tag,
            cancel: Arc::clone(&cancel),
            slice,
            partials: &partials,
            machine: None,
            metrics: schedule.metrics.as_ref().map(|g| MetricsSpec {
                path: g.artifact_path(&points[todo[j]]),
                every: g.every,
            }),
            boost: 0,
            last_worker: 0,
            wall: Duration::ZERO,
        },
        |_j, res| {
            if let Some(cache) = &schedule.cache {
                cache.insert(res.point.key(), res.to_json());
            }
            on_result(res);
        },
    );
    for (j, r) in outcome.results.into_iter().enumerate() {
        results[todo[j]] = r;
    }
    GridOutcome {
        results,
        completed: cached + outcome.completed,
        cancelled: outcome.cancelled,
        deadline_hit: outcome.deadline_hit,
        partials: partials.into_inner().unwrap(),
    }
}

/// The warm-fork phase: one simulation per unique warm tag not already
/// served by the pool or the disk cache, on the run-to-completion
/// scheduler (warm-ups never idle, so slicing buys nothing there).
fn run_warm_phase(points: &[GridPoint], schedule: &GridSchedule<'_>, warm: &WarmFork) {
    let pool = schedule.pool.as_deref();
    assert!(
        warm.dir.is_some() || pool.is_some(),
        "a warm-fork phase needs a checkpoint dir or a snapshot pool to keep warm states in"
    );
    assert!(
        !(schedule.warm_from_disk && warm.dir.is_none()),
        "warm_from_disk needs a checkpoint dir to read snapshots from"
    );
    if let Some(dir) = &warm.dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
    }
    // One warm-up per unique warm state; skip states the measurement
    // phase can already obtain (a pool entry, or a snapshot file from an
    // earlier invocation / another shard host).
    let mut pending: BTreeMap<String, GridPoint> = BTreeMap::new();
    for p in points {
        let tag = warm.warm_tag(p);
        let on_disk = warm.snapshot_path(p).is_some_and(|path| path.exists());
        let in_pool = !schedule.warm_from_disk && pool.is_some_and(|pl| pl.contains_tag(&tag));
        if !on_disk && !in_pool {
            pending.entry(tag).or_insert(*p);
        }
    }
    let todo: Vec<(String, GridPoint)> = pending.into_iter().collect();
    if todo.is_empty() {
        return;
    }
    eprintln!(
        "  warm-fork: simulating {} warm-up prefix(es) of {} cycles",
        todo.len(),
        warm.warmup_cycles
    );
    // Deadline granularity here is one warm-up: a warm-up that has
    // started always completes and publishes its snapshot (later
    // invocations reuse it), but no new ones are claimed past the
    // deadline.
    Scheduler::new(schedule.threads)
        .with_batch(schedule.batch)
        .with_deadline(schedule.deadline)
        .run(
            &todo,
            |_ctx, _i, (_tag, point)| {
                warm.create_snapshot(point, pool);
                Some(())
            },
            |_, _| {},
        );
}

/// The full variant×workload grid for one variant (all eleven paper
/// workloads).
pub fn variant_points(variant: Variant, opts: HarnessOpts) -> Vec<GridPoint> {
    variant_points_for(variant, opts, &Workload::ALL)
}

/// One variant's grid over an explicit workload set (how `--workload`
/// restricts a figure, and how the adversarial `enclave-ws` runs in a
/// plain grid).
pub fn variant_points_for(
    variant: Variant,
    opts: HarnessOpts,
    workloads: &[Workload],
) -> Vec<GridPoint> {
    workloads
        .iter()
        .map(|&workload| GridPoint {
            variant,
            workload,
            opts,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> HarnessOpts {
        HarnessOpts::default().with_kinsts(10).with_timer(0)
    }

    #[test]
    fn grid_results_arrive_in_point_order() {
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Arb,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let mut streamed = 0usize;
        let results = run_grid(&points, 3, |_| streamed += 1);
        assert_eq!(streamed, 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].record.name, "hmmer");
        assert_eq!(results[1].record.name, "sjeng");
        assert_eq!(results[2].point.variant, Variant::Arb);
        for r in &results {
            assert!(r.record.cycles > 0);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let points = variant_points(Variant::Base, tiny_opts())[..3].to_vec();
        let serial = run_grid(&points, 1, |_| {});
        let parallel = run_grid(&points, 3, |_| {});
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.record.cycles, b.record.cycles, "{}", a.record.name);
            assert_eq!(a.record.instructions, b.record.instructions);
        }
    }

    #[test]
    fn multiplexed_grid_matches_serial_bit_for_bit() {
        // Tiny slices force every point through many Yield/Blocked
        // cycles and genuine interleaving (16 machines over 2 workers);
        // the records must still be byte-identical to a serial
        // one-machine-at-a-time run.
        let mut points = variant_points(Variant::Base, tiny_opts())[..3].to_vec();
        points.extend(variant_points(Variant::Arb, tiny_opts())[..3].to_vec());
        let serial = run_grid(&points, 1, |_| {});
        let mut schedule = GridSchedule::new(2);
        schedule.mux = 8;
        schedule.slice = 20_000;
        let out = run_grid_scheduled(&points, &schedule, |_| {});
        assert_eq!(out.completed, points.len());
        assert!(out.partials.is_empty());
        for (s, m) in serial.iter().zip(&out.results) {
            let m = m.as_ref().expect("completed");
            assert_eq!(s.record.cycles, m.record.cycles, "{}", s.record.name);
            assert_eq!(s.record.instructions, m.record.instructions);
            assert_eq!(s.record.cycles_ticked, m.record.cycles_ticked);
            assert_eq!(s.record.cycles_skipped, m.record.cycles_skipped);
            assert_eq!(s.record.branch_mpki, m.record.branch_mpki);
            assert_eq!(s.record.llc_mpki, m.record.llc_mpki);
            assert_eq!(s.record.flush_stall_cycles, m.record.flush_stall_cycles);
            assert_eq!(s.record.traps, m.record.traps);
            assert_eq!(s.record.cpi.slots, m.record.cpi.slots);
        }
    }

    fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mi6-warm-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn exact_warm_fork_matches_cold_runs_bit_for_bit() {
        let dir = scratch_dir("exact");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let cold = run_grid(&points, 2, |_| {});
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: Some(dir.clone()),
            fork_base: false,
        };
        // First pass simulates the warm-ups; the second reuses the cache.
        for pass in 0..2 {
            let warmed = run_grid_with(&points, 2, Some(&warm), |_| {});
            for (c, f) in cold.iter().zip(&warmed) {
                assert_eq!(c.record.cycles, f.record.cycles, "pass {pass}");
                assert_eq!(c.record.instructions, f.record.instructions);
                assert_eq!(c.record.traps, f.record.traps);
            }
        }
        // One snapshot per (variant, workload).
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pool_only_warm_matches_cold_runs_bit_for_bit() {
        // No checkpoint dir at all: warm states live only in the
        // in-memory pool, and restores are served from it.
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
        ];
        let cold = run_grid(&points, 2, |_| {});
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: None,
            fork_base: false,
        };
        let pool = Arc::new(SnapshotPool::new());
        let mut schedule = GridSchedule::new(2);
        schedule.warm = Some(&warm);
        schedule.pool = Some(Arc::clone(&pool));
        let out = run_grid_scheduled(&points, &schedule, |_| {});
        assert_eq!(out.completed, 2);
        // One pooled warm state per (variant, workload), each served at
        // least one restore.
        assert_eq!(pool.len(), 2);
        let (hits, _) = pool.stats();
        assert!(hits >= 2, "restores were not served from the pool");
        for (c, w) in cold.iter().zip(&out.results) {
            let w = w.as_ref().expect("completed");
            assert_eq!(c.record.cycles, w.record.cycles);
            assert_eq!(c.record.instructions, w.record.instructions);
            assert_eq!(c.record.traps, w.record.traps);
            assert_eq!(w.warm, "exact:4000");
        }
        // A second grid over the same schedule re-serves from the pool
        // without re-simulating any warm-up.
        let before = pool.len();
        let again = run_grid_scheduled(&points, &schedule, |_| {});
        assert_eq!(again.completed, 2);
        assert_eq!(pool.len(), before);
    }

    #[test]
    fn fork_base_shares_one_warmup_across_variants() {
        let dir = scratch_dir("forkbase");
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
        ];
        let warm = WarmFork {
            warmup_cycles: 4_000,
            dir: Some(dir.clone()),
            fork_base: true,
        };
        let a = run_grid_with(&points, 2, Some(&warm), |_| {});
        // Both variants forked from one shared BASE-warmed snapshot.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // The BASE point is an exact continuation: identical to a cold run.
        let cold = run_grid(&points[..1], 1, |_| {});
        assert_eq!(a[0].record.cycles, cold[0].record.cycles);
        assert_eq!(a[0].record.instructions, cold[0].record.instructions);
        // Forked runs are deterministic and complete.
        let b = run_grid_with(&points, 2, Some(&warm), |_| {});
        assert_eq!(a[1].record.cycles, b[1].record.cycles);
        assert!(a[1].record.instructions > 5_000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn result_cache_short_circuits_repeated_points() {
        let points = [
            GridPoint {
                variant: Variant::Base,
                workload: Workload::Hmmer,
                opts: tiny_opts(),
            },
            GridPoint {
                variant: Variant::Fpma,
                workload: Workload::Sjeng,
                opts: tiny_opts(),
            },
        ];
        let cache = Arc::new(ResultCache::new());
        let mut schedule = GridSchedule::new(2);
        schedule.cache = Some(Arc::clone(&cache));
        let first = run_grid_scheduled(&points, &schedule, |_| {});
        assert_eq!(first.completed, 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
        // Second grid over the same cache: every point replays, nothing
        // simulates, and the journal lines are byte-identical.
        let mut streamed = 0usize;
        let second = run_grid_scheduled(&points, &schedule, |_| streamed += 1);
        assert_eq!(streamed, 2);
        assert_eq!(second.completed, 2);
        assert_eq!(cache.stats(), (2, 2));
        for (a, b) in first.results.iter().zip(&second.results) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.to_json(), b.to_json());
        }
        // A warm-tag mismatch is a miss, not a poisoned hit: the same
        // points under a fork-base schedule ignore the cold entries.
        let warm = WarmFork {
            warmup_cycles: 2_000,
            dir: None,
            fork_base: true,
        };
        let mut fb = GridSchedule::new(2);
        fb.warm = Some(&warm);
        fb.pool = Some(Arc::new(SnapshotPool::new()));
        fb.cache = Some(Arc::clone(&cache));
        let forked = run_grid_scheduled(&points, &fb, |_| {});
        assert_eq!(forked.completed, 2);
        for r in forked.results.iter().flatten() {
            assert_eq!(r.warm, "forkbase:2000");
        }
    }

    #[test]
    fn json_shape() {
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: tiny_opts(),
        }];
        let results = run_grid(&points, 1, |_| {});
        let json = results[0].to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"variant\":\"BASE\""));
        assert!(json.contains("\"workload\":\"hmmer\""));
        assert!(json.contains("\"cycles\":"));
        assert!(json.contains("\"wall_ms\":"));
        assert!(json.contains("\"worker\":"));
        assert!(json.contains("\"warm\":\"cold\""));
        // Seed sweeps are distinguishable in the JSONL stream.
        assert!(json.contains(&format!("\"seed\":{}", crate::DEFAULT_SEED)));
        // The CPI stack rides along: its own cycle counter, the width it
        // was accounted against, and one key per category.
        assert!(json.contains("\"cpi_cycles\":"));
        assert!(json.contains("\"cpi_commit_width\":2"));
        for cat in CpiCategory::ALL {
            assert!(
                json.contains(&format!("\"{}\":", cat.metric_name())),
                "missing {}",
                cat.metric_name()
            );
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let points = [GridPoint {
            variant: Variant::Fpma,
            workload: Workload::Sjeng,
            opts: tiny_opts().with_seed(0xDEAD_BEEF_1234_5678),
        }];
        let results = run_grid(&points, 1, |_| {});
        let parsed = PointResult::from_json(&results[0].to_json()).unwrap();
        assert_eq!(parsed.point.key(), results[0].point.key());
        assert_eq!(parsed.record.cycles, results[0].record.cycles);
        assert_eq!(parsed.record.instructions, results[0].record.instructions);
        // Floats round-trip bit-for-bit: merged figure tables must be
        // byte-identical to unsharded ones.
        assert_eq!(parsed.record.branch_mpki, results[0].record.branch_mpki);
        assert_eq!(parsed.record.llc_mpki, results[0].record.llc_mpki);
        assert_eq!(parsed.wall_ms, results[0].wall_ms);
        assert_eq!(parsed.worker, results[0].worker);
        assert_eq!(parsed.warm, "cold");
        // The journaled CPI-stack state (slots, pressure counters, its
        // own cycle counter) survives the round trip, invariant intact.
        // (In-flight attribution bookkeeping is deliberately not
        // journaled, so compare the journaled fields, not the struct.)
        assert_eq!(parsed.record.cpi.slots, results[0].record.cpi.slots);
        assert_eq!(parsed.record.cpi.cycles, results[0].record.cpi.cycles);
        assert_eq!(
            parsed.record.cpi.pressure(),
            results[0].record.cpi.pressure()
        );
        assert_eq!(parsed.record.commit_width, results[0].record.commit_width);
        assert_eq!(
            parsed.record.cpi.total_slots(),
            parsed.record.cpi.cycles * parsed.record.commit_width
        );
        // And a torn line is rejected, not misparsed.
        let json = results[0].to_json();
        assert!(PointResult::from_json(&json[..json.len() - 8]).is_err());
    }

    #[test]
    fn partial_lines_are_flagged_and_rejected() {
        let partial = PartialPoint {
            point: GridPoint {
                variant: Variant::Base,
                workload: Workload::Mcf,
                opts: tiny_opts(),
            },
            cycles: 123_456,
            instructions: 7_890,
            wall_ms: 42,
            worker: 1,
            warm: "cold".to_string(),
        };
        let line = partial.to_json();
        assert!(line.ends_with("\"partial\":true}"), "{line}");
        assert!(is_partial_line(&line));
        // A partial is never a mergeable result.
        let err = PointResult::from_json(&line).unwrap_err();
        assert!(err.contains("partial"), "{err}");
        // Completed lines and garbage are not misclassified.
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: tiny_opts(),
        }];
        let full = run_grid(&points, 1, |_| {}).remove(0).to_json();
        assert!(!is_partial_line(&full));
        assert!(!is_partial_line("not json at all"));
    }

    #[test]
    fn point_key_is_the_documented_contract() {
        let p = GridPoint {
            variant: Variant::Fpma,
            workload: Workload::Gcc,
            opts: HarnessOpts {
                kinsts: 2000,
                timer: 0,
                seed: 0xC0FFEE,
            },
        };
        assert_eq!(p.key(), "F+P+M+A/gcc/2000/0/c0ffee");
    }

    #[test]
    fn expired_deadline_cancels_everything_cleanly() {
        let points = variant_points(Variant::Base, tiny_opts());
        let mut schedule = GridSchedule::new(2);
        schedule.deadline = Some(Instant::now());
        let mut streamed = 0usize;
        let out = run_grid_scheduled(&points, &schedule, |_| streamed += 1);
        assert!(out.deadline_hit);
        assert_eq!(out.completed, 0);
        assert_eq!(out.cancelled, points.len());
        assert_eq!(streamed, 0);
        assert!(out.results.iter().all(Option::is_none));
        // Nothing was admitted, so there is no partial progress to report.
        assert!(out.partials.is_empty());
    }

    #[test]
    fn deadline_mid_grid_records_partial_progress() {
        // One long point, interrupted mid-run: far too much work to
        // finish inside the deadline, so the cancel lands while the
        // machine is live and its progress must surface as a partial.
        let points = [GridPoint {
            variant: Variant::Base,
            workload: Workload::Mcf,
            opts: HarnessOpts::default().with_kinsts(20_000).with_timer(0),
        }];
        let mut schedule = GridSchedule::new(1);
        schedule.deadline = Some(Instant::now() + Duration::from_millis(50));
        let out = run_grid_scheduled(&points, &schedule, |_| {});
        assert!(out.deadline_hit);
        assert_eq!(out.completed, 0);
        assert_eq!(out.cancelled, 1);
        assert_eq!(out.partials.len(), 1);
        let p = &out.partials[0];
        assert_eq!(p.point.key(), points[0].key());
        assert!(p.cycles > 0, "the machine had started");
        assert_eq!(p.warm, "cold");
        assert!(is_partial_line(&p.to_json()));
    }

    #[test]
    fn worker_ids_are_recorded() {
        let points = variant_points(Variant::Base, tiny_opts());
        let results = run_grid(&points, 3, |_| {});
        assert!(results.iter().all(|r| r.worker < 3));
    }
}
