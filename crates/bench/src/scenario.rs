//! Multi-core evaluation scenarios.
//!
//! The paper's enclave threat model colocates a victim enclave with an
//! attacker-controlled OS core that thrashes the shared LLC and DRAM
//! queues (Sections 4 and 5). `enclave-attacker` reproduces that shape on
//! a two-core machine through `SimBuilder` workload placement: the victim
//! (a pointer chase over an arena that *fits* the shared LLC, so its
//! runtime is exactly what LLC eviction destroys) runs on core 0 while
//! core 1 either exits immediately (the solo baseline) or streams
//! libquantum-like traffic through the shared LLC for the victim's whole
//! run.
//!
//! The reproduction target is the *contrast*: on BASE the attacker's
//! stream evicts the victim's LLC-resident working set and inflates its
//! runtime, while the full MI6 machine (set partitioning by DRAM region,
//! per-core MSHRs, round-robin pipeline arbitration) keeps the attacker
//! out of the victim's sets and bounds the interference.

use crate::{mean, HarnessOpts};
use mi6_core::{CpiCategory, CpiStack};
use mi6_isa::{Assembler, Inst, Reg};
use mi6_soc::{kernel, loader, Program, SimBuilder, Variant};
use mi6_workloads::{Workload, WorkloadParams};
use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;

/// The enclave victim workload (promoted to `mi6-workloads` so plain
/// figure grids and shards can run it like any other workload; see
/// [`Workload::EnclaveWs`] for why the 256 KiB chase arena is the
/// maximally eviction-sensitive shape).
pub const VICTIM: Workload = Workload::EnclaveWs;
/// Display name of the enclave victim.
pub const VICTIM_NAME: &str = "enclave-ws";
/// The attacker workload (streaming LLC thrasher).
pub const ATTACKER: Workload = Workload::Libquantum;

/// The enclave victim's program ([`Workload::EnclaveWs`] at this scale).
pub fn victim_program(params: &WorkloadParams) -> Program {
    VICTIM.build(params)
}

/// One (variant, colocation) measurement of the victim core.
#[derive(Clone, Debug)]
pub struct ScenarioPoint {
    /// Machine variant.
    pub variant: Variant,
    /// Whether the attacker core was streaming.
    pub contended: bool,
    /// Cycles until the *victim* core halted (its core-local counter).
    pub victim_cycles: u64,
    /// Victim instructions committed.
    pub victim_instructions: u64,
    /// The victim core's CPI stack (slot attribution plus the
    /// structural-pressure event counters).
    pub victim_cpi: CpiStack,
    /// Commit width the victim's stack was accounted against.
    pub victim_commit_width: u64,
    /// Machine cycles actually ticked vs fast-forwarded through inert
    /// spans (whole-machine accounting, both cores).
    pub cycles_ticked: u64,
    /// See [`ScenarioPoint::cycles_ticked`].
    pub cycles_skipped: u64,
    /// Per-point metrics JSONL artifact, when sampling was on.
    pub metrics_path: Option<PathBuf>,
}

impl ScenarioPoint {
    /// One JSON object for the `--json` stream (append-only shape, like
    /// the grid journal's).
    pub fn to_json(&self) -> String {
        let metrics = match &self.metrics_path {
            Some(p) => format!(",\"metrics\":\"{}\"", p.display()),
            None => String::new(),
        };
        // `stall_*` keep their historical key names (now sourced from the
        // CPI stack's pressure counters); the stack itself is appended at
        // the end, per the append-only journal contract.
        let mut cpi = format!(
            "\"cpi_cycles\":{},\"cpi_commit_width\":{}",
            self.victim_cpi.cycles, self.victim_commit_width
        );
        for cat in CpiCategory::ALL {
            use std::fmt::Write as _;
            let _ = write!(
                cpi,
                ",\"{}\":{}",
                cat.metric_name(),
                self.victim_cpi.get(cat)
            );
        }
        format!(
            concat!(
                "{{\"scenario\":\"enclave-attacker\",\"variant\":\"{}\",",
                "\"contended\":{},\"victim_cycles\":{},\"victim_instructions\":{},",
                "\"stall_rob_full\":{},\"stall_iq_full\":{},\"stall_lq_full\":{},",
                "\"stall_sq_full\":{},\"stall_sb_full\":{},",
                "\"cycles_ticked\":{},\"cycles_skipped\":{},{}{}}}"
            ),
            self.variant.name(),
            self.contended,
            self.victim_cycles,
            self.victim_instructions,
            self.victim_cpi.rename_rob_full,
            self.victim_cpi.rename_iq_full,
            self.victim_cpi.rename_lq_full,
            self.victim_cpi.rename_sq_full,
            self.victim_cpi.commit_sb_full,
            self.cycles_ticked,
            self.cycles_skipped,
            cpi,
            metrics,
        )
    }

    /// This point's CPI-stack artifact row (the `--stacks` JSONL; see
    /// [`mi6_obs::stacks_row`]). Solo/contended is encoded in the name so
    /// the four scenario points stay distinguishable in one file.
    pub fn stacks_row(&self) -> String {
        let mode = if self.contended { "contended" } else { "solo" };
        mi6_obs::stacks_row(
            &format!("{VICTIM_NAME}-{mode}"),
            self.variant.name(),
            0,
            self.victim_cpi.cycles,
            self.victim_commit_width,
            &self.victim_cpi.slots,
        )
    }
}

/// Metrics sampling for a scenario run: every point writes its own
/// `enclave-attacker-<variant>-<solo|contended>.metrics.jsonl` in `dir`.
#[derive(Clone, Debug)]
pub struct ScenarioObs {
    /// Directory the per-point artifacts land in.
    pub dir: PathBuf,
    /// Sampling interval in cycles.
    pub every: u64,
}

impl ScenarioObs {
    fn artifact_path(&self, variant: Variant, contended: bool) -> PathBuf {
        let v: String = variant
            .name()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        let mode = if contended { "contended" } else { "solo" };
        self.dir
            .join(format!("enclave-attacker-{v}-{mode}.metrics.jsonl"))
    }
}

/// A program that exits immediately — parks the second core so a solo run
/// uses the identical two-core machine as the contended one.
fn park_program() -> Program {
    let mut asm = Assembler::new(loader::CODE_VA);
    asm.li(Reg::A0, 0);
    asm.li(Reg::A7, kernel::sys::EXIT);
    asm.push(Inst::Ecall);
    Program {
        name: "park".into(),
        code: asm.assemble().expect("park program assembles"),
        data_size: 4096,
        data_init: vec![],
        stack_size: 4096,
    }
}

fn run_point(
    variant: Variant,
    contended: bool,
    opts: &HarnessOpts,
    obs: Option<&ScenarioObs>,
) -> ScenarioPoint {
    let victim_params = WorkloadParams::evaluation()
        .with_target_kinsts(opts.kinsts)
        .with_seed(opts.seed);
    // The attacker outlives the victim so interference covers the whole
    // measured run.
    let attacker_params = WorkloadParams::evaluation()
        .with_target_kinsts(opts.kinsts.saturating_mul(3))
        .with_seed(opts.seed);
    let attacker = if contended {
        ATTACKER.build(&attacker_params)
    } else {
        park_program()
    };
    let metrics_path = obs.map(|o| o.artifact_path(variant, contended));
    let mut builder = SimBuilder::new(variant)
        .cores(2)
        .timer_interval(opts.timer)
        .workload(0, victim_program(&victim_params))
        .workload(1, attacker);
    if let Some(path) = &metrics_path {
        builder = builder.metrics(path.clone(), obs.expect("path implies obs").every);
    }
    let mut machine = builder
        .build()
        .unwrap_or_else(|e| panic!("building {variant} scenario: {e}"));
    let cap = opts.kinsts.saturating_mul(6_000_000).max(400_000_000);
    let stats = machine
        .run_to_completion(cap)
        .unwrap_or_else(|e| panic!("running {variant} scenario: {e}"));
    ScenarioPoint {
        variant,
        contended,
        // The per-core cycle counter stops when the core halts, so this is
        // the victim's own completion time even though the attacker keeps
        // running afterwards.
        victim_cycles: stats.core[0].cycles,
        victim_instructions: stats.core[0].committed_instructions,
        victim_cpi: machine.core(0).cpi.clone(),
        victim_commit_width: machine.core(0).config().commit_width as u64,
        cycles_ticked: machine.ticks(),
        cycles_skipped: machine.now().saturating_sub(machine.ticks()),
        metrics_path,
    }
}

/// Runs the enclave-plus-attacker grid — (BASE, MI6) × (solo, contended)
/// — across up to four worker threads and returns the points in a fixed
/// order: for each variant, solo then contended. With `obs`, every point
/// also writes a time-series metrics artifact (see [`ScenarioObs`]).
pub fn run_enclave_attacker(
    opts: &HarnessOpts,
    threads: usize,
    obs: Option<&ScenarioObs>,
) -> Vec<ScenarioPoint> {
    if let Some(o) = obs {
        std::fs::create_dir_all(&o.dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", o.dir.display()));
    }
    let grid: Vec<(Variant, bool)> = [Variant::Base, Variant::SecureMi6]
        .into_iter()
        .flat_map(|v| [(v, false), (v, true)])
        .collect();
    let workers = threads.clamp(1, grid.len());
    let (tx, rx) = mpsc::channel::<(usize, ScenarioPoint)>();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<ScenarioPoint>> = vec![None; grid.len()];
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let grid = &grid;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= grid.len() {
                    break;
                }
                let (variant, contended) = grid[i];
                if tx
                    .send((i, run_point(variant, contended, opts, obs)))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, p)) = rx.recv() {
            eprintln!(
                "  {} {}: victim {} cycles",
                p.variant,
                if p.contended { "contended" } else { "solo" },
                p.victim_cycles
            );
            results[i] = Some(p);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every scenario point completed"))
        .collect()
}

/// Renders the scenario table: per variant, the victim's solo and
/// contended runtimes and the attacker-induced slowdown.
pub fn render_enclave_attacker(points: &[ScenarioPoint]) {
    println!(
        "\n=== enclave + attacker (2 cores): victim {} vs streaming {} ===",
        VICTIM_NAME,
        ATTACKER.name()
    );
    println!(
        "{:<10} {:>16} {:>18} {:>10}",
        "variant", "solo cycles", "contended cycles", "slowdown"
    );
    let mut slowdowns = Vec::new();
    for pair in points.chunks(2) {
        let [solo, contended] = pair else {
            continue;
        };
        assert_eq!(solo.variant, contended.variant);
        assert!(!solo.contended && contended.contended);
        let slowdown = (contended.victim_cycles as f64 / solo.victim_cycles as f64 - 1.0) * 100.0;
        slowdowns.push(slowdown);
        println!(
            "{:<10} {:>16} {:>18} {:>9.1}%",
            solo.variant.name(),
            solo.victim_cycles,
            contended.victim_cycles,
            slowdown
        );
    }
    if slowdowns.len() == 2 {
        println!(
            "attacker-induced victim slowdown: BASE {:+.1}% vs MI6 {:+.1}% \
             (mean {:+.1}%; the paper's isolation claim is MI6 << BASE)",
            slowdowns[0],
            slowdowns[1],
            mean(slowdowns.iter().copied())
        );
    }
}

/// Renders the victim's CPI-stack decomposition across the four scenario
/// points: per category, the victim's CPI contribution
/// (`slots / (commit_width × instructions)`), so the columns of one point
/// sum to its CPI. This answers *where* the attacker-induced cycles go on
/// BASE (DRAM-served loads after LLC eviction, shared-MSHR pressure) and
/// which MI6 mechanism absorbs them (partitioned sets keep loads
/// LLC/L1-served; per-core quotas and round-robin arbitration show up as
/// the explicit `mshr_quota_deny` / `arb_deny` categories instead of
/// unbounded memory time).
pub fn render_enclave_cpi(points: &[ScenarioPoint]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let cpi_of = |p: &ScenarioPoint, cat: CpiCategory| {
        p.victim_cpi.get(cat) as f64 / (p.victim_commit_width * p.victim_instructions) as f64
    };
    writeln!(
        out,
        "\n--- victim CPI stack (cycles per instruction, by blocking reason) ---"
    )
    .unwrap();
    write!(out, "{:<18}", "category").unwrap();
    for p in points {
        let mode = if p.contended { "cont" } else { "solo" };
        write!(out, " {:>15}", format!("{} {}", p.variant.name(), mode)).unwrap();
    }
    writeln!(out).unwrap();
    for cat in CpiCategory::ALL {
        if points.iter().all(|p| p.victim_cpi.get(cat) == 0) {
            continue;
        }
        write!(out, "{:<18}", cat.name()).unwrap();
        for p in points {
            write!(out, " {:>15.4}", cpi_of(p, cat)).unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<18}", "total CPI").unwrap();
    for p in points {
        let total: f64 = CpiCategory::ALL.iter().map(|&c| cpi_of(p, c)).sum();
        write!(out, " {:>15.4}", total).unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// One parsed metrics row: `(cycle, core, metric, value)`; `core` is
/// `None` for machine-level rows.
fn parse_metrics_row(line: &str) -> Option<(u64, Option<u64>, String, u64)> {
    let body = line.strip_prefix('{')?.strip_suffix('}')?;
    let (mut cycle, mut core, mut metric, mut value) = (None, None, None, None);
    for field in body.split(',') {
        let (k, v) = field.split_once(':')?;
        match k {
            "\"cycle\"" => cycle = v.parse().ok(),
            "\"core\"" => core = v.parse().ok(),
            "\"metric\"" => metric = Some(v.trim_matches('"').to_string()),
            "\"value\"" => value = v.parse().ok(),
            _ => return None,
        }
    }
    Some((cycle?, core, metric?, value?))
}

/// Renders the attacker-vs-victim occupancy timeline of each *contended*
/// point from its metrics artifact: per time window, the mean MSHR
/// occupancy and summed arbiter grants of the victim (core 0) and the
/// attacker (core 1). This is the per-mechanism contention picture the
/// scalar slowdown table averages away: on BASE the attacker holds the
/// shared MSHRs and wins most grants; under MI6's per-core quotas and
/// round-robin arbitration the two cores' curves stay bounded.
pub fn render_occupancy_timeline(points: &[ScenarioPoint]) -> String {
    use std::fmt::Write;
    const BUCKETS: usize = 8;
    let mut out = String::new();
    for p in points.iter().filter(|p| p.contended) {
        let Some(path) = &p.metrics_path else {
            continue;
        };
        let Ok(doc) = std::fs::read_to_string(path) else {
            writeln!(out, "(cannot read {})", path.display()).unwrap();
            continue;
        };
        let rows: Vec<_> = doc.lines().filter_map(parse_metrics_row).collect();
        let Some(last) = rows.iter().map(|r| r.0).max().filter(|&l| l > 0) else {
            continue;
        };
        let width = last.div_ceil(BUCKETS as u64).max(1);
        // Per window and core: (occupancy sum, sample count) and grants.
        let mut mshr = [[(0u64, 0u64); 2]; BUCKETS];
        let mut grants = [[0u64; 2]; BUCKETS];
        for (cycle, core, metric, value) in &rows {
            let Some(c) = core.map(|c| c as usize).filter(|&c| c < 2) else {
                continue;
            };
            let b = (((cycle - 1) / width) as usize).min(BUCKETS - 1);
            match metric.as_str() {
                "mshr_occupancy" => {
                    mshr[b][c].0 += value;
                    mshr[b][c].1 += 1;
                }
                "arb_grants" => grants[b][c] += value,
                _ => {}
            }
        }
        writeln!(
            out,
            "\n--- {} contended: MSHR occupancy and LLC arbiter grants over time ---",
            p.variant.name()
        )
        .unwrap();
        writeln!(
            out,
            "{:<19} {:>12} {:>14} {:>14} {:>16}",
            "cycles", "victim MSHRs", "attacker MSHRs", "victim grants", "attacker grants"
        )
        .unwrap();
        for b in 0..BUCKETS {
            let occ = |c: usize| {
                let (sum, n) = mshr[b][c];
                if n == 0 {
                    0.0
                } else {
                    sum as f64 / n as f64
                }
            };
            writeln!(
                out,
                "{:<19} {:>12.2} {:>14.2} {:>14} {:>16}",
                format!(
                    "{}-{}",
                    b as u64 * width,
                    ((b as u64 + 1) * width).min(last)
                ),
                occ(0),
                occ(1),
                grants[b][0],
                grants[b][1]
            )
            .unwrap();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_isolates() {
        // 50k instructions gives the chase several laps over its arena,
        // so LLC reuse (and its destruction by the attacker) is visible.
        let opts = HarnessOpts::default().with_kinsts(50).with_timer(0);
        let points = run_enclave_attacker(&opts, 4, None);
        assert_eq!(points.len(), 4);
        // Fixed order: (BASE solo, BASE contended, MI6 solo, MI6 contended).
        assert!(!points[0].contended && points[1].contended);
        assert_eq!(points[2].variant, Variant::SecureMi6);
        for p in &points {
            assert!(p.victim_instructions > 10_000, "{p:?}");
            // Every commit slot of every accounted cycle is attributed.
            assert_eq!(
                p.victim_cpi.total_slots(),
                p.victim_cpi.cycles * p.victim_commit_width,
                "{p:?}"
            );
        }
        // The stack artifact rows pass the schema checker, and the
        // decomposition table shows the MI6 stall mechanisms explicitly.
        let doc: String = points.iter().map(|p| p.stacks_row() + "\n").collect();
        let sum = mi6_obs::check_stacks_str(&doc).unwrap();
        assert_eq!(sum.rows, 4);
        let table = render_enclave_cpi(&points);
        assert!(table.contains("total CPI"), "{table}");
        // Contention on BASE must surface as memory-side categories.
        assert!(
            points[1].victim_cpi.get(CpiCategory::MemDram)
                + points[1].victim_cpi.get(CpiCategory::MemPending)
                > points[0].victim_cpi.get(CpiCategory::MemDram)
                    + points[0].victim_cpi.get(CpiCategory::MemPending),
            "{table}"
        );
        let slowdown = |solo: &ScenarioPoint, cont: &ScenarioPoint| {
            cont.victim_cycles as f64 / solo.victim_cycles as f64
        };
        let base = slowdown(&points[0], &points[1]);
        let mi6 = slowdown(&points[2], &points[3]);
        // The paper's isolation claim: the attacker hurts BASE badly and
        // MI6 barely (Section 5.2's partitioned LLC).
        assert!(base > 1.3, "attacker barely affects BASE: {base:.3}");
        assert!(mi6 < 1.1, "MI6 fails to isolate the enclave: {mi6:.3}");
    }

    #[test]
    fn scenario_metrics_artifacts_are_schema_valid() {
        let dir = std::env::temp_dir().join(format!("mi6-scn-obs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = HarnessOpts::default().with_kinsts(10).with_timer(0);
        let obs = ScenarioObs {
            dir: dir.clone(),
            every: 2_000,
        };
        let points = run_enclave_attacker(&opts, 4, Some(&obs));
        assert_eq!(points.len(), 4);
        for p in &points {
            let path = p.metrics_path.as_ref().expect("sampled run has artifact");
            let summary = mi6_obs::check_metrics_file(path)
                .unwrap_or_else(|e| panic!("invalid metrics artifact: {e}"));
            assert!(summary.rows > 0);
            assert!(
                summary.metrics.iter().any(|m| m == "mshr_occupancy"),
                "{:?}",
                summary.metrics
            );
            assert!(summary.metrics.iter().any(|m| m == "arb_grants"));
            // Whole-machine cycle accounting is exhaustive: every cycle
            // was either ticked or skipped.
            assert!(p.cycles_ticked > 0);
        }
        // The timeline renders one table per contended point.
        let timeline = render_occupancy_timeline(&points);
        assert_eq!(timeline.matches("contended:").count(), 2, "{timeline}");
        assert!(timeline.contains("attacker MSHRs"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
