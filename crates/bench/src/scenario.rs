//! Multi-core evaluation scenarios.
//!
//! The paper's enclave threat model colocates a victim enclave with an
//! attacker-controlled OS core that thrashes the shared LLC and DRAM
//! queues (Sections 4 and 5). `enclave-attacker` reproduces that shape on
//! a two-core machine through `SimBuilder` workload placement: the victim
//! (a pointer chase over an arena that *fits* the shared LLC, so its
//! runtime is exactly what LLC eviction destroys) runs on core 0 while
//! core 1 either exits immediately (the solo baseline) or streams
//! libquantum-like traffic through the shared LLC for the victim's whole
//! run.
//!
//! The reproduction target is the *contrast*: on BASE the attacker's
//! stream evicts the victim's LLC-resident working set and inflates its
//! runtime, while the full MI6 machine (set partitioning by DRAM region,
//! per-core MSHRs, round-robin pipeline arbitration) keeps the attacker
//! out of the victim's sets and bounds the interference.

use crate::{mean, HarnessOpts};
use mi6_isa::{Assembler, Inst, Reg};
use mi6_soc::{kernel, loader, Program, SimBuilder, Variant};
use mi6_workloads::{Workload, WorkloadParams};
use std::sync::mpsc;
use std::thread;

/// The enclave victim workload (promoted to `mi6-workloads` so plain
/// figure grids and shards can run it like any other workload; see
/// [`Workload::EnclaveWs`] for why the 256 KiB chase arena is the
/// maximally eviction-sensitive shape).
pub const VICTIM: Workload = Workload::EnclaveWs;
/// Display name of the enclave victim.
pub const VICTIM_NAME: &str = "enclave-ws";
/// The attacker workload (streaming LLC thrasher).
pub const ATTACKER: Workload = Workload::Libquantum;

/// The enclave victim's program ([`Workload::EnclaveWs`] at this scale).
pub fn victim_program(params: &WorkloadParams) -> Program {
    VICTIM.build(params)
}

/// One (variant, colocation) measurement of the victim core.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioPoint {
    /// Machine variant.
    pub variant: Variant,
    /// Whether the attacker core was streaming.
    pub contended: bool,
    /// Cycles until the *victim* core halted (its core-local counter).
    pub victim_cycles: u64,
    /// Victim instructions committed.
    pub victim_instructions: u64,
}

/// A program that exits immediately — parks the second core so a solo run
/// uses the identical two-core machine as the contended one.
fn park_program() -> Program {
    let mut asm = Assembler::new(loader::CODE_VA);
    asm.li(Reg::A0, 0);
    asm.li(Reg::A7, kernel::sys::EXIT);
    asm.push(Inst::Ecall);
    Program {
        name: "park".into(),
        code: asm.assemble().expect("park program assembles"),
        data_size: 4096,
        data_init: vec![],
        stack_size: 4096,
    }
}

fn run_point(variant: Variant, contended: bool, opts: &HarnessOpts) -> ScenarioPoint {
    let victim_params = WorkloadParams::evaluation()
        .with_target_kinsts(opts.kinsts)
        .with_seed(opts.seed);
    // The attacker outlives the victim so interference covers the whole
    // measured run.
    let attacker_params = WorkloadParams::evaluation()
        .with_target_kinsts(opts.kinsts.saturating_mul(3))
        .with_seed(opts.seed);
    let attacker = if contended {
        ATTACKER.build(&attacker_params)
    } else {
        park_program()
    };
    let mut machine = SimBuilder::new(variant)
        .cores(2)
        .timer_interval(opts.timer)
        .workload(0, victim_program(&victim_params))
        .workload(1, attacker)
        .build()
        .unwrap_or_else(|e| panic!("building {variant} scenario: {e}"));
    let cap = opts.kinsts.saturating_mul(6_000_000).max(400_000_000);
    let stats = machine
        .run_to_completion(cap)
        .unwrap_or_else(|e| panic!("running {variant} scenario: {e}"));
    ScenarioPoint {
        variant,
        contended,
        // The per-core cycle counter stops when the core halts, so this is
        // the victim's own completion time even though the attacker keeps
        // running afterwards.
        victim_cycles: stats.core[0].cycles,
        victim_instructions: stats.core[0].committed_instructions,
    }
}

/// Runs the enclave-plus-attacker grid — (BASE, MI6) × (solo, contended)
/// — across up to four worker threads and returns the points in a fixed
/// order: for each variant, solo then contended.
pub fn run_enclave_attacker(opts: &HarnessOpts, threads: usize) -> Vec<ScenarioPoint> {
    let grid: Vec<(Variant, bool)> = [Variant::Base, Variant::SecureMi6]
        .into_iter()
        .flat_map(|v| [(v, false), (v, true)])
        .collect();
    let workers = threads.clamp(1, grid.len());
    let (tx, rx) = mpsc::channel::<(usize, ScenarioPoint)>();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<ScenarioPoint>> = vec![None; grid.len()];
    thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let grid = &grid;
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= grid.len() {
                    break;
                }
                let (variant, contended) = grid[i];
                if tx.send((i, run_point(variant, contended, opts))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        while let Ok((i, p)) = rx.recv() {
            eprintln!(
                "  {} {}: victim {} cycles",
                p.variant,
                if p.contended { "contended" } else { "solo" },
                p.victim_cycles
            );
            results[i] = Some(p);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every scenario point completed"))
        .collect()
}

/// Renders the scenario table: per variant, the victim's solo and
/// contended runtimes and the attacker-induced slowdown.
pub fn render_enclave_attacker(points: &[ScenarioPoint]) {
    println!(
        "\n=== enclave + attacker (2 cores): victim {} vs streaming {} ===",
        VICTIM_NAME,
        ATTACKER.name()
    );
    println!(
        "{:<10} {:>16} {:>18} {:>10}",
        "variant", "solo cycles", "contended cycles", "slowdown"
    );
    let mut slowdowns = Vec::new();
    for pair in points.chunks(2) {
        let [solo, contended] = pair else {
            continue;
        };
        assert_eq!(solo.variant, contended.variant);
        assert!(!solo.contended && contended.contended);
        let slowdown = (contended.victim_cycles as f64 / solo.victim_cycles as f64 - 1.0) * 100.0;
        slowdowns.push(slowdown);
        println!(
            "{:<10} {:>16} {:>18} {:>9.1}%",
            solo.variant.name(),
            solo.victim_cycles,
            contended.victim_cycles,
            slowdown
        );
    }
    if slowdowns.len() == 2 {
        println!(
            "attacker-induced victim slowdown: BASE {:+.1}% vs MI6 {:+.1}% \
             (mean {:+.1}%; the paper's isolation claim is MI6 << BASE)",
            slowdowns[0],
            slowdowns[1],
            mean(slowdowns.iter().copied())
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_isolates() {
        // 50k instructions gives the chase several laps over its arena,
        // so LLC reuse (and its destruction by the attacker) is visible.
        let opts = HarnessOpts::default().with_kinsts(50).with_timer(0);
        let points = run_enclave_attacker(&opts, 4);
        assert_eq!(points.len(), 4);
        // Fixed order: (BASE solo, BASE contended, MI6 solo, MI6 contended).
        assert!(!points[0].contended && points[1].contended);
        assert_eq!(points[2].variant, Variant::SecureMi6);
        for p in &points {
            assert!(p.victim_instructions > 10_000, "{p:?}");
        }
        let slowdown = |solo: &ScenarioPoint, cont: &ScenarioPoint| {
            cont.victim_cycles as f64 / solo.victim_cycles as f64
        };
        let base = slowdown(&points[0], &points[1]);
        let mi6 = slowdown(&points[2], &points[3]);
        // The paper's isolation claim: the attacker hurts BASE badly and
        // MI6 barely (Section 5.2's partitioned LLC).
        assert!(base > 1.3, "attacker barely affects BASE: {base:.3}");
        assert!(mi6 < 1.1, "MI6 fails to isolate the enclave: {mi6:.3}");
    }
}
