//! The ten evaluation figures (paper Section 7) as declarative grids.
//!
//! Each figure declares which grid points it needs via [`figure_points`];
//! the CLI runs them (in parallel, through [`crate::run_grid`]) and hands
//! the results back to [`render_figure`], which reproduces the old
//! per-figure binary output. Figure 4 is the configuration table and needs
//! no simulation.
//!
//! Everything renders to `String`: the CLI prints the tables, and the
//! shard `merge` path re-renders them from journaled JSON — the two must
//! be byte-identical, which a printing API can't assert.

use crate::runner::{variant_points_for, GridPoint, PointResult};
use crate::{
    mean, render_metric_figure, render_overhead_figure, HarnessOpts, RunRecord, PAPER_FIG10,
    PAPER_FIG11, PAPER_FIG12, PAPER_FIG13, PAPER_FIG5, PAPER_FIG8,
};
use mi6_core::CoreConfig;
use mi6_mem::MemConfig;
use mi6_soc::Variant;
use mi6_workloads::Workload;
use std::fmt::Write;

/// Figure ids the CLI accepts.
pub const FIGURES: std::ops::RangeInclusive<u32> = 4..=13;

/// Adjusts base options the way the old `fig*` binaries did: figures that
/// measure steady-state LLC effects disable the scheduler tick, and the
/// NONSPEC figure truncates its runs (as in the paper — NONSPEC is slow).
fn figure_opts(figure: u32, opts: HarnessOpts) -> HarnessOpts {
    match figure {
        8..=11 => opts.with_timer(0),
        12 => opts.with_timer(0).with_kinsts(opts.kinsts.min(500)),
        _ => opts,
    }
}

/// The non-BASE variant a figure evaluates (None for figure 4 and the
/// FLUSH-only figure 6, which has no BASE pass).
fn figure_variant(figure: u32) -> Option<Variant> {
    match figure {
        5..=7 => Some(Variant::Flush),
        8 | 9 => Some(Variant::Part),
        10 => Some(Variant::Miss),
        11 => Some(Variant::Arb),
        12 => Some(Variant::NonSpec),
        13 => Some(Variant::Fpma),
        _ => None,
    }
}

/// The grid points figure `figure` needs, in rendering order (the BASE
/// pass, where present, precedes the variant pass).
///
/// # Panics
///
/// Panics if `figure` is outside [`FIGURES`].
pub fn figure_points(figure: u32, opts: HarnessOpts) -> Vec<GridPoint> {
    figure_points_for(figure, opts, &Workload::ALL)
}

/// [`figure_points`] over an explicit workload set (the CLI's
/// `--workload` restriction; this is also how the adversarial
/// `enclave-ws` runs in a plain figure grid or shard).
///
/// # Panics
///
/// Panics if `figure` is outside [`FIGURES`].
pub fn figure_points_for(figure: u32, opts: HarnessOpts, workloads: &[Workload]) -> Vec<GridPoint> {
    assert!(FIGURES.contains(&figure), "unknown figure {figure}");
    let opts = figure_opts(figure, opts);
    match figure {
        4 => Vec::new(),
        6 => variant_points_for(Variant::Flush, opts, workloads),
        f => {
            let variant = figure_variant(f).expect("simulating figure");
            let mut points = variant_points_for(Variant::Base, opts, workloads);
            points.extend(variant_points_for(variant, opts, workloads));
            points
        }
    }
}

fn records(results: &[PointResult], variant: Variant) -> Vec<RunRecord> {
    results
        .iter()
        .filter(|r| r.point.variant == variant)
        .map(|r| r.record.clone())
        .collect()
}

/// Renders figure `figure` from the results of its [`figure_points`] grid.
pub fn render_figure(figure: u32, results: &[PointResult]) -> String {
    let base = records(results, Variant::Base);
    match figure {
        4 => config_table(),
        5 => render_overhead_figure(
            "Figure 5: FLUSH runtime overhead vs BASE",
            PAPER_FIG5,
            &base,
            &records(results, Variant::Flush),
        ),
        6 => {
            let flush = records(results, Variant::Flush);
            let mut out = String::new();
            writeln!(out, "\n=== Figure 6: flush stall time (% of execution) ===").unwrap();
            writeln!(
                out,
                "{:<12} {:>12} {:>10}",
                "benchmark", "stall cycles", "stall %"
            )
            .unwrap();
            for r in &flush {
                writeln!(
                    out,
                    "{:<12} {:>12} {:>9.2}%",
                    r.name,
                    r.flush_stall_cycles,
                    r.flush_stall_pct()
                )
                .unwrap();
            }
            writeln!(
                out,
                "{:<12} {:>12} {:>9.2}%   (paper avg 0.4%, max xalancbmk 3.2%)",
                "average",
                "",
                mean(flush.iter().map(|r| r.flush_stall_pct()))
            )
            .unwrap();
            out
        }
        7 => render_metric_figure(
            "Figure 7: branch MPKI, BASE vs FLUSH",
            "MPKI",
            (18.3, 24.3),
            ("BASE", "FLUSH"),
            &base,
            &records(results, Variant::Flush),
            |r| r.branch_mpki,
        ),
        8 => render_overhead_figure(
            "Figure 8: PART runtime overhead vs BASE",
            PAPER_FIG8,
            &base,
            &records(results, Variant::Part),
        ),
        9 => render_metric_figure(
            "Figure 9: LLC MPKI, BASE vs PART",
            "LLC MPKI",
            (17.4, 19.6),
            ("BASE", "PART"),
            &base,
            &records(results, Variant::Part),
            |r| r.llc_mpki,
        ),
        10 => render_overhead_figure(
            "Figure 10: MISS runtime overhead vs BASE",
            PAPER_FIG10,
            &base,
            &records(results, Variant::Miss),
        ),
        11 => render_overhead_figure(
            "Figure 11: ARB runtime overhead vs BASE",
            PAPER_FIG11,
            &base,
            &records(results, Variant::Arb),
        ),
        12 => render_overhead_figure(
            "Figure 12: NONSPEC runtime overhead vs BASE (truncated runs)",
            PAPER_FIG12,
            &base,
            &records(results, Variant::NonSpec),
        ),
        13 => render_overhead_figure(
            "Figure 13: F+P+M+A (enclave) runtime overhead vs BASE",
            PAPER_FIG13,
            &base,
            &records(results, Variant::Fpma),
        ),
        other => panic!("unknown figure {other}"),
    }
}

/// Renders the per-mechanism CPI-stack decomposition across every
/// (variant, workload) pair in `results`: for each workload, one table
/// whose columns are the variants measured and whose rows are the
/// CPI-stack categories (per-category CPI contribution =
/// `slots / (commit_width × instructions)`, so a column sums to that
/// run's CPI). This is the *where did the overhead go* companion to the
/// overhead figures: FLUSH's cost lands in `squash_*`/`flush`/`frontend`,
/// PART's in `mem_llc`/`mem_dram` (smaller effective LLC), MISS's in
/// `mshr_quota_deny`, and ARB's extra pipeline latency in `mem_llc` —
/// `arb_deny` itself only attributes on the full MI6 machine, whose
/// round-robin arbiter actually parks requests (the ARB variant models
/// the arbiter's latency, not its scheduling).
///
/// Rows all-zero across every variant are dropped; records without a
/// stack (pre-CPI-stack journals) are skipped.
pub fn render_cpi_decomposition(results: &[PointResult]) -> String {
    use mi6_core::CpiCategory;
    // (variant, workload-name) → record, first occurrence wins (the same
    // unique point can back several figures).
    let mut by_workload: Vec<(&str, Vec<(Variant, &RunRecord)>)> = Vec::new();
    let mut variants: Vec<Variant> = Vec::new();
    for r in results {
        if r.record.cpi.cycles == 0 || r.record.instructions == 0 {
            continue;
        }
        if !variants.contains(&r.point.variant) {
            variants.push(r.point.variant);
        }
        let per = match by_workload.iter_mut().find(|(n, _)| *n == r.record.name) {
            Some((_, per)) => per,
            None => {
                by_workload.push((r.record.name, Vec::new()));
                &mut by_workload.last_mut().expect("just pushed").1
            }
        };
        if !per.iter().any(|(v, _)| *v == r.point.variant) {
            per.push((r.point.variant, &r.record));
        }
    }
    if variants.len() < 2 {
        return String::new();
    }
    // Paper order, restricted to what was measured.
    variants.sort_by_key(|v| Variant::ALL.iter().position(|a| a == v));
    let mut out = String::new();
    writeln!(
        out,
        "\n=== CPI stacks: per-mechanism cycle attribution (CPI per category) ==="
    )
    .unwrap();
    for (name, per) in &by_workload {
        let cpi_of = |r: &RunRecord, cat: CpiCategory| {
            r.cpi.get(cat) as f64 / (r.commit_width * r.instructions) as f64
        };
        writeln!(out, "\n--- {name} ---").unwrap();
        write!(out, "{:<18}", "category").unwrap();
        let cols: Vec<(Variant, &RunRecord)> = variants
            .iter()
            .filter_map(|v| per.iter().find(|(pv, _)| pv == v).copied())
            .collect();
        for (v, _) in &cols {
            write!(out, " {:>12}", v.name()).unwrap();
        }
        writeln!(out).unwrap();
        for cat in CpiCategory::ALL {
            if cols.iter().all(|(_, r)| r.cpi.get(cat) == 0) {
                continue;
            }
            write!(out, "{:<18}", cat.name()).unwrap();
            for (_, r) in &cols {
                write!(out, " {:>12.4}", cpi_of(r, cat)).unwrap();
            }
            writeln!(out).unwrap();
        }
        write!(out, "{:<18}", "total CPI").unwrap();
        for (_, r) in &cols {
            let total: f64 = CpiCategory::ALL.iter().map(|&c| cpi_of(r, c)).sum();
            write!(out, " {:>12.4}", total).unwrap();
        }
        writeln!(out).unwrap();
        // The overhead line ties the stack back to the runtime figures.
        if let Some((_, base)) = cols.iter().find(|(v, _)| *v == Variant::Base) {
            write!(out, "{:<18}", "overhead vs BASE").unwrap();
            for (_, r) in &cols {
                let pct = (r.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
                write!(out, " {:>11.1}%", pct).unwrap();
            }
            writeln!(out).unwrap();
        }
    }
    out
}

/// Element-wise mean of one grid point's records across seeds (used to
/// render a figure from a `--seeds N` sweep; derived rates are averaged
/// directly, counters arithmetically).
fn mean_record(records: &[&RunRecord]) -> RunRecord {
    let n = records.len() as f64;
    let avg = |f: &dyn Fn(&RunRecord) -> f64| records.iter().map(|r| f(r)).sum::<f64>() / n;
    let avg_u64 = |f: &dyn Fn(&RunRecord) -> u64| avg(&|r| f(r) as f64).round() as u64;
    RunRecord {
        name: records[0].name,
        cycles: avg_u64(&|r| r.cycles),
        instructions: avg_u64(&|r| r.instructions),
        branch_mpki: avg(&|r| r.branch_mpki),
        llc_mpki: avg(&|r| r.llc_mpki),
        flush_stall_cycles: avg_u64(&|r| r.flush_stall_cycles),
        traps: avg_u64(&|r| r.traps),
        cpi: {
            // Slot-wise mean keeps the categories comparable across
            // seeds; the sum invariant only holds exactly when the
            // rounding happens to cancel, so downstream checks apply to
            // raw per-run stacks, never to seed means.
            let mut slots = [0u64; mi6_core::CPI_CATEGORIES];
            for (i, slot) in slots.iter_mut().enumerate() {
                *slot = avg_u64(&|r| r.cpi.slots[i]);
            }
            mi6_core::CpiStack::from_raw(
                avg_u64(&|r| r.cpi.cycles),
                slots,
                [
                    avg_u64(&|r| r.cpi.rename_rob_full),
                    avg_u64(&|r| r.cpi.rename_iq_full),
                    avg_u64(&|r| r.cpi.rename_lq_full),
                    avg_u64(&|r| r.cpi.rename_sq_full),
                    avg_u64(&|r| r.cpi.commit_sb_full),
                ],
            )
        },
        commit_width: records[0].commit_width,
        cycles_ticked: avg_u64(&|r| r.cycles_ticked),
        cycles_skipped: avg_u64(&|r| r.cycles_skipped),
    }
}

/// Collapses per-seed result vectors (all in the same `figure_points`
/// order) into one mean result per point, for figure rendering.
///
/// # Panics
///
/// Panics if the per-seed vectors have different shapes.
pub fn mean_results(per_seed: &[Vec<PointResult>]) -> Vec<PointResult> {
    assert!(!per_seed.is_empty());
    let n = per_seed[0].len();
    assert!(per_seed.iter().all(|s| s.len() == n), "ragged seed results");
    (0..n)
        .map(|i| {
            let records: Vec<&RunRecord> = per_seed.iter().map(|s| &s[i].record).collect();
            let wall_sum: u64 = per_seed.iter().map(|s| s[i].wall_ms).sum();
            PointResult {
                point: per_seed[0][i].point,
                record: mean_record(&records),
                // Round, don't truncate: the shard-balance report sums
                // these, and systematic truncation biases it low.
                wall_ms: (wall_sum as f64 / per_seed.len() as f64).round() as u64,
                // A mean across seeds was run by several workers; mark it
                // so per-worker accounting can skip it.
                worker: crate::runner::AGGREGATED_WORKER,
                warm: per_seed[0][i].warm.clone(),
                // Per-seed metrics artifacts don't aggregate; the mean
                // carries none.
                metrics: None,
            }
        })
        .collect()
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (small-N table baked in; converges to the normal 1.960 beyond 30 —
/// seed sweeps are small-N by construction).
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        _ => 1.960,
    }
}

/// Renders the per-point cycle-count confidence intervals of a
/// `--seeds N` sweep for one figure: mean ± the 95% Student-t interval
/// (df = N−1), with N printed alongside so a reader can judge the
/// interval's weight, plus the observed min/max.
pub fn render_seed_ci(figure: u32, per_seed: &[Vec<PointResult>]) -> String {
    let seeds = per_seed.len();
    let mut out = String::new();
    if seeds < 2 || per_seed[0].is_empty() {
        return out;
    }
    writeln!(
        out,
        "\n--- figure {figure}: cycles, mean ± 95% CI (Student t, N={seeds} seeds) ---"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<12} {:>3} {:>14} {:>12} {:>14} {:>14}",
        "variant", "benchmark", "N", "mean", "±95% CI", "min", "max"
    )
    .unwrap();
    for i in 0..per_seed[0].len() {
        let cycles: Vec<f64> = per_seed.iter().map(|s| s[i].record.cycles as f64).collect();
        let n = cycles.len() as f64;
        let mean = cycles.iter().sum::<f64>() / n;
        let var = cycles.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1.0);
        let half = t95(cycles.len() - 1) * (var / n).sqrt();
        let (min, max) = cycles
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &c| {
                (lo.min(c), hi.max(c))
            });
        let point = per_seed[0][i].point;
        writeln!(
            out,
            "{:<10} {:<12} {:>3} {:>14.0} {:>12.0} {:>14.0} {:>14.0}",
            point.variant.name(),
            point.workload.name(),
            seeds,
            mean,
            half,
            min,
            max
        )
        .unwrap();
    }
    out
}

/// Figure 4: the insecure baseline (BASE) configuration table.
fn config_table() -> String {
    let core = CoreConfig::paper();
    let mem = MemConfig::paper_base();
    let mut out = String::new();
    writeln!(
        out,
        "=== Figure 4: insecure baseline (BASE) configuration ==="
    )
    .unwrap();
    writeln!(
        out,
        "Front-end    {}-wide fetch/decode/rename",
        core.fetch_width
    )
    .unwrap();
    writeln!(
        out,
        "             {}-entry direct-mapped BTB",
        core.btb_entries
    )
    .unwrap();
    writeln!(out, "             tournament predictor (Alpha 21264 style)").unwrap();
    writeln!(
        out,
        "             {}-entry return address stack",
        core.ras_entries
    )
    .unwrap();
    writeln!(
        out,
        "Exec engine  {}-entry ROB, {}-way insert/commit",
        core.rob_entries, core.commit_width
    )
    .unwrap();
    writeln!(
        out,
        "             4 pipelines: 2 ALU, 1 MEM, 1 FP/MUL/DIV; {}-entry IQ each",
        core.iq_entries
    )
    .unwrap();
    writeln!(
        out,
        "Ld-St unit   {}-entry LQ, {}-entry SQ, {}-entry SB (64B wide)",
        core.lq_entries, core.sq_entries, core.sb_entries
    )
    .unwrap();
    writeln!(
        out,
        "L1 TLBs      {}-entry fully associative (I and D); D-TLB max {} requests",
        core.l1_tlb_entries, core.dtlb_max_misses
    )
    .unwrap();
    writeln!(
        out,
        "L2 TLB       {}-entry, {}-way; translation cache {} entries/step",
        core.l2_tlb_entries, core.l2_tlb_ways, core.tcache_entries
    )
    .unwrap();
    writeln!(
        out,
        "L1 caches    {} KiB, {}-way, max {} requests (I and D)",
        mem.l1d.size_bytes >> 10,
        mem.l1d.ways,
        mem.l1d.mshrs
    )
    .unwrap();
    writeln!(
        out,
        "L2 (LLC)     {} MiB, {}-way, {:?} MSHRs, coherent+inclusive",
        mem.llc.size_bytes >> 20,
        mem.llc.ways,
        mem.llc.mshrs
    )
    .unwrap();
    writeln!(
        out,
        "Memory       {} GiB, {}-cycle latency, max {} requests",
        mem.dram.size_bytes >> 30,
        mem.dram.latency,
        mem.dram.max_inflight
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_workloads::Workload;

    #[test]
    fn every_figure_declares_a_consistent_grid() {
        let opts = HarnessOpts::default();
        for fig in FIGURES {
            let points = figure_points(fig, opts);
            match fig {
                4 => assert!(points.is_empty()),
                6 => {
                    assert_eq!(points.len(), Workload::ALL.len());
                    assert!(points.iter().all(|p| p.variant == Variant::Flush));
                }
                _ => {
                    assert_eq!(points.len(), 2 * Workload::ALL.len());
                    assert!(points[..11].iter().all(|p| p.variant == Variant::Base));
                    assert!(points[11..].iter().all(|p| p.variant != Variant::Base));
                }
            }
        }
    }

    #[test]
    fn figure_grids_can_run_the_adversarial_workload() {
        let opts = HarnessOpts::default();
        let sel = [Workload::EnclaveWs, Workload::Mcf];
        let points = figure_points_for(13, opts, &sel);
        assert_eq!(points.len(), 4);
        assert!(points
            .iter()
            .any(|p| p.workload == Workload::EnclaveWs && p.variant == Variant::Fpma));
    }

    #[test]
    fn steady_state_figures_disable_the_timer() {
        let opts = HarnessOpts::default();
        for fig in [8u32, 9, 10, 11, 12] {
            for p in figure_points(fig, opts) {
                assert_eq!(p.opts.timer, 0, "figure {fig}");
            }
        }
        // FLUSH figures keep the scheduler tick (trap-driven effects).
        for p in figure_points(5, opts) {
            assert_eq!(p.opts.timer, opts.timer);
        }
    }

    #[test]
    fn nonspec_truncates_runs() {
        let opts = HarnessOpts::default().with_kinsts(2000);
        for p in figure_points(12, opts) {
            assert_eq!(p.opts.kinsts, 500);
        }
    }

    #[test]
    fn t_table_is_sane() {
        assert!(t95(1) > 12.0);
        assert!(t95(4) > t95(9));
        assert!((t95(100) - 1.960).abs() < 1e-9);
        // df = N-1 for N=2 seeds is the first row.
        assert_eq!(t95(1), 12.706);
    }

    #[test]
    fn mean_results_rounds_wall_ms_and_marks_aggregates() {
        let p = GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: HarnessOpts::default(),
        };
        let mk = |wall_ms: u64| {
            vec![PointResult {
                point: p,
                record: RunRecord {
                    name: "hmmer",
                    cycles: 1000,
                    instructions: 1000,
                    branch_mpki: 0.0,
                    llc_mpki: 0.0,
                    flush_stall_cycles: 0,
                    traps: 0,
                    cpi: Default::default(),
                    commit_width: 2,
                    cycles_ticked: 0,
                    cycles_skipped: 0,
                },
                wall_ms,
                worker: 3,
                warm: "cold".to_string(),
                metrics: None,
            }]
        };
        let mean = mean_results(&[mk(1), mk(2)]);
        // 1.5 rounds to 2 — truncating to 1 would bias the shard-balance
        // report low.
        assert_eq!(mean[0].wall_ms, 2);
        // Aggregated points carry the sentinel, not a fake worker 0.
        assert_eq!(mean[0].worker, crate::runner::AGGREGATED_WORKER);
        // JSON round-trips the sentinel (merge tooling must not choke).
        let parsed = PointResult::from_json(&mean[0].to_json()).unwrap();
        assert_eq!(parsed.worker, crate::runner::AGGREGATED_WORKER);
    }

    #[test]
    fn seed_ci_renders_with_n() {
        let p = GridPoint {
            variant: Variant::Base,
            workload: Workload::Hmmer,
            opts: HarnessOpts::default(),
        };
        let mk = |cycles: u64| {
            vec![PointResult {
                point: p,
                record: RunRecord {
                    name: "hmmer",
                    cycles,
                    instructions: 1000,
                    branch_mpki: 0.0,
                    llc_mpki: 0.0,
                    flush_stall_cycles: 0,
                    traps: 0,
                    cpi: Default::default(),
                    commit_width: 2,
                    cycles_ticked: 0,
                    cycles_skipped: 0,
                },
                wall_ms: 1,
                worker: 0,
                warm: "cold".to_string(),
                metrics: None,
            }]
        };
        let per_seed = vec![mk(1000), mk(1100), mk(900)];
        let out = render_seed_ci(13, &per_seed);
        assert!(out.contains("95% CI"), "{out}");
        assert!(out.contains("N=3"), "{out}");
        // mean 1000, sd 100, t95(2)=4.303 → half = 4.303*100/sqrt(3) ≈ 248.
        assert!(out.contains(" 248"), "{out}");
        // One seed renders nothing (no spread to report).
        assert!(render_seed_ci(13, &per_seed[..1]).is_empty());
    }
}
