//! The ten evaluation figures (paper Section 7) as declarative grids.
//!
//! Each figure declares which grid points it needs via [`figure_points`];
//! the CLI runs them (in parallel, through [`crate::run_grid`]) and hands
//! the results back to [`render_figure`], which reproduces the old
//! per-figure binary output. Figure 4 is the configuration table and needs
//! no simulation.

use crate::runner::{variant_points, GridPoint, PointResult};
use crate::{
    mean, print_metric_figure, print_overhead_figure, HarnessOpts, RunRecord, PAPER_FIG10,
    PAPER_FIG11, PAPER_FIG12, PAPER_FIG13, PAPER_FIG5, PAPER_FIG8,
};
use mi6_core::CoreConfig;
use mi6_mem::MemConfig;
use mi6_soc::Variant;

/// Figure ids the CLI accepts.
pub const FIGURES: std::ops::RangeInclusive<u32> = 4..=13;

/// Adjusts base options the way the old `fig*` binaries did: figures that
/// measure steady-state LLC effects disable the scheduler tick, and the
/// NONSPEC figure truncates its runs (as in the paper — NONSPEC is slow).
fn figure_opts(figure: u32, opts: HarnessOpts) -> HarnessOpts {
    match figure {
        8..=11 => opts.with_timer(0),
        12 => opts.with_timer(0).with_kinsts(opts.kinsts.min(500)),
        _ => opts,
    }
}

/// The non-BASE variant a figure evaluates (None for figure 4 and the
/// FLUSH-only figure 6, which has no BASE pass).
fn figure_variant(figure: u32) -> Option<Variant> {
    match figure {
        5..=7 => Some(Variant::Flush),
        8 | 9 => Some(Variant::Part),
        10 => Some(Variant::Miss),
        11 => Some(Variant::Arb),
        12 => Some(Variant::NonSpec),
        13 => Some(Variant::Fpma),
        _ => None,
    }
}

/// The grid points figure `figure` needs, in rendering order (the BASE
/// pass, where present, precedes the variant pass).
///
/// # Panics
///
/// Panics if `figure` is outside [`FIGURES`].
pub fn figure_points(figure: u32, opts: HarnessOpts) -> Vec<GridPoint> {
    assert!(FIGURES.contains(&figure), "unknown figure {figure}");
    let opts = figure_opts(figure, opts);
    match figure {
        4 => Vec::new(),
        6 => variant_points(Variant::Flush, opts),
        f => {
            let variant = figure_variant(f).expect("simulating figure");
            let mut points = variant_points(Variant::Base, opts);
            points.extend(variant_points(variant, opts));
            points
        }
    }
}

fn records(results: &[PointResult], variant: Variant) -> Vec<RunRecord> {
    results
        .iter()
        .filter(|r| r.point.variant == variant)
        .map(|r| r.record.clone())
        .collect()
}

/// Renders figure `figure` from the results of its [`figure_points`] grid.
pub fn render_figure(figure: u32, results: &[PointResult]) {
    let base = records(results, Variant::Base);
    match figure {
        4 => print_config_table(),
        5 => print_overhead_figure(
            "Figure 5: FLUSH runtime overhead vs BASE",
            PAPER_FIG5,
            &base,
            &records(results, Variant::Flush),
        ),
        6 => {
            let flush = records(results, Variant::Flush);
            println!("\n=== Figure 6: flush stall time (% of execution) ===");
            println!(
                "{:<12} {:>12} {:>10}",
                "benchmark", "stall cycles", "stall %"
            );
            for r in &flush {
                println!(
                    "{:<12} {:>12} {:>9.2}%",
                    r.name,
                    r.flush_stall_cycles,
                    r.flush_stall_pct()
                );
            }
            println!(
                "{:<12} {:>12} {:>9.2}%   (paper avg 0.4%, max xalancbmk 3.2%)",
                "average",
                "",
                mean(flush.iter().map(|r| r.flush_stall_pct()))
            );
        }
        7 => print_metric_figure(
            "Figure 7: branch MPKI, BASE vs FLUSH",
            "MPKI",
            (18.3, 24.3),
            ("BASE", "FLUSH"),
            &base,
            &records(results, Variant::Flush),
            |r| r.branch_mpki,
        ),
        8 => print_overhead_figure(
            "Figure 8: PART runtime overhead vs BASE",
            PAPER_FIG8,
            &base,
            &records(results, Variant::Part),
        ),
        9 => print_metric_figure(
            "Figure 9: LLC MPKI, BASE vs PART",
            "LLC MPKI",
            (17.4, 19.6),
            ("BASE", "PART"),
            &base,
            &records(results, Variant::Part),
            |r| r.llc_mpki,
        ),
        10 => print_overhead_figure(
            "Figure 10: MISS runtime overhead vs BASE",
            PAPER_FIG10,
            &base,
            &records(results, Variant::Miss),
        ),
        11 => print_overhead_figure(
            "Figure 11: ARB runtime overhead vs BASE",
            PAPER_FIG11,
            &base,
            &records(results, Variant::Arb),
        ),
        12 => print_overhead_figure(
            "Figure 12: NONSPEC runtime overhead vs BASE (truncated runs)",
            PAPER_FIG12,
            &base,
            &records(results, Variant::NonSpec),
        ),
        13 => print_overhead_figure(
            "Figure 13: F+P+M+A (enclave) runtime overhead vs BASE",
            PAPER_FIG13,
            &base,
            &records(results, Variant::Fpma),
        ),
        other => panic!("unknown figure {other}"),
    }
}

/// Element-wise mean of one grid point's records across seeds (used to
/// render a figure from a `--seeds N` sweep; derived rates are averaged
/// directly, counters arithmetically).
fn mean_record(records: &[&RunRecord]) -> RunRecord {
    let n = records.len() as f64;
    let avg = |f: &dyn Fn(&RunRecord) -> f64| records.iter().map(|r| f(r)).sum::<f64>() / n;
    RunRecord {
        name: records[0].name,
        cycles: avg(&|r| r.cycles as f64).round() as u64,
        instructions: avg(&|r| r.instructions as f64).round() as u64,
        branch_mpki: avg(&|r| r.branch_mpki),
        llc_mpki: avg(&|r| r.llc_mpki),
        flush_stall_cycles: avg(&|r| r.flush_stall_cycles as f64).round() as u64,
        traps: avg(&|r| r.traps as f64).round() as u64,
    }
}

/// Collapses per-seed result vectors (all in the same `figure_points`
/// order) into one mean result per point, for figure rendering.
///
/// # Panics
///
/// Panics if the per-seed vectors have different shapes.
pub fn mean_results(per_seed: &[Vec<PointResult>]) -> Vec<PointResult> {
    assert!(!per_seed.is_empty());
    let n = per_seed[0].len();
    assert!(per_seed.iter().all(|s| s.len() == n), "ragged seed results");
    (0..n)
        .map(|i| {
            let records: Vec<&RunRecord> = per_seed.iter().map(|s| &s[i].record).collect();
            PointResult {
                point: per_seed[0][i].point,
                record: mean_record(&records),
                wall_ms: per_seed.iter().map(|s| s[i].wall_ms).sum::<u64>() / per_seed.len() as u64,
            }
        })
        .collect()
}

/// Prints the per-point seed spread (mean ± half-range, with min/max) of
/// a `--seeds N` sweep for one figure.
pub fn render_seed_spread(figure: u32, per_seed: &[Vec<PointResult>]) {
    let seeds = per_seed.len();
    if seeds < 2 || per_seed[0].is_empty() {
        return;
    }
    println!("\n--- figure {figure}: cycle spread over {seeds} seeds ---");
    println!(
        "{:<10} {:<12} {:>14} {:>10} {:>14} {:>14}",
        "variant", "benchmark", "mean", "±", "min", "max"
    );
    for i in 0..per_seed[0].len() {
        let cycles: Vec<u64> = per_seed.iter().map(|s| s[i].record.cycles).collect();
        let (min, max) = (
            *cycles.iter().min().expect("seeds >= 2"),
            *cycles.iter().max().expect("seeds >= 2"),
        );
        let mean = cycles.iter().sum::<u64>() / cycles.len() as u64;
        let point = per_seed[0][i].point;
        println!(
            "{:<10} {:<12} {:>14} {:>10} {:>14} {:>14}",
            point.variant.name(),
            point.workload.name(),
            mean,
            (max - min) / 2,
            min,
            max
        );
    }
}

/// Figure 4: the insecure baseline (BASE) configuration table.
fn print_config_table() {
    let core = CoreConfig::paper();
    let mem = MemConfig::paper_base();
    println!("=== Figure 4: insecure baseline (BASE) configuration ===");
    println!("Front-end    {}-wide fetch/decode/rename", core.fetch_width);
    println!("             {}-entry direct-mapped BTB", core.btb_entries);
    println!("             tournament predictor (Alpha 21264 style)");
    println!(
        "             {}-entry return address stack",
        core.ras_entries
    );
    println!(
        "Exec engine  {}-entry ROB, {}-way insert/commit",
        core.rob_entries, core.commit_width
    );
    println!(
        "             4 pipelines: 2 ALU, 1 MEM, 1 FP/MUL/DIV; {}-entry IQ each",
        core.iq_entries
    );
    println!(
        "Ld-St unit   {}-entry LQ, {}-entry SQ, {}-entry SB (64B wide)",
        core.lq_entries, core.sq_entries, core.sb_entries
    );
    println!(
        "L1 TLBs      {}-entry fully associative (I and D); D-TLB max {} requests",
        core.l1_tlb_entries, core.dtlb_max_misses
    );
    println!(
        "L2 TLB       {}-entry, {}-way; translation cache {} entries/step",
        core.l2_tlb_entries, core.l2_tlb_ways, core.tcache_entries
    );
    println!(
        "L1 caches    {} KiB, {}-way, max {} requests (I and D)",
        mem.l1d.size_bytes >> 10,
        mem.l1d.ways,
        mem.l1d.mshrs
    );
    println!(
        "L2 (LLC)     {} MiB, {}-way, {:?} MSHRs, coherent+inclusive",
        mem.llc.size_bytes >> 20,
        mem.llc.ways,
        mem.llc.mshrs
    );
    println!(
        "Memory       {} GiB, {}-cycle latency, max {} requests",
        mem.dram.size_bytes >> 30,
        mem.dram.latency,
        mem.dram.max_inflight
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_workloads::Workload;

    #[test]
    fn every_figure_declares_a_consistent_grid() {
        let opts = HarnessOpts::default();
        for fig in FIGURES {
            let points = figure_points(fig, opts);
            match fig {
                4 => assert!(points.is_empty()),
                6 => {
                    assert_eq!(points.len(), Workload::ALL.len());
                    assert!(points.iter().all(|p| p.variant == Variant::Flush));
                }
                _ => {
                    assert_eq!(points.len(), 2 * Workload::ALL.len());
                    assert!(points[..11].iter().all(|p| p.variant == Variant::Base));
                    assert!(points[11..].iter().all(|p| p.variant != Variant::Base));
                }
            }
        }
    }

    #[test]
    fn steady_state_figures_disable_the_timer() {
        let opts = HarnessOpts::default();
        for fig in [8u32, 9, 10, 11, 12] {
            for p in figure_points(fig, opts) {
                assert_eq!(p.opts.timer, 0, "figure {fig}");
            }
        }
        // FLUSH figures keep the scheduler tick (trap-driven effects).
        for p in figure_points(5, opts) {
            assert_eq!(p.opts.timer, opts.timer);
        }
    }

    #[test]
    fn nonspec_truncates_runs() {
        let opts = HarnessOpts::default().with_kinsts(2000);
        for p in figure_points(12, opts) {
            assert_eq!(p.opts.kinsts, 500);
        }
    }
}
