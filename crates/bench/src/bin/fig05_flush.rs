//! Figure 5: runtime overhead of FLUSH (scrub per-core state on every
//! trap/return) vs BASE. Paper: average 5.4 %, max 10.9 % (astar).

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG5};
use mi6_soc::Variant;

fn main() {
    let opts = HarnessOpts::from_args();
    eprintln!("fig05: BASE pass");
    let base = run_all(Variant::Base, &opts);
    eprintln!("fig05: FLUSH pass");
    let flush = run_all(Variant::Flush, &opts);
    print_overhead_figure(
        "Figure 5: FLUSH runtime overhead vs BASE",
        PAPER_FIG5,
        &base,
        &flush,
    );
}
