//! Figure 10: runtime overhead of MISS (LLC MSHR partitioning/sizing:
//! 12 entries in 4 banks) vs BASE. Paper: average 3.2 %, max 8.3 %.

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG10};
use mi6_soc::Variant;

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.timer = 0;
    let base = run_all(Variant::Base, &opts);
    let miss = run_all(Variant::Miss, &opts);
    print_overhead_figure(
        "Figure 10: MISS runtime overhead vs BASE",
        PAPER_FIG10,
        &base,
        &miss,
    );
}
