//! Figure 11: runtime overhead of ARB (LLC pipeline +8 cycles, modelling
//! the 16-core round-robin arbiter) vs BASE. Paper: average 8.5 %, max
//! 14 % (libquantum).

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG11};
use mi6_soc::Variant;

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.timer = 0;
    let base = run_all(Variant::Base, &opts);
    let arb = run_all(Variant::Arb, &opts);
    print_overhead_figure(
        "Figure 11: ARB runtime overhead vs BASE",
        PAPER_FIG11,
        &base,
        &arb,
    );
}
