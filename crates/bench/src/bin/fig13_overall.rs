//! Figure 13: overall enclave overhead — F+P+M+A (FLUSH + PART + MISS +
//! ARB) vs BASE. Paper: average 16.4 %, max 34.8 % (gcc).

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG13};
use mi6_soc::Variant;

fn main() {
    let opts = HarnessOpts::from_args();
    let base = run_all(Variant::Base, &opts);
    let fpma = run_all(Variant::Fpma, &opts);
    print_overhead_figure(
        "Figure 13: F+P+M+A (enclave) runtime overhead vs BASE",
        PAPER_FIG13,
        &base,
        &fpma,
    );
}
