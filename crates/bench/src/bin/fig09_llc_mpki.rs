//! Figure 9: LLC misses per kilo-instruction, BASE vs PART.
//! Paper: average 17.4 -> 19.6; gcc doubles; mcf 91.5 -> 97.7.

use mi6_bench::{print_metric_figure, run_all, HarnessOpts};
use mi6_soc::Variant;

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.timer = 0;
    let base = run_all(Variant::Base, &opts);
    let part = run_all(Variant::Part, &opts);
    print_metric_figure(
        "Figure 9: LLC MPKI, BASE vs PART",
        "LLC MPKI",
        (17.4, 19.6),
        ("BASE", "PART"),
        &base,
        &part,
        |r| r.llc_mpki,
    );
}
