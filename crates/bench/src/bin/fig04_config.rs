//! Figure 4: the insecure baseline (BASE) configuration table.

use mi6_core::CoreConfig;
use mi6_mem::MemConfig;

fn main() {
    let core = CoreConfig::paper();
    let mem = MemConfig::paper_base();
    println!("=== Figure 4: insecure baseline (BASE) configuration ===");
    println!("Front-end    {}-wide fetch/decode/rename", core.fetch_width);
    println!("             {}-entry direct-mapped BTB", core.btb_entries);
    println!("             tournament predictor (Alpha 21264 style)");
    println!("             {}-entry return address stack", core.ras_entries);
    println!("Exec engine  {}-entry ROB, {}-way insert/commit", core.rob_entries, core.commit_width);
    println!("             4 pipelines: 2 ALU, 1 MEM, 1 FP/MUL/DIV; {}-entry IQ each", core.iq_entries);
    println!("Ld-St unit   {}-entry LQ, {}-entry SQ, {}-entry SB (64B wide)", core.lq_entries, core.sq_entries, core.sb_entries);
    println!("L1 TLBs      {}-entry fully associative (I and D); D-TLB max {} requests", core.l1_tlb_entries, core.dtlb_max_misses);
    println!("L2 TLB       {}-entry, {}-way; translation cache {} entries/step", core.l2_tlb_entries, core.l2_tlb_ways, core.tcache_entries);
    println!("L1 caches    {} KiB, {}-way, max {} requests (I and D)", mem.l1d.size_bytes >> 10, mem.l1d.ways, mem.l1d.mshrs);
    println!("L2 (LLC)     {} MiB, {}-way, {:?} MSHRs, coherent+inclusive", mem.llc.size_bytes >> 20, mem.llc.ways, mem.llc.mshrs);
    println!("Memory       {} GiB, {}-cycle latency, max {} requests", mem.dram.size_bytes >> 30, mem.dram.latency, mem.dram.max_inflight);
}
