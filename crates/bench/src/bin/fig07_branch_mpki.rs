//! Figure 7: branch mispredictions per kilo-instruction, BASE vs FLUSH.
//! Paper: average 18.3 -> 24.3; astar 30.1 -> 46.2.

use mi6_bench::{print_metric_figure, run_all, HarnessOpts};
use mi6_soc::Variant;

fn main() {
    let opts = HarnessOpts::from_args();
    let base = run_all(Variant::Base, &opts);
    let flush = run_all(Variant::Flush, &opts);
    print_metric_figure(
        "Figure 7: branch MPKI, BASE vs FLUSH",
        "MPKI",
        (18.3, 24.3),
        ("BASE", "FLUSH"),
        &base,
        &flush,
        |r| r.branch_mpki,
    );
}
