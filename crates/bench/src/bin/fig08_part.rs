//! Figure 8: runtime overhead of PART (LLC set partitioning) vs BASE.
//! Paper: average 7.4 %, max 21.6 % (gcc).

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG8};
use mi6_soc::Variant;

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.timer = 0; // PART is a steady-state effect; no scheduler noise
    let base = run_all(Variant::Base, &opts);
    let part = run_all(Variant::Part, &opts);
    print_overhead_figure(
        "Figure 8: PART runtime overhead vs BASE",
        PAPER_FIG8,
        &base,
        &part,
    );
}
