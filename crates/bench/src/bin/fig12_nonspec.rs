//! Figure 12: runtime overhead of NONSPEC (memory instructions rename
//! only on an empty ROB) vs BASE. Paper: average 205 %, max 427 %
//! (h264ref). Like the paper, the runs are truncated (NONSPEC is slow).

use mi6_bench::{print_overhead_figure, run_all, HarnessOpts, PAPER_FIG12};
use mi6_soc::Variant;

fn main() {
    let mut opts = HarnessOpts::from_args();
    opts.timer = 0;
    opts.kinsts = opts.kinsts.min(500); // truncate, as in the paper
    let base = run_all(Variant::Base, &opts);
    let nonspec = run_all(Variant::NonSpec, &opts);
    print_overhead_figure(
        "Figure 12: NONSPEC runtime overhead vs BASE (truncated runs)",
        PAPER_FIG12,
        &base,
        &nonspec,
    );
}
