//! `mi6-experiments` — the one CLI behind every evaluation figure.
//!
//! Replaces the ten per-figure binaries: each figure is a declarative
//! variant×workload grid (see `mi6_bench::figures`) whose points run in
//! parallel across OS threads, stream JSON as they finish, and render the
//! same tables the old binaries printed.
//!
//! ```text
//! mi6-experiments --figure 13              # one figure
//! mi6-experiments --all                    # figures 4..13
//! mi6-experiments --figure 5 --kinsts 500  # shorter runs
//! mi6-experiments --figure 13 --threads 4 --json results.jsonl
//! ```
//!
//! Options: `--figure N` (4..13, repeatable), `--all`, `--kinsts N`
//! (thousands of instructions per run; default 2000), `--timer N`
//! (scheduler tick in cycles; default 250000), `--threads N` (default:
//! all hardware threads), `--json PATH` (append one JSON object per grid
//! point; `-` makes stdout a pure JSONL stream and suppresses the
//! figure tables).

use mi6_bench::runner::default_threads;
use mi6_bench::{figure_points, render_figure, run_grid, HarnessOpts, FIGURES};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::exit;
use std::time::Instant;

struct Cli {
    figures: Vec<u32>,
    opts: HarnessOpts,
    threads: usize,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mi6-experiments (--figure N)... | --all \
         [--kinsts N] [--timer N] [--threads N] [--json PATH|-]"
    );
    exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        figures: Vec::new(),
        opts: HarnessOpts::default(),
        threads: default_threads(),
        json: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                let v = value(&args, i, "--figure");
                let fig: u32 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--figure expects a number, got `{v}`");
                    usage()
                });
                if !FIGURES.contains(&fig) {
                    eprintln!("figure {fig} is not one of {FIGURES:?}");
                    usage();
                }
                cli.figures.push(fig);
                i += 1;
            }
            "--all" => cli.figures.extend(FIGURES),
            "--kinsts" => {
                cli.opts.kinsts = value(&args, i, "--kinsts")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--timer" => {
                cli.opts.timer = value(&args, i, "--timer")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--threads" => {
                cli.threads = value(&args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--json" => {
                cli.json = Some(value(&args, i, "--json"));
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if cli.figures.is_empty() {
        usage();
    }
    cli.figures.sort_unstable();
    cli.figures.dedup();
    cli
}

fn main() {
    let cli = parse_args();
    // `--json -` makes stdout a pure JSONL stream: the figure tables are
    // suppressed so the output stays machine-parseable end to end.
    let json_on_stdout = cli.json.as_deref() == Some("-");
    let mut json: Option<Box<dyn Write>> = cli.json.as_deref().map(|path| -> Box<dyn Write> {
        if path == "-" {
            Box::new(std::io::stdout())
        } else {
            let file = File::options()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    exit(1);
                });
            Box::new(BufWriter::new(file))
        }
    });

    // One deduplicated grid across every requested figure: a BASE pass
    // shared by e.g. figures 5 and 7 runs once.
    let mut unique: BTreeMap<String, usize> = BTreeMap::new();
    let mut points = Vec::new();
    let mut fig_indices: Vec<(u32, Vec<usize>)> = Vec::new();
    for &fig in &cli.figures {
        let fig_points = figure_points(fig, cli.opts);
        let mut indices = Vec::with_capacity(fig_points.len());
        for p in &fig_points {
            let key = format!(
                "{}/{}/{}/{}",
                p.variant, p.workload, p.opts.kinsts, p.opts.timer
            );
            let idx = *unique.entry(key).or_insert_with(|| {
                points.push(*p);
                points.len() - 1
            });
            indices.push(idx);
        }
        fig_indices.push((fig, indices));
    }

    eprintln!(
        "mi6-experiments: {} grid points ({} unique) on {} threads",
        fig_indices.iter().map(|(_, ix)| ix.len()).sum::<usize>(),
        points.len(),
        cli.threads,
    );
    let t0 = Instant::now();
    let mut done = 0usize;
    let total = points.len();
    let results = run_grid(&points, cli.threads, |res| {
        done += 1;
        eprintln!(
            "  [{done}/{total}] {} on {}: {} cycles ({} ms)",
            res.record.name, res.point.variant, res.record.cycles, res.wall_ms,
        );
        if let Some(out) = json.as_mut() {
            writeln!(out, "{}", res.to_json()).expect("json write");
        }
    });
    if let Some(out) = json.as_mut() {
        out.flush().expect("json flush");
    }
    let wall = t0.elapsed();
    // Per-point elapsed times double-count when threads time-slice a
    // core, so this ratio only approximates the parallel speedup on a
    // host with >= `threads` free cores; compare wall clock between
    // `--threads 1` and `--threads N` runs for an honest number.
    let sim_ms: u64 = results.iter().map(|r| r.wall_ms).sum();
    if total > 0 {
        eprintln!(
            "grid done in {:.1}s wall ({:.1}s summed over points, ~{:.2}x parallelism)",
            wall.as_secs_f64(),
            sim_ms as f64 / 1e3,
            sim_ms as f64 / 1e3 / wall.as_secs_f64().max(1e-9),
        );
    }

    if json_on_stdout {
        eprintln!(
            "figure tables suppressed: stdout is the JSON stream (use --json FILE to get both)"
        );
        return;
    }
    for (fig, indices) in fig_indices {
        let fig_results: Vec<_> = indices.iter().map(|&i| results[i].clone()).collect();
        render_figure(fig, &fig_results);
    }
}
