//! `mi6-experiments` — the one CLI behind every evaluation figure.
//!
//! Replaces the ten per-figure binaries: each figure is a declarative
//! variant×workload grid (see `mi6_bench::figures`) whose points run in
//! parallel across OS threads, stream JSON as they finish, and render the
//! same tables the old binaries printed.
//!
//! ```text
//! mi6-experiments --figure 13              # one figure
//! mi6-experiments --all                    # figures 4..13
//! mi6-experiments --figure 5 --kinsts 500  # shorter runs
//! mi6-experiments --figure 13 --threads 4 --json results.jsonl
//! mi6-experiments --figure 13 --seeds 3    # mean ± min/max over 3 seeds
//! mi6-experiments --figure 13 --warmup 500000 --checkpoint-dir ckpts
//! mi6-experiments --scenario enclave-attacker
//! ```
//!
//! Options: `--figure N` (4..13, repeatable), `--all`, `--kinsts N`
//! (thousands of instructions per run; default 2000), `--timer N`
//! (scheduler tick in cycles; default 250000), `--threads N` (default:
//! all hardware threads), `--json PATH` (append one JSON object per grid
//! point; `-` makes stdout a pure JSONL stream and suppresses the figure
//! tables), `--seeds N` (run every point with N workload seeds and report
//! mean ± min/max), `--warmup N` + `--checkpoint-dir D` (simulate each
//! point's first N cycles once, snapshot into D, and start grid runs from
//! the warmed state — results are bit-identical to cold runs and repeat
//! invocations skip the warm-up), `--fork-base` (warm once per workload
//! on BASE and fork the quiescent state across every variant), and
//! `--scenario enclave-attacker` (the two-core enclave-vs-attacker grid).

use mi6_bench::runner::default_threads;
use mi6_bench::{
    figure_points, mean_results, render_figure, render_seed_spread, run_grid_with, scenario,
    HarnessOpts, PointResult, WarmFork, FIGURES,
};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

struct Cli {
    figures: Vec<u32>,
    opts: HarnessOpts,
    threads: usize,
    json: Option<String>,
    seeds: u64,
    warmup: u64,
    checkpoint_dir: Option<PathBuf>,
    fork_base: bool,
    scenario: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mi6-experiments (--figure N)... | --all | --scenario enclave-attacker \
         [--kinsts N] [--timer N] [--threads N] [--seeds N] [--json PATH|-] \
         [--warmup CYCLES --checkpoint-dir DIR [--fork-base]]"
    );
    exit(2);
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        figures: Vec::new(),
        opts: HarnessOpts::default(),
        threads: default_threads(),
        json: None,
        seeds: 1,
        warmup: 0,
        checkpoint_dir: None,
        fork_base: false,
        scenario: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--figure" => {
                let v = value(&args, i, "--figure");
                let fig: u32 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--figure expects a number, got `{v}`");
                    usage()
                });
                if !FIGURES.contains(&fig) {
                    eprintln!("figure {fig} is not one of {FIGURES:?}");
                    usage();
                }
                cli.figures.push(fig);
                i += 1;
            }
            "--all" => cli.figures.extend(FIGURES),
            "--kinsts" => {
                cli.opts.kinsts = value(&args, i, "--kinsts")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--timer" => {
                cli.opts.timer = value(&args, i, "--timer")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--threads" => {
                cli.threads = value(&args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--seeds" => {
                cli.seeds = value(&args, i, "--seeds")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if cli.seeds == 0 {
                    eprintln!("--seeds must be at least 1");
                    usage();
                }
                i += 1;
            }
            "--warmup" => {
                cli.warmup = value(&args, i, "--warmup")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--checkpoint-dir" => {
                cli.checkpoint_dir = Some(PathBuf::from(value(&args, i, "--checkpoint-dir")));
                i += 1;
            }
            "--fork-base" => cli.fork_base = true,
            "--scenario" => {
                cli.scenario = Some(value(&args, i, "--scenario"));
                i += 1;
            }
            "--json" => {
                cli.json = Some(value(&args, i, "--json"));
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if let Some(name) = &cli.scenario {
        if name != "enclave-attacker" {
            eprintln!("unknown scenario `{name}` (available: enclave-attacker)");
            usage();
        }
        if !cli.figures.is_empty() {
            eprintln!("--scenario and --figure are mutually exclusive");
            usage();
        }
    } else if cli.figures.is_empty() {
        usage();
    }
    if cli.warmup > 0 && cli.checkpoint_dir.is_none() {
        eprintln!("--warmup needs --checkpoint-dir (where warm snapshots are cached)");
        usage();
    }
    if cli.fork_base && cli.warmup == 0 {
        eprintln!("--fork-base needs --warmup (the shared warm-up length)");
        usage();
    }
    cli.figures.sort_unstable();
    cli.figures.dedup();
    cli
}

fn main() {
    let cli = parse_args();
    if cli.scenario.is_some() {
        eprintln!(
            "mi6-experiments: enclave-attacker scenario ({}k instructions)",
            cli.opts.kinsts
        );
        let points = scenario::run_enclave_attacker(&cli.opts, cli.threads);
        scenario::render_enclave_attacker(&points);
        return;
    }
    // `--json -` makes stdout a pure JSONL stream: the figure tables are
    // suppressed so the output stays machine-parseable end to end.
    let json_on_stdout = cli.json.as_deref() == Some("-");
    let mut json: Option<Box<dyn Write>> = cli.json.as_deref().map(|path| -> Box<dyn Write> {
        if path == "-" {
            Box::new(std::io::stdout())
        } else {
            let file = File::options()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    exit(1);
                });
            Box::new(BufWriter::new(file))
        }
    });

    // One deduplicated grid across every requested figure and seed: a
    // BASE pass shared by e.g. figures 5 and 7 runs once per seed.
    let mut unique: BTreeMap<String, usize> = BTreeMap::new();
    let mut points = Vec::new();
    // Per figure: per seed: indices into `points`, in figure_points order.
    let mut fig_indices: Vec<(u32, Vec<Vec<usize>>)> = Vec::new();
    for &fig in &cli.figures {
        let mut per_seed = Vec::with_capacity(cli.seeds as usize);
        for s in 0..cli.seeds {
            let opts = cli.opts.with_seed(cli.opts.seed_at(s));
            let fig_points = figure_points(fig, opts);
            let mut indices = Vec::with_capacity(fig_points.len());
            for p in &fig_points {
                let key = format!(
                    "{}/{}/{}/{}/{:x}",
                    p.variant, p.workload, p.opts.kinsts, p.opts.timer, p.opts.seed
                );
                let idx = *unique.entry(key).or_insert_with(|| {
                    points.push(*p);
                    points.len() - 1
                });
                indices.push(idx);
            }
            per_seed.push(indices);
        }
        fig_indices.push((fig, per_seed));
    }

    let warm = cli
        .checkpoint_dir
        .as_ref()
        .filter(|_| cli.warmup > 0)
        .map(|dir| WarmFork {
            warmup_cycles: cli.warmup,
            dir: dir.clone(),
            fork_base: cli.fork_base,
        });
    eprintln!(
        "mi6-experiments: {} grid points ({} unique, {} seed(s)) on {} threads{}",
        fig_indices
            .iter()
            .map(|(_, per_seed)| per_seed.iter().map(Vec::len).sum::<usize>())
            .sum::<usize>(),
        points.len(),
        cli.seeds,
        cli.threads,
        match &warm {
            Some(w) if w.fork_base => format!(
                ", forking all variants from {}-cycle BASE warm-ups",
                w.warmup_cycles
            ),
            Some(w) => format!(", warm-starting from {}-cycle checkpoints", w.warmup_cycles),
            None => String::new(),
        },
    );
    let t0 = Instant::now();
    let mut done = 0usize;
    let total = points.len();
    let results = run_grid_with(&points, cli.threads, warm.as_ref(), |res| {
        done += 1;
        eprintln!(
            "  [{done}/{total}] {} on {}: {} cycles ({} ms)",
            res.record.name, res.point.variant, res.record.cycles, res.wall_ms,
        );
        if let Some(out) = json.as_mut() {
            writeln!(out, "{}", res.to_json()).expect("json write");
        }
    });
    if let Some(out) = json.as_mut() {
        out.flush().expect("json flush");
    }
    let wall = t0.elapsed();
    // Per-point elapsed times double-count when threads time-slice a
    // core, so this ratio only approximates the parallel speedup on a
    // host with >= `threads` free cores; compare wall clock between
    // `--threads 1` and `--threads N` runs for an honest number.
    let sim_ms: u64 = results.iter().map(|r| r.wall_ms).sum();
    if total > 0 {
        eprintln!(
            "grid done in {:.1}s wall ({:.1}s summed over points, ~{:.2}x parallelism)",
            wall.as_secs_f64(),
            sim_ms as f64 / 1e3,
            sim_ms as f64 / 1e3 / wall.as_secs_f64().max(1e-9),
        );
    }

    if json_on_stdout {
        eprintln!(
            "figure tables suppressed: stdout is the JSON stream (use --json FILE to get both)"
        );
        return;
    }
    for (fig, per_seed_idx) in fig_indices {
        let per_seed: Vec<Vec<PointResult>> = per_seed_idx
            .iter()
            .map(|indices| indices.iter().map(|&i| results[i].clone()).collect())
            .collect();
        if per_seed.len() == 1 || per_seed[0].is_empty() {
            render_figure(fig, &per_seed[0]);
        } else {
            render_figure(fig, &mean_results(&per_seed));
            render_seed_spread(fig, &per_seed);
        }
    }
}
