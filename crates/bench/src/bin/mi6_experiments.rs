//! `mi6-experiments` — the one CLI behind every evaluation figure.
//!
//! Replaces the ten per-figure binaries: each figure is a declarative
//! variant×workload grid (see `mi6_bench::figures`) whose points run on
//! the `mi6-grid` work-stealing scheduler, stream JSON as they finish,
//! and render the same tables the old binaries printed.
//!
//! ```text
//! mi6-experiments --figure 13              # one figure
//! mi6-experiments --all                    # figures 4..13
//! mi6-experiments --figure 5 --kinsts 500  # shorter runs
//! mi6-experiments --figure 13 --threads 4 --json results.jsonl
//! mi6-experiments --figure 13 --seeds 3    # mean ± 95% CI over 3 seeds
//! mi6-experiments --figure 13 --warmup 500000 --checkpoint-dir ckpts
//! mi6-experiments --scenario enclave-attacker
//!
//! # Sharded: three hosts, no coordination — each runs its own shard ...
//! mi6-experiments --all --shard 0/3 --out shards/     # host A
//! mi6-experiments --all --shard 1/3 --out shards/     # host B
//! mi6-experiments --all --shard 2/3 --out shards/     # host C
//! # ... then anyone with all the shard files renders the figures:
//! mi6-experiments merge --out shards/ --all
//! ```
//!
//! Options: `--figure N` (4..13, repeatable), `--all`, `--kinsts N`
//! (thousands of instructions per run; default 2000), `--timer N`
//! (scheduler tick in cycles; default 250000), `--threads N` (default:
//! all hardware threads), `--workload NAME` (repeatable; restrict or
//! extend the workload set — `enclave-ws` runs the adversarial chase in
//! a plain grid), `--json PATH` (append one JSON object per grid point;
//! `-` makes stdout a pure JSONL stream and suppresses the figure
//! tables), `--seeds N` (run every point with N workload seeds and
//! report means with 95% Student-t confidence intervals), `--warmup N` +
//! `--checkpoint-dir D` (simulate each point's first N cycles once,
//! snapshot into D, and start grid runs from the warmed state — results
//! are bit-identical to cold runs and repeat invocations skip the
//! warm-up), `--fork-base` (warm once per workload on BASE and fork the
//! quiescent state across every variant; without `--checkpoint-dir`,
//! warm states live in an in-memory snapshot pool for the life of the
//! invocation instead of on disk), `--mux M` (admit up to M in-flight
//! machines per worker thread and time-slice between them — results
//! stay byte-identical to `--mux 1`), `--scenario enclave-attacker`
//! (the two-core enclave-vs-attacker grid), `--metrics-every N` +
//! `--out DIR` (sample the microarchitectural metrics registry every N
//! cycles into one JSONL artifact per grid/scenario point under DIR —
//! journal lines record the artifact path, and the scenario prints a
//! victim-vs-attacker occupancy timeline from them), and the sharding
//! surface:
//!
//! - `--shard i/N --out DIR` — run only the points the deterministic
//!   planner assigns to shard `i` of `N`, journaling each completed
//!   point to `DIR/shard-i-of-N.jsonl`. Restarting the same command
//!   resumes from the journal (finished points are never recomputed).
//! - `--deadline SECS` — stop claiming new points and cancel in-flight
//!   simulations once the wall-clock budget expires (exit code 3; the
//!   journal resumes the rest later). Interrupted points journal a
//!   `"partial":true` progress line; merge skips those and reports how
//!   many it saw.
//! - `--batch N` — points claimed per scheduler queue visit (default:
//!   auto; batches amortize synchronization over many short runs).
//! - `merge --out DIR` + the same grid flags — validate that the shard
//!   files cover the requested grid exactly (missing or duplicated
//!   points are hard errors) and render the figures, byte-identical to
//!   an unsharded run.
//! - `merge --out DIR --balance` — the shard-balance report: per-worker
//!   `wall_ms` totals from the journals (seed-aggregated sentinel points
//!   excluded) plus the busiest worker's skew over the mean. Needs no
//!   grid flags and no full coverage, so it works mid-campaign; combine
//!   with grid flags to also render the figures.

use mi6_bench::runner::default_threads;
use mi6_bench::sharding::{balance_report, load_shard_dir, merge_shards, open_shard_journal};
use mi6_bench::{plan_grid, scenario, GridMetrics, GridSchedule, HarnessOpts, WarmFork, FIGURES};
use mi6_grid::{ResultCache, ShardSpec};
use mi6_soc::SnapshotPool;
use mi6_workloads::Workload;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Cli {
    figures: Vec<u32>,
    opts: HarnessOpts,
    threads: usize,
    mux: usize,
    json: Option<String>,
    seeds: u64,
    warmup: u64,
    checkpoint_dir: Option<PathBuf>,
    fork_base: bool,
    scenario: Option<String>,
    workloads: Vec<Workload>,
    shard: Option<ShardSpec>,
    out: Option<PathBuf>,
    deadline_secs: Option<u64>,
    batch: usize,
    balance: bool,
    metrics_every: u64,
    stacks: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mi6-experiments (--figure N)... | --all | --scenario enclave-attacker \
         [--kinsts N] [--timer N] [--threads N] [--mux M] [--seeds N] [--workload NAME]... \
         [--json PATH|-] [--stacks PATH] [--metrics-every CYCLES --out DIR] \
         [--warmup CYCLES [--checkpoint-dir DIR] [--fork-base]] \
         [--shard i/N --out DIR] [--deadline SECS] [--batch N]\n\
         \x20      mi6-experiments merge --out DIR (((--figure N)... | --all) \
         [--kinsts N] [--timer N] [--seeds N] [--workload NAME]... | --balance)"
    );
    exit(2);
}

fn parse_args(args: &[String], merge: bool) -> Cli {
    // Merge re-derives the expected grid from flags; anything that only
    // shapes *how* a run executes would be silently meaningless there,
    // so reject it loudly rather than ignore it.
    const RUN_ONLY: [&str; 12] = [
        "--mux",
        "--json",
        "--stacks",
        "--threads",
        "--deadline",
        "--batch",
        "--shard",
        "--scenario",
        "--warmup",
        "--checkpoint-dir",
        "--fork-base",
        "--metrics-every",
    ];
    let mut cli = Cli {
        figures: Vec::new(),
        opts: HarnessOpts::default(),
        threads: default_threads(),
        mux: 1,
        json: None,
        seeds: 1,
        warmup: 0,
        checkpoint_dir: None,
        fork_base: false,
        scenario: None,
        workloads: Vec::new(),
        shard: None,
        out: None,
        deadline_secs: None,
        batch: 0,
        balance: false,
        metrics_every: 0,
        stacks: None,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i + 1)
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
            .clone()
    };
    while i < args.len() {
        if merge && RUN_ONLY.contains(&args[i].as_str()) {
            eprintln!(
                "`{}` applies to runs, not merge (merge takes --out plus the grid-shape \
                 flags: --figure/--all, --kinsts, --timer, --seeds, --workload)",
                args[i]
            );
            usage();
        }
        match args[i].as_str() {
            "--figure" => {
                let v = value(args, i, "--figure");
                let fig: u32 = v.parse().unwrap_or_else(|_| {
                    eprintln!("--figure expects a number, got `{v}`");
                    usage()
                });
                if !FIGURES.contains(&fig) {
                    eprintln!("figure {fig} is not one of {FIGURES:?}");
                    usage();
                }
                cli.figures.push(fig);
                i += 1;
            }
            "--all" => cli.figures.extend(FIGURES),
            "--kinsts" => {
                cli.opts.kinsts = value(args, i, "--kinsts")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--timer" => {
                cli.opts.timer = value(args, i, "--timer")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--threads" => {
                cli.threads = value(args, i, "--threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--mux" => {
                cli.mux = value(args, i, "--mux").parse().unwrap_or_else(|_| usage());
                if cli.mux == 0 {
                    eprintln!("--mux must be at least 1 machine per worker");
                    usage();
                }
                i += 1;
            }
            "--seeds" => {
                cli.seeds = value(args, i, "--seeds")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if cli.seeds == 0 {
                    eprintln!("--seeds must be at least 1");
                    usage();
                }
                i += 1;
            }
            "--workload" => {
                let v = value(args, i, "--workload");
                let w = Workload::from_name(&v).unwrap_or_else(|| {
                    let names: Vec<&str> = Workload::WITH_ADVERSARIAL
                        .iter()
                        .map(|w| w.name())
                        .collect();
                    eprintln!("unknown workload `{v}` (available: {})", names.join(", "));
                    usage()
                });
                if !cli.workloads.contains(&w) {
                    cli.workloads.push(w);
                }
                i += 1;
            }
            "--warmup" => {
                cli.warmup = value(args, i, "--warmup")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--checkpoint-dir" => {
                cli.checkpoint_dir = Some(PathBuf::from(value(args, i, "--checkpoint-dir")));
                i += 1;
            }
            "--fork-base" => cli.fork_base = true,
            "--scenario" => {
                cli.scenario = Some(value(args, i, "--scenario"));
                i += 1;
            }
            "--json" => {
                cli.json = Some(value(args, i, "--json"));
                i += 1;
            }
            "--stacks" => {
                cli.stacks = Some(PathBuf::from(value(args, i, "--stacks")));
                i += 1;
            }
            "--shard" => {
                let v = value(args, i, "--shard");
                cli.shard = Some(v.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                }));
                i += 1;
            }
            "--out" => {
                cli.out = Some(PathBuf::from(value(args, i, "--out")));
                i += 1;
            }
            "--deadline" => {
                cli.deadline_secs =
                    Some(value(args, i, "--deadline").parse().unwrap_or_else(|_| {
                        eprintln!("--deadline expects whole seconds");
                        usage()
                    }));
                i += 1;
            }
            "--batch" => {
                cli.batch = value(args, i, "--batch")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 1;
            }
            "--metrics-every" => {
                cli.metrics_every = value(args, i, "--metrics-every")
                    .parse()
                    .unwrap_or_else(|_| usage());
                if cli.metrics_every == 0 {
                    eprintln!("--metrics-every must be at least 1 cycle");
                    usage();
                }
                i += 1;
            }
            "--balance" => {
                if !merge {
                    eprintln!("--balance applies to merge (per-worker wall-time accounting)");
                    usage();
                }
                cli.balance = true;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
        i += 1;
    }
    if let Some(name) = &cli.scenario {
        if name != "enclave-attacker" {
            eprintln!("unknown scenario `{name}` (available: enclave-attacker)");
            usage();
        }
        if !cli.figures.is_empty() || cli.shard.is_some() {
            eprintln!("--scenario excludes --figure and --shard");
            usage();
        }
    } else if cli.figures.is_empty() && !cli.balance {
        usage();
    }
    if cli.fork_base && cli.warmup == 0 {
        eprintln!("--fork-base needs --warmup (the shared warm-up length)");
        usage();
    }
    if cli.shard.is_some() && cli.out.is_none() {
        eprintln!("--shard needs --out (the shard journal directory)");
        usage();
    }
    if cli.metrics_every > 0 && cli.out.is_none() {
        eprintln!("--metrics-every needs --out (where per-point metrics JSONL artifacts land)");
        usage();
    }
    if cli.workloads.is_empty() {
        cli.workloads = Workload::ALL.to_vec();
    }
    cli.figures.sort_unstable();
    cli.figures.dedup();
    cli
}

/// Writes a CPI-stacks JSONL artifact, refusing to emit anything the
/// schema checker would reject (the same gate CI applies downstream).
fn write_stacks(path: &PathBuf, doc: &str) {
    if let Err(e) = mi6_obs::check_stacks_str(doc) {
        eprintln!("refusing to write invalid stacks artifact: {e}");
        exit(1);
    }
    std::fs::write(path, doc).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", path.display());
        exit(1);
    });
    eprintln!("mi6-experiments: wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("merge") {
        merge_main(&args[1..]);
    } else {
        run_main(&args);
    }
}

/// `merge`: validate shard coverage and render figures from journals.
fn merge_main(args: &[String]) {
    let cli = parse_args(args, true);
    let Some(dir) = &cli.out else {
        eprintln!("merge needs --out (the shard journal directory)");
        usage();
    };
    let loaded = load_shard_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot read shard dir {}: {e}", dir.display());
        exit(1);
    });
    if loaded.files == 0 {
        eprintln!("no *.jsonl shard files in {}", dir.display());
        exit(1);
    }
    if loaded.skipped_lines > 0 {
        eprintln!(
            "warning: skipped {} unparseable journal line(s) (torn by a killed shard?)",
            loaded.skipped_lines
        );
    }
    if loaded.partial_lines > 0 {
        eprintln!(
            "{} partial-progress line(s) skipped (deadline-interrupted points; \
             resume their shards to finish them)",
            loaded.partial_lines
        );
    }
    if cli.balance {
        // The balance report reads every journaled point as-is: it does
        // not need (or check) grid coverage, so it works mid-campaign
        // while shards are still running.
        print!("{}", balance_report(&loaded));
        if cli.figures.is_empty() {
            return;
        }
    }
    let plan = plan_grid(&cli.figures, cli.opts, cli.seeds, &cli.workloads);
    match merge_shards(&plan, &loaded) {
        Err(err) => {
            eprintln!(
                "cannot merge the requested grid:\n{err}\
                 run the missing shard(s) to completion (the journal resumes them), \
                 or delete stray journals, then re-merge"
            );
            exit(1);
        }
        Ok((results, cov)) => {
            eprintln!(
                "merge: {} file(s), {} point(s) covering the grid exactly{}",
                loaded.files,
                plan.points.len(),
                if cov.extra.is_empty() {
                    String::new()
                } else {
                    format!(
                        " ({} extra point(s) outside this grid ignored)",
                        cov.extra.len()
                    )
                }
            );
            print!("{}", plan.render(&results));
            print!("{}", mi6_bench::render_cpi_decomposition(&results));
        }
    }
}

/// Plain and sharded grid runs (plus the scenario path).
fn run_main(args: &[String]) {
    let cli = parse_args(args, false);
    if cli.scenario.is_some() {
        eprintln!(
            "mi6-experiments: enclave-attacker scenario ({}k instructions)",
            cli.opts.kinsts
        );
        let obs = (cli.metrics_every > 0).then(|| scenario::ScenarioObs {
            dir: cli.out.clone().expect("validated in parse_args"),
            every: cli.metrics_every,
        });
        let points = scenario::run_enclave_attacker(&cli.opts, cli.threads, obs.as_ref());
        scenario::render_enclave_attacker(&points);
        // Always-on CPI accounting: show where the victim's cycles went
        // per variant and colocation mode.
        print!("{}", scenario::render_enclave_cpi(&points));
        if let Some(path) = &cli.stacks {
            let doc: String = points.iter().map(|p| p.stacks_row() + "\n").collect();
            write_stacks(path, &doc);
        }
        // With metrics on, follow the summary table with the time-series
        // view the artifacts exist for: per-bucket MSHR occupancy and
        // arbiter grants for victim vs attacker.
        if obs.is_some() {
            print!("{}", scenario::render_occupancy_timeline(&points));
        }
        if let Some(path) = cli.json.as_deref() {
            let mut out: Box<dyn Write> = if path == "-" {
                Box::new(std::io::stdout())
            } else {
                let file = File::options()
                    .create(true)
                    .append(true)
                    .open(path)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open {path}: {e}");
                        exit(1);
                    });
                Box::new(BufWriter::new(file))
            };
            for p in &points {
                writeln!(out, "{}", p.to_json()).expect("json write");
            }
            out.flush().expect("json flush");
        }
        return;
    }
    // `--json -` makes stdout a pure JSONL stream: the figure tables are
    // suppressed so the output stays machine-parseable end to end.
    let json_on_stdout = cli.json.as_deref() == Some("-");
    let mut json: Option<Box<dyn Write>> = cli.json.as_deref().map(|path| -> Box<dyn Write> {
        if path == "-" {
            Box::new(std::io::stdout())
        } else {
            let file = File::options()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| {
                    eprintln!("cannot open {path}: {e}");
                    exit(1);
                });
            Box::new(BufWriter::new(file))
        }
    });

    let plan = plan_grid(&cli.figures, cli.opts, cli.seeds, &cli.workloads);
    let warm = (cli.warmup > 0).then(|| WarmFork {
        warmup_cycles: cli.warmup,
        dir: cli.checkpoint_dir.clone(),
        fork_base: cli.fork_base,
    });
    let deadline = cli
        .deadline_secs
        .map(|s| Instant::now() + Duration::from_secs(s));

    // A shard run journals completions; a plain run renders tables.
    let (points, mut journal) = match cli.shard {
        None => (plan.points.clone(), None),
        Some(spec) => {
            let dir = cli.out.as_ref().expect("validated in parse_args");
            let sj = open_shard_journal(dir, spec).unwrap_or_else(|e| {
                eprintln!("cannot open shard journal in {}: {e}", dir.display());
                exit(1);
            });
            if sj.torn_tail {
                eprintln!(
                    "  journal had a torn trailing line (killed mid-write); recomputing that point"
                );
            }
            if sj.bad_lines > 0 {
                eprintln!(
                    "  warning: {} unparseable journal line(s) ignored",
                    sj.bad_lines
                );
            }
            if sj.partial_lines > 0 {
                eprintln!(
                    "  {} partial-progress line(s) from an interrupted run; recomputing those points",
                    sj.partial_lines
                );
            }
            let owned = plan.shard_points(spec);
            let todo: Vec<_> = owned
                .iter()
                .filter(|p| !sj.done.contains_key(&p.key()))
                .copied()
                .collect();
            eprintln!(
                "mi6-experiments: shard {spec} owns {} of {} unique points; {} journaled, {} to run",
                owned.len(),
                plan.points.len(),
                owned.len() - todo.len(),
                todo.len(),
            );
            (todo, Some(sj.journal))
        }
    };

    eprintln!(
        "mi6-experiments: {} grid points ({} unique, {} seed(s)) on {} threads{}{}{}",
        plan.gross_points(),
        plan.points.len(),
        cli.seeds,
        cli.threads,
        if cli.mux > 1 {
            format!(" (mux {} machines/worker)", cli.mux)
        } else {
            String::new()
        },
        match &warm {
            Some(w) if w.fork_base => format!(
                ", forking all variants from {}-cycle BASE warm-ups",
                w.warmup_cycles
            ),
            Some(w) => format!(", warm-starting from {}-cycle checkpoints", w.warmup_cycles),
            None => String::new(),
        },
        match cli.deadline_secs {
            Some(s) => format!(", deadline {s}s"),
            None => String::new(),
        },
    );
    let t0 = Instant::now();
    let mut done = 0usize;
    let total = points.len();
    let schedule = GridSchedule {
        threads: cli.threads,
        batch: cli.batch,
        warm: warm.as_ref(),
        deadline,
        metrics: (cli.metrics_every > 0).then(|| GridMetrics {
            every: cli.metrics_every,
            dir: cli
                .out
                .clone()
                .expect("validated in parse_args")
                .join("metrics"),
        }),
        mux: cli.mux,
        slice: 0, // auto (SLICE_CYCLES)
        pool: Some(Arc::new(SnapshotPool::new())),
        cache: Some(Arc::new(ResultCache::new())),
        warm_from_disk: false,
    };
    let mut stack_rows: Vec<String> = Vec::new();
    let outcome = mi6_bench::run_grid_scheduled(&points, &schedule, |res| {
        done += 1;
        if cli.stacks.is_some() {
            stack_rows.push(mi6_obs::stacks_row(
                res.record.name,
                res.point.variant.name(),
                0,
                res.record.cpi.cycles,
                res.record.commit_width,
                &res.record.cpi.slots,
            ));
        }
        eprintln!(
            "  [{done}/{total}] {} on {}: {} cycles ({} ms, worker {})",
            res.record.name, res.point.variant, res.record.cycles, res.wall_ms, res.worker,
        );
        if let Some(j) = journal.as_mut() {
            j.append(&res.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot append to shard journal: {e}");
                exit(1);
            });
        }
        if let Some(out) = json.as_mut() {
            writeln!(out, "{}", res.to_json()).expect("json write");
        }
    });
    if let Some(out) = json.as_mut() {
        out.flush().expect("json flush");
    }
    // Deadline-interrupted points leave a `"partial":true` progress line
    // in the shard journal: merge skips them, resume recomputes them,
    // and campaign tooling can see how far each one got.
    if !outcome.partials.is_empty() {
        if let Some(j) = journal.as_mut() {
            for p in &outcome.partials {
                j.append(&p.to_json()).unwrap_or_else(|e| {
                    eprintln!("cannot append to shard journal: {e}");
                    exit(1);
                });
            }
        }
        eprintln!(
            "  {} interrupted point(s) recorded partial progress",
            outcome.partials.len()
        );
    }
    if let Some(path) = &cli.stacks {
        // Completed points only; a deadline-cancelled point has no stack.
        let doc: String = stack_rows.iter().map(|r| r.clone() + "\n").collect();
        if doc.is_empty() {
            eprintln!("no completed points; skipping stacks artifact");
        } else {
            write_stacks(path, &doc);
        }
    }
    let wall = t0.elapsed();
    // Per-point elapsed times double-count when threads time-slice a
    // core, so this ratio only approximates the parallel speedup on a
    // host with >= `threads` free cores; compare wall clock between
    // `--threads 1` and `--threads N` runs for an honest number.
    let sim_ms: u64 = outcome.results.iter().flatten().map(|r| r.wall_ms).sum();
    if total > 0 {
        eprintln!(
            "grid done in {:.1}s wall ({:.1}s summed over points, ~{:.2}x parallelism)",
            wall.as_secs_f64(),
            sim_ms as f64 / 1e3,
            sim_ms as f64 / 1e3 / wall.as_secs_f64().max(1e-9),
        );
    }

    if let Some(spec) = cli.shard {
        let journal_path = cli
            .out
            .as_ref()
            .expect("validated in parse_args")
            .join(spec.file_name());
        if outcome.cancelled > 0 {
            eprintln!(
                "shard {spec} incomplete: {} point(s) remain (deadline). \
                 Rerun the same command to resume from {}",
                outcome.cancelled,
                journal_path.display()
            );
            exit(3);
        }
        eprintln!(
            "shard {spec} complete: journal {} covers all its points; \
             merge with `mi6-experiments merge --out DIR <same grid flags>`",
            journal_path.display()
        );
        return;
    }
    if outcome.cancelled > 0 {
        eprintln!(
            "grid incomplete: {} point(s) cancelled by the deadline; \
             no tables rendered (use --shard/--out for resumable runs)",
            outcome.cancelled
        );
        exit(3);
    }
    if json_on_stdout {
        eprintln!(
            "figure tables suppressed: stdout is the JSON stream (use --json FILE to get both)"
        );
        return;
    }
    let results: Vec<_> = outcome
        .results
        .into_iter()
        .map(|r| r.expect("no cancellations"))
        .collect();
    print!("{}", plan.render(&results));
    print!("{}", mi6_bench::render_cpi_decomposition(&results));
}
