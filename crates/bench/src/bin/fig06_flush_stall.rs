//! Figure 6: stall time waiting for flushes, as % of execution time.
//! Paper: average 0.4 %, max 3.2 % (xalancbmk, syscall-heavy).

use mi6_bench::{mean, run_all, HarnessOpts};
use mi6_soc::Variant;

fn main() {
    let opts = HarnessOpts::from_args();
    let flush = run_all(Variant::Flush, &opts);
    println!("\n=== Figure 6: flush stall time (% of execution) ===");
    println!("{:<12} {:>12} {:>10}", "benchmark", "stall cycles", "stall %");
    for r in &flush {
        println!("{:<12} {:>12} {:>9.2}%", r.name, r.flush_stall_cycles, r.flush_stall_pct());
    }
    println!(
        "{:<12} {:>12} {:>9.2}%   (paper avg 0.4%, max xalancbmk 3.2%)",
        "average",
        "",
        mean(flush.iter().map(|r| r.flush_stall_pct()))
    );
}
