//! `mi6-bench` — the simulator hot-loop microbenchmark.
//!
//! Runs store- and load-heavy kernels for a fixed instruction budget and
//! reports *simulated cycles per wall-clock second* — the number the LSQ
//! index refactor (and any future hot-loop work) is measured by. The
//! kernels deliberately keep their working sets cache-resident so the
//! simulated core's LQ/SQ stay full of short-latency memory ops: that is
//! the regime where per-op-per-cycle ROB scans dominate the host profile.
//!
//! ```text
//! mi6-bench                      # all kernels, default budget
//! mi6-bench --kinsts 500         # longer runs (kilo-instructions)
//! mi6-bench --kernel store-heavy # one kernel
//! mi6-bench --reps 5             # best-of-5 wall-clock timing
//! mi6-bench --json BENCH_hotloop.json   # also write machine-readable results
//! mi6-bench --compare BENCH_hotloop.json # non-gating warn on regression
//! mi6-bench --compare BENCH_hotloop.json --compare-threshold 10  # tighter gate
//! mi6-bench --kernel mixed --trace pipeview.txt  # Konata/O3PipeView trace
//! mi6-bench --profile            # per-stage lap breakdown (needs the
//!                                # `lap-profile` feature compiled in)
//! mi6-bench --mux 8              # multiplexed-grid throughput: aggregate
//!                                # Mcycles/s at 8 machines per worker vs
//!                                # serial, plus warm-restore pool-vs-disk
//! ```
//!
//! Each kernel prints one line, e.g.
//! `store-heavy   1234567 cycles  0.41 s  3.0 Mcycles/s  (best of 3)`;
//! the figure to track across commits is the `Mcycles/s` column
//! (EXPERIMENTS.md records the before/after of each optimisation, and CI
//! runs this binary non-gating so the trajectory stays visible).

use mi6_bench::runner::default_threads;
use mi6_bench::{GridPoint, GridSchedule, HarnessOpts, WarmFork, SLICE_CYCLES};
use mi6_soc::{SimBuilder, SnapshotPool, Variant};
use mi6_workloads::{generate, BranchStyle, Profile, Workload, WorkloadParams};
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

/// The measurement kernels. All working sets fit the 1 MiB LLC (and
/// mostly the 32 KiB L1D), so memory ops complete quickly and the
/// load/store queues stay saturated — maximum pressure on the LSQ
/// bookkeeping rather than on the DRAM model.
fn kernels() -> Vec<(&'static str, Profile)> {
    let quiet = Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 0,
        chase_nodes_per_iter: 0,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 2,
        branch_style: BranchStyle::Easy,
        ilp_ops: 2,
        muldiv_ops: 0,
        syscall_every: 0,
    };
    vec![
        // Random loads *and stores* into an L1-resident working set: every
        // odd access site is a store, so the SQ churns and every load's
        // forwarding/blocking checks run against a full store queue.
        (
            "store-heavy",
            Profile {
                ws_bytes: 16 << 10,
                ws_accesses_per_iter: 24,
                ..quiet
            },
        ),
        // Streaming plus an LLC-resident pointer chase: a load-dominated
        // mix that keeps the LQ full (the violation-scan victim).
        (
            "load-heavy",
            Profile {
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 4,
                chase_bytes: 128 << 10,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
        // A gcc-shaped blend (large working set, mixed branches): closer
        // to what the figure grids actually simulate.
        (
            "mixed",
            Profile {
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 8,
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 2,
                branch_sites: 32,
                branch_style: BranchStyle::Medium,
                ilp_ops: 4,
                ..quiet
            },
        ),
        // A dependent pointer chase through a 4 MiB arena — 4x the LLC,
        // so nearly every node misses to DRAM and the machine is provably
        // inert for most of each miss. This is the regime the event-driven
        // idle-skip targets: simulated cycles/sec here tracks how well the
        // clock fast-forwards, not how fast a busy tick is.
        (
            "miss-heavy",
            Profile {
                chase_bytes: 4 << 20,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage: mi6-bench [--kinsts N] [--reps N] [--kernel NAME]... [--json PATH] \
         [--stacks PATH] [--profile] [--compare BASELINE [--compare-threshold PCT]] \
         [--trace PATH [--trace-limit OPS]] [--mux M]"
    );
    exit(2);
}

/// What `--mux M` measures: the multiplexed machine driver's aggregate
/// throughput and the warm-snapshot pool's edge over on-disk restores.
struct MuxBench {
    threads: usize,
    mux: usize,
    points: usize,
    serial_wall_s: f64,
    mux_wall_s: f64,
    serial_cps: f64,
    mux_cps: f64,
    pool_warm_wall_s: f64,
    disk_warm_wall_s: f64,
}

/// Runs a small miss-heavy grid (BASE/FPMA/ARB × mcf/sjeng) four ways:
/// cold serial, cold multiplexed (`mux` machines per worker on short
/// slices), fork-base warmed from the in-memory [`SnapshotPool`], and
/// fork-base warmed from on-disk snapshot files. The first pair is the
/// driver's aggregate-throughput number; the second pair shows what
/// serving restores from memory instead of the filesystem buys.
fn run_mux_bench(kinsts: u64, mux: usize) -> MuxBench {
    let threads = default_threads().clamp(1, 4);
    let opts = HarnessOpts::default().with_kinsts(kinsts).with_timer(0);
    let points: Vec<GridPoint> = [Variant::Base, Variant::Fpma, Variant::Arb]
        .into_iter()
        .flat_map(|variant| {
            [Workload::Mcf, Workload::Sjeng]
                .into_iter()
                .map(move |workload| GridPoint {
                    variant,
                    workload,
                    opts,
                })
        })
        .collect();
    // Short slices so every point is forced through several park/resume
    // round-trips — the regime the driver exists for; a warm-up short
    // enough that even tiny --kinsts runs survive it.
    let slice = (kinsts.saturating_mul(1000) / 4).clamp(20_000, SLICE_CYCLES);
    let warmup = (kinsts.saturating_mul(1000) / 4).clamp(1_000, 100_000);
    let run = |schedule: &GridSchedule| -> (f64, u64) {
        let t0 = Instant::now();
        let out = mi6_bench::run_grid_scheduled(&points, schedule, |_| {});
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(out.completed, points.len(), "mux bench grid must complete");
        let cycles: u64 = out.results.iter().flatten().map(|r| r.record.cycles).sum();
        (wall, cycles)
    };
    let serial = run(&GridSchedule::new(threads));
    let mut multiplexed_schedule = GridSchedule::new(threads);
    multiplexed_schedule.mux = mux;
    multiplexed_schedule.slice = slice;
    let multiplexed = run(&multiplexed_schedule);
    // Pool-vs-disk: identical fork-base warm phases, differing only in
    // where the snapshot lives when the measurement runs restore it.
    let pool_warm = WarmFork {
        warmup_cycles: warmup,
        dir: None,
        fork_base: true,
    };
    let mut pool_schedule = GridSchedule::new(threads);
    pool_schedule.mux = mux;
    pool_schedule.slice = slice;
    pool_schedule.warm = Some(&pool_warm);
    pool_schedule.pool = Some(Arc::new(SnapshotPool::new()));
    let (pool_wall, _) = run(&pool_schedule);
    let dir = std::env::temp_dir().join(format!("mi6-muxbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_warm = WarmFork {
        warmup_cycles: warmup,
        dir: Some(dir.clone()),
        fork_base: true,
    };
    let mut disk_schedule = GridSchedule::new(threads);
    disk_schedule.mux = mux;
    disk_schedule.slice = slice;
    disk_schedule.warm = Some(&disk_warm);
    disk_schedule.warm_from_disk = true;
    let (disk_wall, _) = run(&disk_schedule);
    let _ = std::fs::remove_dir_all(&dir);
    MuxBench {
        threads,
        mux,
        points: points.len(),
        serial_wall_s: serial.0,
        mux_wall_s: multiplexed.0,
        serial_cps: serial.1 as f64 / serial.0.max(1e-9),
        mux_cps: multiplexed.1 as f64 / multiplexed.0.max(1e-9),
        pool_warm_wall_s: pool_wall,
        disk_warm_wall_s: disk_wall,
    }
}

/// Pulls `"cycles_per_sec":<f64>` for one kernel out of a baseline JSON
/// written by `--json` (hand-rolled: the workspace carries no JSON
/// dependency, and the shape is our own append-only format).
fn baseline_cps(doc: &str, kernel: &str) -> Option<f64> {
    let at = doc.find(&format!("\"name\":\"{kernel}\""))?;
    let rest = &doc[at..];
    let rest = &rest[rest.find("\"cycles_per_sec\":")? + "\"cycles_per_sec\":".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kinsts: u64 = 300;
    let mut reps: u32 = 3;
    let mut only: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut stacks_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut compare_threshold: f64 = 20.0;
    let mut trace_path: Option<String> = None;
    let mut trace_limit: u64 = 0;
    let mut profile = false;
    let mut mux: usize = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match arg.as_str() {
            "--kinsts" => kinsts = val().parse().unwrap_or_else(|_| usage()),
            "--reps" => reps = val().parse().unwrap_or_else(|_| usage()),
            "--kernel" => only.push(val()),
            "--json" => json_path = Some(val()),
            "--stacks" => stacks_path = Some(val()),
            "--compare" => compare_path = Some(val()),
            "--compare-threshold" => {
                compare_threshold = val().parse().unwrap_or_else(|_| usage());
                if !(compare_threshold > 0.0 && compare_threshold < 100.0) {
                    eprintln!("mi6-bench: --compare-threshold wants a percentage in (0, 100)");
                    exit(2);
                }
            }
            "--trace" => trace_path = Some(val()),
            "--trace-limit" => trace_limit = val().parse().unwrap_or_else(|_| usage()),
            "--profile" => profile = true,
            "--mux" => {
                mux = val().parse().unwrap_or_else(|_| usage());
                if mux < 2 {
                    eprintln!("mi6-bench: --mux wants at least 2 machines per worker");
                    exit(2);
                }
            }
            _ => usage(),
        }
    }
    if reps == 0 {
        usage();
    }
    if trace_path.is_some() {
        // A trace interleaves every core's lifecycle records into one
        // file, and its I/O sits inside the timed region — so scope a
        // traced run to a single kernel and keep it out of perf gating.
        if only.len() != 1 {
            eprintln!("mi6-bench: --trace wants exactly one --kernel (one trace file per run)");
            exit(2);
        }
        if compare_path.is_some() {
            eprintln!("mi6-bench: --trace wall times include trace I/O; refusing --compare");
            exit(2);
        }
    }
    if profile && !mi6_core::LAP_COMPILED {
        // Zeros masquerading as a breakdown would be worse than an error.
        eprintln!(
            "mi6-bench: --profile needs the lap timers compiled in; rebuild with\n  \
             cargo run --release -p mi6-bench --features lap-profile --bin mi6-bench -- --profile"
        );
        exit(2);
    }
    if profile && compare_path.is_some() {
        eprintln!("mi6-bench: --profile wall times include timer overhead; refusing --compare");
        exit(2);
    }
    let kernels = kernels();
    for k in &only {
        if !kernels.iter().any(|(name, _)| name == k) {
            // A typo'd --kernel must not let a CI perf job "pass" while
            // measuring nothing.
            eprintln!("mi6-bench: unknown kernel `{k}`");
            let names: Vec<&str> = kernels.iter().map(|(n, _)| *n).collect();
            eprintln!("known kernels: {}", names.join(", "));
            exit(2);
        }
    }
    let params = WorkloadParams::evaluation().with_target_kinsts(kinsts);
    println!("mi6-bench: {kinsts}k instructions per kernel, best of {reps} rep(s), variant BASE");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>12} {:>10} {:>7} {:>6}  top stack",
        "kernel", "cycles", "insts", "wall s", "Mcycles/s", "Minst/s", "skip %", "CPI"
    );
    struct Row {
        name: &'static str,
        cycles: u64,
        insts: u64,
        secs: f64,
        ticked: u64,
        skipped: u64,
        lap: mi6_core::LapProfile,
        cpi: mi6_core::CpiStack,
        width: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (name, kernel_profile) in kernels {
        if !only.is_empty() && !only.iter().any(|k| k == name) {
            continue;
        }
        let program = generate(name, &kernel_profile, &params);
        let mut best: Option<(f64, u64, u64)> = None; // (secs, cycles, insts)
        let mut best_lap = mi6_core::LapProfile::default();
        let mut best_ticked = 0u64;
        let mut best_cpi = mi6_core::CpiStack::default();
        let mut best_width = 1u64;
        for _ in 0..reps {
            let mut builder = SimBuilder::new(Variant::Base).without_timer();
            if let Some(path) = &trace_path {
                // Every rep simulates the same deterministic run, so each
                // rewrite of the trace file produces identical bytes.
                builder = builder.trace_path(path).trace_limit(trace_limit);
            }
            let mut machine = builder.build().expect("BASE builds");
            machine
                .load_user_program(0, &program)
                .unwrap_or_else(|e| panic!("loading {name}: {e}"));
            let t0 = Instant::now();
            let stats = machine
                .run_to_completion(mi6_workloads::budget::cycle_cap(kinsts))
                .unwrap_or_else(|e| panic!("running {name}: {e}"));
            let secs = t0.elapsed().as_secs_f64();
            if best.is_none_or(|b| secs < b.0) {
                best = Some((secs, stats.cycles, stats.core[0].committed_instructions));
                best_lap = machine.core(0).lap;
                best_ticked = machine.ticks();
                best_cpi = machine.core(0).cpi.clone();
                best_width = machine.core(0).config().commit_width as u64;
            }
        }
        let (secs, cycles, insts) = best.expect("reps > 0");
        let skipped = cycles.saturating_sub(best_ticked);
        // Where the cycles went: the two biggest non-base CPI-stack
        // categories, as shares of all commit slots.
        let top: Vec<String> = best_cpi
            .top_blockers()
            .into_iter()
            .map(|(cat, slots)| {
                format!(
                    "{} {:.0}%",
                    cat.name(),
                    slots as f64 * 100.0 / best_cpi.total_slots().max(1) as f64
                )
            })
            .collect();
        println!(
            "{:<14} {:>12} {:>12} {:>8.2} {:>12.2} {:>10.2} {:>6.1}% {:>6.2}  {}",
            name,
            cycles,
            insts,
            secs,
            cycles as f64 / secs / 1e6,
            insts as f64 / secs / 1e6,
            skipped as f64 * 100.0 / cycles.max(1) as f64,
            cycles as f64 / insts.max(1) as f64,
            top.join(", "),
        );
        if profile {
            let total = best_lap.total().max(1) as f64;
            for (i, stage) in mi6_core::LAP_STAGES.iter().enumerate() {
                let ns = best_lap.nanos[i];
                println!(
                    "    {:<18} {:>9.1} ms {:>6.1}%",
                    stage,
                    ns as f64 / 1e6,
                    ns as f64 * 100.0 / total
                );
            }
        }
        rows.push(Row {
            name,
            cycles,
            insts,
            secs,
            ticked: best_ticked,
            skipped,
            lap: best_lap,
            cpi: best_cpi,
            width: best_width,
        });
    }
    let mux_bench = (mux > 0).then(|| run_mux_bench(kinsts, mux));
    if let Some(m) = &mux_bench {
        println!(
            "mux: {} grid points on {} threads — serial {:.2}s ({:.2} Mcycles/s) vs \
             {} machines/worker {:.2}s ({:.2} Mcycles/s aggregate)",
            m.points,
            m.threads,
            m.serial_wall_s,
            m.serial_cps / 1e6,
            m.mux,
            m.mux_wall_s,
            m.mux_cps / 1e6,
        );
        println!(
            "mux: fork-base warm restores — snapshot pool {:.2}s vs on-disk {:.2}s",
            m.pool_warm_wall_s, m.disk_warm_wall_s,
        );
    }
    if let Some(path) = &trace_path {
        // Validate the trace we just wrote before anyone feeds it to
        // Konata: a malformed record should fail here, not in the viewer.
        match mi6_obs::check_trace_file(std::path::Path::new(path)) {
            Ok(sum) => eprintln!(
                "mi6-bench: trace {path}: {} op(s), {} squashed — O3PipeView schema ok",
                sum.ops, sum.squashed
            ),
            Err(e) => {
                eprintln!("mi6-bench: trace {path} failed validation: {e}");
                exit(1);
            }
        }
    }
    if let Some(path) = stacks_path {
        // One CPI-stack artifact row per kernel (the best rep's stack —
        // every rep simulates the identical run, so they all agree).
        let doc: String = rows
            .iter()
            .map(|r| {
                mi6_obs::stacks_row(r.name, "BASE", 0, r.cpi.cycles, r.width, &r.cpi.slots) + "\n"
            })
            .collect();
        if let Err(e) = mi6_obs::check_stacks_str(&doc) {
            eprintln!("mi6-bench: refusing to write invalid stacks artifact: {e}");
            exit(1);
        }
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("mi6-bench: cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("mi6-bench: wrote {path}");
    }
    if let Some(path) = json_path {
        // Machine-readable companion to the table: CI uploads this as the
        // perf-trajectory artifact, so keep the shape append-only (the
        // `lap_ns` object only appears under --profile).
        let kernels_json: Vec<String> = rows
            .iter()
            .map(|r| {
                let laps = if profile {
                    let stages: Vec<String> = mi6_core::LAP_STAGES
                        .iter()
                        .zip(r.lap.nanos)
                        .map(|(stage, ns)| format!("\"{stage}\":{ns}"))
                        .collect();
                    format!(",\"lap_ns\":{{{}}}", stages.join(","))
                } else {
                    String::new()
                };
                format!(
                    "{{\"name\":\"{name}\",\"cycles\":{cycles},\"instructions\":{insts},\
                     \"wall_s\":{secs},\"cycles_per_sec\":{cps},\"ns_per_cycle\":{npc},\
                     \"cycles_ticked\":{ticked},\"cycles_skipped\":{skipped}{laps}}}",
                    name = r.name,
                    cycles = r.cycles,
                    insts = r.insts,
                    secs = r.secs,
                    cps = r.cycles as f64 / r.secs,
                    npc = r.secs * 1e9 / r.cycles as f64,
                    ticked = r.ticked,
                    skipped = r.skipped,
                )
            })
            .collect();
        let mux_json = mux_bench
            .as_ref()
            .map(|m| {
                format!(
                    ",\"mux\":{{\"machines_per_worker\":{},\"threads\":{},\"points\":{},\
                     \"serial_wall_s\":{:.6},\"mux_wall_s\":{:.6},\
                     \"serial_cycles_per_sec\":{:.1},\"mux_cycles_per_sec\":{:.1},\
                     \"pool_warm_wall_s\":{:.6},\"disk_warm_wall_s\":{:.6}}}",
                    m.mux,
                    m.threads,
                    m.points,
                    m.serial_wall_s,
                    m.mux_wall_s,
                    m.serial_cps,
                    m.mux_cps,
                    m.pool_warm_wall_s,
                    m.disk_warm_wall_s,
                )
            })
            .unwrap_or_default();
        let doc = format!(
            "{{\"bench\":\"hotloop\",\"kinsts\":{kinsts},\"reps\":{reps},\"variant\":\"BASE\",\
             \"kernels\":[{}]{mux_json}}}\n",
            kernels_json.join(","),
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("mi6-bench: cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("mi6-bench: wrote {path}");
    }
    if let Some(path) = compare_path {
        // Non-gating regression check against a committed baseline (the
        // repo-root BENCH_hotloop.json): warn when a kernel's cycles/sec
        // falls more than `--compare-threshold` percent (default 20) below
        // it, but always exit 0 — shared CI runners are far too noisy to
        // gate on, the warning keeps the trajectory visible. The
        // `::warning::` lines surface as GitHub Actions annotations.
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("mi6-bench: cannot read baseline {path}: {e}");
            exit(1);
        });
        let floor = 1.0 - compare_threshold / 100.0;
        for r in &rows {
            let (name, fresh) = (r.name, r.cycles as f64 / r.secs);
            let Some(base) = baseline_cps(&doc, name) else {
                eprintln!("mi6-bench: baseline {path} has no kernel `{name}`; skipping");
                continue;
            };
            if fresh < base * floor {
                println!(
                    "::warning::mi6-bench {name}: {:.2} Mcycles/s is {:.0}% below the \
                     committed baseline ({:.2} Mcycles/s in {path}, threshold {compare_threshold}%)",
                    fresh / 1e6,
                    (1.0 - fresh / base) * 100.0,
                    base / 1e6,
                );
            } else {
                eprintln!(
                    "mi6-bench: {name} {:.2} Mcycles/s vs baseline {:.2} — ok \
                     (threshold {compare_threshold}%)",
                    fresh / 1e6,
                    base / 1e6
                );
            }
        }
    }
}
