//! `mi6-bench` — the simulator hot-loop microbenchmark.
//!
//! Runs store- and load-heavy kernels for a fixed instruction budget and
//! reports *simulated cycles per wall-clock second* — the number the LSQ
//! index refactor (and any future hot-loop work) is measured by. The
//! kernels deliberately keep their working sets cache-resident so the
//! simulated core's LQ/SQ stay full of short-latency memory ops: that is
//! the regime where per-op-per-cycle ROB scans dominate the host profile.
//!
//! ```text
//! mi6-bench                      # all kernels, default budget
//! mi6-bench --kinsts 500         # longer runs (kilo-instructions)
//! mi6-bench --kernel store-heavy # one kernel
//! mi6-bench --reps 5             # best-of-5 wall-clock timing
//! mi6-bench --json BENCH_hotloop.json   # also write machine-readable results
//! ```
//!
//! Each kernel prints one line, e.g.
//! `store-heavy   1234567 cycles  0.41 s  3.0 Mcycles/s  (best of 3)`;
//! the figure to track across commits is the `Mcycles/s` column
//! (EXPERIMENTS.md records the before/after of each optimisation, and CI
//! runs this binary non-gating so the trajectory stays visible).

use mi6_soc::{SimBuilder, Variant};
use mi6_workloads::{generate, BranchStyle, Profile, WorkloadParams};
use std::process::exit;
use std::time::Instant;

/// The measurement kernels. All working sets fit the 1 MiB LLC (and
/// mostly the 32 KiB L1D), so memory ops complete quickly and the
/// load/store queues stay saturated — maximum pressure on the LSQ
/// bookkeeping rather than on the DRAM model.
fn kernels() -> Vec<(&'static str, Profile)> {
    let quiet = Profile {
        stream_bytes: 0,
        stream_lines_per_iter: 0,
        chase_bytes: 0,
        chase_nodes_per_iter: 0,
        ws_bytes: 0,
        ws_accesses_per_iter: 0,
        branch_sites: 2,
        branch_style: BranchStyle::Easy,
        ilp_ops: 2,
        muldiv_ops: 0,
        syscall_every: 0,
    };
    vec![
        // Random loads *and stores* into an L1-resident working set: every
        // odd access site is a store, so the SQ churns and every load's
        // forwarding/blocking checks run against a full store queue.
        (
            "store-heavy",
            Profile {
                ws_bytes: 16 << 10,
                ws_accesses_per_iter: 24,
                ..quiet
            },
        ),
        // Streaming plus an LLC-resident pointer chase: a load-dominated
        // mix that keeps the LQ full (the violation-scan victim).
        (
            "load-heavy",
            Profile {
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 4,
                chase_bytes: 128 << 10,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
        // A gcc-shaped blend (large working set, mixed branches): closer
        // to what the figure grids actually simulate.
        (
            "mixed",
            Profile {
                ws_bytes: 1 << 20,
                ws_accesses_per_iter: 8,
                stream_bytes: 64 << 10,
                stream_lines_per_iter: 2,
                branch_sites: 32,
                branch_style: BranchStyle::Medium,
                ilp_ops: 4,
                ..quiet
            },
        ),
        // A dependent pointer chase through a 4 MiB arena — 4x the LLC,
        // so nearly every node misses to DRAM and the machine is provably
        // inert for most of each miss. This is the regime the event-driven
        // idle-skip targets: simulated cycles/sec here tracks how well the
        // clock fast-forwards, not how fast a busy tick is.
        (
            "miss-heavy",
            Profile {
                chase_bytes: 4 << 20,
                chase_nodes_per_iter: 8,
                ..quiet
            },
        ),
    ]
}

fn usage() -> ! {
    eprintln!("usage: mi6-bench [--kinsts N] [--reps N] [--kernel NAME]... [--json PATH]");
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kinsts: u64 = 300;
    let mut reps: u32 = 3;
    let mut only: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage()).clone();
        match arg.as_str() {
            "--kinsts" => kinsts = val().parse().unwrap_or_else(|_| usage()),
            "--reps" => reps = val().parse().unwrap_or_else(|_| usage()),
            "--kernel" => only.push(val()),
            "--json" => json_path = Some(val()),
            _ => usage(),
        }
    }
    if reps == 0 {
        usage();
    }
    let kernels = kernels();
    for k in &only {
        if !kernels.iter().any(|(name, _)| name == k) {
            // A typo'd --kernel must not let a CI perf job "pass" while
            // measuring nothing.
            eprintln!("mi6-bench: unknown kernel `{k}`");
            let names: Vec<&str> = kernels.iter().map(|(n, _)| *n).collect();
            eprintln!("known kernels: {}", names.join(", "));
            exit(2);
        }
    }
    let params = WorkloadParams::evaluation().with_target_kinsts(kinsts);
    println!("mi6-bench: {kinsts}k instructions per kernel, best of {reps} rep(s), variant BASE");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "kernel", "cycles", "insts", "wall s", "Mcycles/s", "Minst/s"
    );
    let mut rows: Vec<(&str, u64, u64, f64)> = Vec::new(); // (name, cycles, insts, secs)
    for (name, profile) in kernels {
        if !only.is_empty() && !only.iter().any(|k| k == name) {
            continue;
        }
        let program = generate(name, &profile, &params);
        let mut best: Option<(f64, u64, u64)> = None; // (secs, cycles, insts)
        for _ in 0..reps {
            let mut machine = SimBuilder::new(Variant::Base)
                .without_timer()
                .build()
                .expect("BASE builds");
            machine
                .load_user_program(0, &program)
                .unwrap_or_else(|e| panic!("loading {name}: {e}"));
            let t0 = Instant::now();
            let stats = machine
                .run_to_completion(kinsts.saturating_mul(1_000_000).max(400_000_000))
                .unwrap_or_else(|e| panic!("running {name}: {e}"));
            let secs = t0.elapsed().as_secs_f64();
            let sample = (secs, stats.cycles, stats.core[0].committed_instructions);
            best = Some(match best {
                Some(b) if b.0 <= secs => b,
                _ => sample,
            });
        }
        let (secs, cycles, insts) = best.expect("reps > 0");
        println!(
            "{:<14} {:>12} {:>12} {:>8.2} {:>12.2} {:>10.2}",
            name,
            cycles,
            insts,
            secs,
            cycles as f64 / secs / 1e6,
            insts as f64 / secs / 1e6,
        );
        rows.push((name, cycles, insts, secs));
    }
    if let Some(path) = json_path {
        // Machine-readable companion to the table: CI uploads this as the
        // perf-trajectory artifact, so keep the shape append-only.
        let kernels_json: Vec<String> = rows
            .iter()
            .map(|(name, cycles, insts, secs)| {
                format!(
                    "{{\"name\":\"{name}\",\"cycles\":{cycles},\"instructions\":{insts},\
                     \"wall_s\":{secs},\"cycles_per_sec\":{cps},\"ns_per_cycle\":{npc}}}",
                    cps = *cycles as f64 / secs,
                    npc = secs * 1e9 / *cycles as f64,
                )
            })
            .collect();
        let doc = format!(
            "{{\"bench\":\"hotloop\",\"kinsts\":{kinsts},\"reps\":{reps},\"variant\":\"BASE\",\
             \"kernels\":[{}]}}\n",
            kernels_json.join(","),
        );
        std::fs::write(&path, doc).unwrap_or_else(|e| {
            eprintln!("mi6-bench: cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("mi6-bench: wrote {path}");
    }
}
