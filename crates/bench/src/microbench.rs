//! A tiny dependency-free timing harness for the component benches.
//!
//! Not a statistics engine: each bench warms up, then doubles the batch
//! size until a batch takes long enough to time reliably, and reports one
//! ns/iter number. Good enough to spot order-of-magnitude regressions in
//! the simulator's hot structures without pulling in criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured batch duration before a result is reported.
const MIN_BATCH: Duration = Duration::from_millis(100);

/// Warmup budget: stop early once this much time is spent, so one
/// expensive closure (e.g. a whole-machine tick) cannot stall the suite
/// for a thousand iterations before measurement even starts.
const MAX_WARMUP: Duration = Duration::from_millis(10);

/// Times `f`, auto-scaling the iteration count, and prints ns/iter.
pub fn bench(name: &str, mut f: impl FnMut()) {
    let warm0 = Instant::now();
    for _ in 0..1_000 {
        f();
        if warm0.elapsed() >= MAX_WARMUP {
            break;
        }
    }
    let mut iters: u64 = 1_000;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt >= MIN_BATCH || iters >= 1 << 30 {
            println!(
                "{name:<40} {:>12.1} ns/iter  ({iters} iters)",
                dt.as_nanos() as f64 / iters as f64
            );
            return;
        }
        iters = iters.saturating_mul(4);
    }
}

/// Times `f` for exactly `n` iterations and prints ms/iter (for benches
/// whose single iteration is already expensive, e.g. whole simulations).
pub fn bench_n(name: &str, n: u32, mut f: impl FnMut()) {
    assert!(n > 0);
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    let dt = t0.elapsed();
    println!(
        "{name:<40} {:>12.2} ms/iter  ({n} iters)",
        dt.as_secs_f64() * 1e3 / n as f64
    );
}
