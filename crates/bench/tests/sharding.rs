//! End-to-end sharding determinism (the ISSUE's acceptance criteria):
//!
//! - a full grid run and a 3-shard run of the same grid must merge to
//!   *byte-identical* figure tables;
//! - `merge` must reject a shard set with a missing or duplicated point;
//! - killing a shard mid-run and restarting it must complete from the
//!   journal without recomputing finished points.

use mi6_bench::sharding::{load_shard_dir, merge_shards, open_shard_journal, MergeError};
use mi6_bench::{plan_grid, run_grid, GridPlan, HarnessOpts};
use mi6_grid::ShardSpec;
use mi6_workloads::Workload;
use std::path::{Path, PathBuf};

fn tiny_opts() -> HarnessOpts {
    HarnessOpts::default().with_kinsts(10).with_timer(0)
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mi6-shard-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one shard to completion, journaling every completed point —
/// exactly what `mi6-experiments --shard i/N --out DIR` does.
fn run_shard(plan: &GridPlan, dir: &Path, spec: ShardSpec) -> usize {
    let mut sj = open_shard_journal(dir, spec).unwrap();
    let todo: Vec<_> = plan
        .shard_points(spec)
        .into_iter()
        .filter(|p| !sj.done.contains_key(&p.key()))
        .collect();
    let ran = todo.len();
    run_grid(&todo, 2, |res| {
        sj.journal.append(&res.to_json()).unwrap();
    });
    ran
}

#[test]
fn three_shards_merge_byte_identical_to_full_grid() {
    let dir = scratch_dir("identical");
    // Figure 6 is the cheapest real grid (11 FLUSH points); two seeds
    // exercise the mean + confidence-interval rendering through the JSON
    // round-trip as well.
    let plan = plan_grid(&[6], tiny_opts(), 2, &Workload::ALL);
    let unsharded = run_grid(&plan.points, 4, |_| {});
    let expected = plan.render(&unsharded);
    assert!(expected.contains("Figure 6"), "{expected}");
    assert!(expected.contains("95% CI"), "{expected}");

    let total = 3u32;
    let mut ran = 0usize;
    for index in 0..total {
        ran += run_shard(&plan, &dir, ShardSpec { index, total });
    }
    assert_eq!(ran, plan.points.len(), "shards must partition the grid");

    let loaded = load_shard_dir(&dir).unwrap();
    assert_eq!(loaded.files, 3);
    assert_eq!(loaded.skipped_lines, 0);
    let (merged, cov) = merge_shards(&plan, &loaded).unwrap();
    assert!(cov.extra.is_empty());
    assert_eq!(
        plan.render(&merged),
        expected,
        "merged tables must be byte-identical to the unsharded run"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn killed_shard_resumes_from_journal_without_recomputing() {
    let dir = scratch_dir("resume");
    let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
    let spec = ShardSpec::whole(); // one shard owning the whole grid
    let owned = plan.shard_points(spec);
    assert_eq!(owned.len(), plan.points.len());

    // "Kill" the shard after three points: journal only a prefix.
    let cut = 3usize;
    {
        let mut sj = open_shard_journal(&dir, spec).unwrap();
        run_grid(&owned[..cut], 2, |res| {
            sj.journal.append(&res.to_json()).unwrap();
        });
    }
    // Simulate the torn trailing line of a mid-write kill.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(spec.file_name()))
            .unwrap();
        write!(f, "{{\"variant\":\"FLUSH\",\"workl").unwrap();
    }

    // Restart: the journal replays the finished prefix, drops the torn
    // tail, and only the remaining points are recomputed.
    let mut sj = open_shard_journal(&dir, spec).unwrap();
    assert!(sj.torn_tail);
    assert_eq!(sj.done.len(), cut);
    let todo: Vec<_> = owned
        .iter()
        .filter(|p| !sj.done.contains_key(&p.key()))
        .copied()
        .collect();
    assert_eq!(todo.len(), owned.len() - cut, "finished points recomputed");
    run_grid(&todo, 2, |res| {
        sj.journal.append(&res.to_json()).unwrap();
    });

    // The completed journal now merges exactly, and matches a fresh
    // unsharded run byte-for-byte.
    let loaded = load_shard_dir(&dir).unwrap();
    assert_eq!(loaded.skipped_lines, 0, "torn tail must be truncated away");
    let (merged, _) = merge_shards(&plan, &loaded).unwrap();
    let unsharded = run_grid(&plan.points, 4, |_| {});
    assert_eq!(plan.render(&merged), plan.render(&unsharded));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn merge_rejects_missing_and_duplicated_journal_points() {
    let dir = scratch_dir("reject");
    let plan = plan_grid(&[6], tiny_opts(), 1, &Workload::ALL);
    run_shard(&plan, &dir, ShardSpec::whole());
    let journal = dir.join(ShardSpec::whole().file_name());
    let full = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), plan.points.len());

    let coverage = |err: MergeError| match err {
        MergeError::Coverage(cov) => cov,
        other => panic!("expected a coverage error, got {other:?}"),
    };

    // Missing: drop one line.
    std::fs::write(&journal, lines[1..].join("\n") + "\n").unwrap();
    let err = coverage(merge_shards(&plan, &load_shard_dir(&dir).unwrap()).unwrap_err());
    assert_eq!(err.missing.len(), 1);
    assert!(err.duplicate.is_empty());

    // Duplicated: restore plus repeat a line (as if two hosts ran the
    // same shard into separate files).
    std::fs::write(&journal, &full).unwrap();
    std::fs::write(dir.join("shard-stray.jsonl"), format!("{}\n", lines[4])).unwrap();
    let err = coverage(merge_shards(&plan, &load_shard_dir(&dir).unwrap()).unwrap_err());
    assert_eq!(err.duplicate.len(), 1);
    assert_eq!(err.duplicate[0].1, 2);

    // A non-journal JSONL dropped into the directory (e.g. a --json
    // stream) is not read as a shard: no phantom duplicates.
    std::fs::remove_file(dir.join("shard-stray.jsonl")).unwrap();
    std::fs::write(dir.join("results.jsonl"), &full).unwrap();
    assert!(merge_shards(&plan, &load_shard_dir(&dir).unwrap()).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}
