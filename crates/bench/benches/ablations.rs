//! Ablations of the Figure-3 LLC mechanisms (DESIGN.md).
//!
//! Each configuration simulates the same workload with one mechanism
//! toggled; the simulated cycle count is the ablation readout, and host
//! wall time (printed by the harness) is proportional to it. Run with
//! `cargo bench -p mi6-bench --bench ablations`.

use mi6_bench::microbench::bench_n;
use mi6_mem::{DowngradeOrg, DqOrg, MemConfig, MshrOrg, UqOrg};
use mi6_soc::SimBuilder;
use mi6_workloads::{Workload, WorkloadParams};

fn simulate(mem_cfg: MemConfig, label: &str) -> u64 {
    let mut machine = SimBuilder::base()
        .without_timer()
        .mem_config(mem_cfg)
        .workload(
            0,
            Workload::Bzip2.build(&WorkloadParams::tiny().with_target_kinsts(20)),
        )
        .build()
        .expect("build");
    let stats = machine.run_to_completion(50_000_000).expect("run");
    eprintln!("ablation[{label}]: {} simulated cycles", stats.cycles);
    stats.cycles
}

fn bench_ablation(name: &'static str, mem_cfg: MemConfig) {
    bench_n(name, 3, || {
        simulate(mem_cfg, name);
    });
}

fn main() {
    let base = MemConfig::paper_base();
    bench_ablation("llc baseline (fig2)", base);

    // Split UQ vs shared UQ (paper: zero overhead).
    let mut split_uq = base;
    split_uq.llc.uq = UqOrg::PerCore;
    bench_ablation("llc split UQ", split_uq);

    // Duplicated vs single Downgrade-L1 (paper: zero overhead).
    let mut dup_dg = base;
    dup_dg.llc.downgrade = DowngradeOrg::PerPartition;
    dup_dg.llc.mshrs = MshrOrg::PerCore { per_core: 12 };
    bench_ablation("llc duplicated downgrade", dup_dg);

    // DQ retry bit vs two-cycle dequeue (paper: negligible).
    let mut retry = base;
    retry.llc.dq = DqOrg::RetryBit;
    bench_ablation("llc DQ retry bit", retry);

    // Arbiter latency as a function of core count (paper Sec 5.4.4:
    // average extra latency is N/2 cycles).
    for n in [2u32, 4, 8] {
        let mut arb = base;
        arb.llc.pipeline_latency += n / 2;
        bench_ablation(
            match n {
                2 => "llc arbiter 2 cores (+1 cycle)",
                4 => "llc arbiter 4 cores (+2 cycles)",
                _ => "llc arbiter 8 cores (+4 cycles)",
            },
            arb,
        );
    }
}
