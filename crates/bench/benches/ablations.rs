//! Ablations of the Figure-3 LLC mechanisms (DESIGN.md section 6).
//!
//! Each bench simulates the same workload under one toggled mechanism;
//! Criterion measures host wall time, which is proportional to simulated
//! cycles, and the simulated cycle counts are printed once per
//! configuration so the ablation can be read directly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mi6_mem::{DowngradeOrg, DqOrg, MemConfig, MshrOrg, UqOrg};
use mi6_soc::{Machine, MachineConfig, Variant};
use mi6_workloads::{Workload, WorkloadParams};

fn simulate(mem_cfg: MemConfig, label: &str) -> u64 {
    let cfg = MachineConfig::variant(Variant::Base, 1).without_timer();
    let mut machine = Machine::with_mem_config(cfg, mem_cfg);
    let program = Workload::Bzip2.build(&WorkloadParams::tiny().with_target_kinsts(20));
    machine.load_user_program(0, &program).expect("load");
    let stats = machine.run_to_completion(50_000_000).expect("run");
    eprintln!("ablation[{label}]: {} simulated cycles", stats.cycles);
    stats.cycles
}

fn bench_ablation(c: &mut Criterion, name: &'static str, mem_cfg: MemConfig) {
    // Print the simulated-cycle number once.
    simulate(mem_cfg, name);
    c.bench_function(name, |b| {
        b.iter_batched(
            || mem_cfg,
            |cfg| simulate(cfg, name),
            BatchSize::PerIteration,
        )
    });
}

fn ablations(c: &mut Criterion) {
    let base = MemConfig::paper_base();
    bench_ablation(c, "llc baseline (fig2)", base);

    // Split UQ vs shared UQ (paper: zero overhead).
    let mut split_uq = base;
    split_uq.llc.uq = UqOrg::PerCore;
    bench_ablation(c, "llc split UQ", split_uq);

    // Duplicated vs single Downgrade-L1 (paper: zero overhead).
    let mut dup_dg = base;
    dup_dg.llc.downgrade = DowngradeOrg::PerPartition;
    dup_dg.llc.mshrs = MshrOrg::PerCore { per_core: 12 };
    bench_ablation(c, "llc duplicated downgrade", dup_dg);

    // DQ retry bit vs two-cycle dequeue (paper: negligible).
    let mut retry = base;
    retry.llc.dq = DqOrg::RetryBit;
    bench_ablation(c, "llc DQ retry bit", retry);

    // Arbiter latency as a function of core count (paper Sec 5.4.4:
    // average extra latency is N/2 cycles).
    for n in [2u32, 4, 8] {
        let mut arb = base;
        arb.llc.pipeline_latency += n / 2;
        bench_ablation(
            c,
            match n {
                2 => "llc arbiter 2 cores (+1 cycle)",
                4 => "llc arbiter 4 cores (+2 cycles)",
                _ => "llc arbiter 8 cores (+4 cycles)",
            },
            arb,
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablations
}
criterion_main!(benches);
