//! Component microbenches: throughput of the simulator's hot structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mi6_core::{Btb, Tournament};
use mi6_isa::{decode, encode, Inst, PhysAddr, Reg};
use mi6_mem::{DramConfig, LlcConfig, Llc, RegionMap};
use mi6_monitor::sha256;

fn bench_predictor(c: &mut Criterion) {
    let mut t = Tournament::new();
    c.bench_function("tournament predict+update", |b| {
        let mut pc = 0x1000u64;
        b.iter(|| {
            let p = t.predict(black_box(pc));
            t.speculate(p.taken);
            t.update(pc, p, pc % 3 == 0);
            pc = pc.wrapping_add(4) & 0xffff;
        })
    });
}

fn bench_btb(c: &mut Criterion) {
    let mut btb = Btb::new(256);
    for i in 0..256u64 {
        btb.update(0x1000 + i * 4, 0x2000 + i * 8);
    }
    c.bench_function("btb lookup", |b| {
        let mut pc = 0x1000u64;
        b.iter(|| {
            black_box(btb.lookup(black_box(pc)));
            pc = 0x1000 + ((pc + 4) & 0x3ff);
        })
    });
}

fn bench_encode_decode(c: &mut Criterion) {
    let inst = Inst::Load {
        rd: Reg::A0,
        rs1: Reg::SP,
        off: -64,
        width: mi6_isa::MemWidth::D,
        signed: true,
    };
    c.bench_function("encode+decode round trip", |b| {
        b.iter(|| {
            let w = encode(black_box(inst)).unwrap();
            black_box(decode(w).unwrap())
        })
    });
}

fn bench_llc_index(c: &mut Criterion) {
    let secure = LlcConfig::paper_secure(4, 24);
    let llc = Llc::new(secure, 4, RegionMap::new(&DramConfig::paper()));
    c.bench_function("partitioned llc set_index", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            let s = llc.set_index(black_box(PhysAddr::new(addr)));
            addr = (addr + 64) & ((2 << 30) - 1);
            black_box(s)
        })
    });
}

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 4096];
    c.bench_function("sha256 4KiB (enclave page measurement)", |b| {
        b.iter(|| black_box(sha256::sha256(black_box(&data))))
    });
}

criterion_group!(
    benches,
    bench_predictor,
    bench_btb,
    bench_encode_decode,
    bench_llc_index,
    bench_sha256
);
criterion_main!(benches);
