//! Component microbenches: throughput of the simulator's hot structures.
//!
//! Dependency-free harness (`harness = false`): each bench runs its
//! closure in timed batches and reports ns/iter. Run with
//! `cargo bench -p mi6-bench --bench components`.

use mi6_bench::microbench::{bench, black_box};
use mi6_core::{Btb, Tournament};
use mi6_isa::{decode, encode, Inst, PhysAddr, Reg};
use mi6_mem::{DramConfig, Llc, LlcConfig, RegionMap};
use mi6_monitor::sha256;

fn bench_predictor() {
    let mut t = Tournament::new();
    let mut pc = 0x1000u64;
    bench("tournament predict+update", || {
        let p = t.predict(black_box(pc));
        t.speculate(p.taken);
        t.update(pc, p, pc.is_multiple_of(3));
        pc = pc.wrapping_add(4) & 0xffff;
    });
}

fn bench_btb() {
    let mut btb = Btb::new(256);
    for i in 0..256u64 {
        btb.update(0x1000 + i * 4, 0x2000 + i * 8);
    }
    let mut pc = 0x1000u64;
    bench("btb lookup", || {
        black_box(btb.lookup(black_box(pc)));
        pc = 0x1000 + (pc + 4) % (256 * 4);
    });
}

fn bench_encode_decode() {
    let inst = Inst::addi(Reg::A0, Reg::A1, 42);
    bench("encode+decode addi", || {
        let w = encode(black_box(inst)).expect("encodes");
        black_box(decode(black_box(w)).expect("decodes"));
    });
}

fn bench_llc_index() {
    let llc = Llc::new(
        LlcConfig::paper_base(),
        1,
        RegionMap::new(&DramConfig::paper()),
    );
    let mut addr = 0u64;
    bench("llc set_index", || {
        black_box(llc.set_index(PhysAddr::new(black_box(addr))));
        addr = addr.wrapping_add(64) & 0x7fff_ffff;
    });
}

fn bench_sha256() {
    let data = vec![0xa5u8; 4096];
    bench("sha256 4KiB", || {
        black_box(sha256(black_box(&data)));
    });
}

fn main() {
    bench_predictor();
    bench_btb();
    bench_encode_decode();
    bench_llc_index();
    bench_sha256();
}
