//! # mi6-monitor
//!
//! The MI6 security monitor model: enclave lifecycle (create / schedule /
//! deschedule / destroy), DRAM-region allocation with scrub-before-reuse,
//! SHA-256 measurement and attestation, mailboxes, and the privileged
//! memcopy — the paper's Section 6.2, as a checked state machine driving
//! the simulated [`mi6_soc::Machine`].
//!
//! ```
//! use mi6_monitor::{SecurityMonitor, RegionOwner};
//! use mi6_soc::{SimBuilder, Variant};
//! use mi6_mem::RegionId;
//!
//! let machine = SimBuilder::new(Variant::SecureMi6).build().unwrap();
//! let monitor = SecurityMonitor::new(&machine);
//! assert_eq!(monitor.owner(RegionId(0)), RegionOwner::Os);
//! assert_eq!(monitor.owner(RegionId(5)), RegionOwner::Free);
//! ```

pub mod monitor;
pub mod sha256;

pub use monitor::{
    Attestation, EnclaveId, EnclaveState, MailboxMsg, MonitorError, RegionOwner, SecurityMonitor,
};
pub use sha256::{sha256, Digest};

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_isa::{Assembler, Inst, PhysAddr, Reg};
    use mi6_mem::RegionId;
    use mi6_soc::loader::{Program, CODE_VA, DATA_VA};
    use mi6_soc::{Machine, SimBuilder, Variant};

    /// An enclave program: reads its data buffer, sums it, exits via
    /// ecall (which lands in the monitor — machine mode — and halts the
    /// simulated core, modelling the enclave-exit monitor call).
    fn enclave_program(iterations: u64) -> Program {
        let mut asm = Assembler::new(CODE_VA);
        asm.li(Reg::S0, DATA_VA);
        asm.li(Reg::S1, iterations);
        asm.li(Reg::A0, 0);
        let top = asm.here();
        asm.push(Inst::ld(Reg::T0, Reg::S0, 0));
        asm.push(Inst::add(Reg::A0, Reg::A0, Reg::T0));
        asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
        asm.bnez(Reg::S1, top);
        asm.push(Inst::sd(Reg::A0, Reg::S0, 8));
        asm.push(Inst::Ecall); // enclave exit -> monitor
        Program {
            name: "enclave".into(),
            code: asm.assemble().expect("assembles"),
            data_size: 4096,
            data_init: vec![(0, 21)],
            stack_size: 4096,
        }
    }

    fn setup() -> (Machine, SecurityMonitor) {
        let machine = SimBuilder::new(Variant::SecureMi6)
            .without_timer()
            .build()
            .unwrap();
        let monitor = SecurityMonitor::new(&machine);
        (machine, monitor)
    }

    #[test]
    fn full_lifecycle() {
        let (mut m, mut mon) = setup();
        let program = enclave_program(3);
        let id = mon
            .create_enclave(&mut m, &program, &[RegionId(8), RegionId(9)])
            .expect("create");
        assert_eq!(mon.enclave_state(id).unwrap(), EnclaveState::Created);
        assert!(mon.check_invariants());
        assert_eq!(mon.owner(RegionId(8)), RegionOwner::Enclave(id));

        mon.schedule(&mut m, 0, id).expect("schedule");
        assert_eq!(
            mon.enclave_state(id).unwrap(),
            EnclaveState::Running { core: 0 }
        );
        // The schedule purged the core.
        assert_eq!(m.core(0).stats.purges, 1);
        // Run until the enclave exits (ecall -> machine -> halt).
        m.run_to_completion(20_000_000).expect("runs");
        // The enclave computed 21 * 3 into its buffer at DATA_VA + 8.
        // Verify via a software walk of the *enclave's* table.
        let enclave_result = {
            let satp = m.core(0).csrs.satp;
            let aspace = mi6_soc::loader::AddressSpace::probe(satp);
            let pa = aspace.translate(&m.mem().phys, DATA_VA + 8).unwrap();
            m.mem().phys.read_u64(PhysAddr::new(pa))
        };
        assert_eq!(enclave_result, 63);

        mon.deschedule(&mut m, id).expect("deschedule");
        assert_eq!(m.core(0).stats.purges, 2);
        assert_eq!(mon.enclave_state(id).unwrap(), EnclaveState::Stopped);

        // Destroy scrubs the regions.
        let probe = PhysAddr::new(m.mem().region_map().base_of(RegionId(8)).raw() + 0x2000);
        mon.destroy(&mut m, id).expect("destroy");
        assert_eq!(m.mem().phys.read_u64(probe), 0);
        assert_eq!(mon.owner(RegionId(8)), RegionOwner::Free);
        assert!(mon.check_invariants());
    }

    #[test]
    fn overlapping_enclaves_rejected() {
        let (mut m, mut mon) = setup();
        let p = enclave_program(1);
        let _a = mon
            .create_enclave(&mut m, &p, &[RegionId(8)])
            .expect("first");
        let err = mon
            .create_enclave(&mut m, &p, &[RegionId(8)])
            .expect_err("overlap");
        assert_eq!(err, MonitorError::RegionBusy(RegionId(8)));
        assert!(mon.check_invariants());
    }

    #[test]
    fn os_region_not_grantable() {
        let (mut m, mut mon) = setup();
        let err = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(0)])
            .expect_err("region 0 is the OS/monitor region");
        assert_eq!(err, MonitorError::RegionBusy(RegionId(0)));
    }

    #[test]
    fn measurement_binds_code_and_regions() {
        let (mut m, mut mon) = setup();
        let a = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(8)])
            .unwrap();
        let b = mon
            .create_enclave(&mut m, &enclave_program(2), &[RegionId(9)])
            .unwrap();
        // Different iteration constants -> different code -> different
        // measurement.
        assert_ne!(mon.measurement(a).unwrap(), mon.measurement(b).unwrap());
        let att = mon.attest(a).unwrap();
        assert_eq!(att.measurement, mon.measurement(a).unwrap());
        assert_ne!(att.signature, att.measurement);
    }

    #[test]
    fn same_program_same_regions_same_measurement() {
        let (mut m1, mut mon1) = setup();
        let (mut m2, mut mon2) = setup();
        let a = mon1
            .create_enclave(&mut m1, &enclave_program(5), &[RegionId(8)])
            .unwrap();
        let b = mon2
            .create_enclave(&mut m2, &enclave_program(5), &[RegionId(8)])
            .unwrap();
        assert_eq!(mon1.measurement(a).unwrap(), mon2.measurement(b).unwrap());
    }

    #[test]
    fn mailboxes_round_trip() {
        let (mut m, mut mon) = setup();
        let id = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(8)])
            .unwrap();
        let mut data = [0u8; 64];
        data[0] = 0xaa;
        mon.mailbox_send(None, Some(id), data).unwrap();
        assert_eq!(
            mon.mailbox_send(None, Some(id), data),
            Err(MonitorError::MailboxFull)
        );
        let msg = mon.mailbox_recv(Some(id)).unwrap();
        assert_eq!(msg.from, None);
        assert_eq!(msg.data[0], 0xaa);
        assert_eq!(mon.mailbox_recv(Some(id)), Err(MonitorError::MailboxEmpty));
        // Enclave -> OS direction.
        mon.mailbox_send(Some(id), None, data).unwrap();
        assert_eq!(mon.mailbox_recv(None).unwrap().from, Some(id));
    }

    #[test]
    fn memcopy_is_the_only_data_path() {
        let (mut m, mut mon) = setup();
        let id = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(8)])
            .unwrap();
        // OS buffer in OS memory.
        let os_buf = PhysAddr::new(0x70_0000);
        for i in 0..8u64 {
            m.mem_mut()
                .phys
                .write_u64(PhysAddr::new(os_buf.raw() + i * 8), 100 + i);
        }
        mon.memcopy_to_enclave(&mut m, id, os_buf, DATA_VA + 64, 64)
            .unwrap();
        // Read back through the reverse copy.
        let os_out = PhysAddr::new(0x71_0000);
        mon.memcopy_from_enclave(&mut m, id, DATA_VA + 64, os_out, 64)
            .unwrap();
        for i in 0..8u64 {
            assert_eq!(
                m.mem().phys.read_u64(PhysAddr::new(os_out.raw() + i * 8)),
                100 + i
            );
        }
    }

    #[test]
    fn cannot_destroy_running_enclave() {
        let (mut m, mut mon) = setup();
        let id = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(8)])
            .unwrap();
        mon.schedule(&mut m, 0, id).unwrap();
        assert_eq!(
            mon.destroy(&mut m, id),
            Err(MonitorError::EnclaveRunning(id))
        );
        assert_eq!(mon.schedule(&mut m, 0, id), Err(MonitorError::CoreBusy(0)));
    }

    #[test]
    fn scheduled_enclave_has_restricted_regions() {
        let (mut m, mut mon) = setup();
        let id = mon
            .create_enclave(&mut m, &enclave_program(1), &[RegionId(8), RegionId(9)])
            .unwrap();
        mon.schedule(&mut m, 0, id).unwrap();
        let bv = mi6_mem::RegionBitvec(m.core(0).csrs.mregions);
        assert!(bv.allows(RegionId(8)));
        assert!(bv.allows(RegionId(9)));
        assert!(!bv.allows(RegionId(0)), "enclave must not see OS memory");
        assert_eq!(bv.count(), 2);
    }
}
