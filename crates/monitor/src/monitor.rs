//! The security monitor (paper Section 6.2).
//!
//! The monitor is the only software that ever runs in machine mode. This
//! crate models its *state machine and invariants* — following the paper,
//! which treats the monitor's implementation as borrowed from Sanctorum
//! and out of scope, while depending on the properties it enforces:
//!
//! - **Non-overlap**: an enclave's DRAM regions never overlap any other
//!   protection domain's regions.
//! - **Scrub before reuse**: memory is zeroed when regions change owner,
//!   and cores are purged when protection domains are (de)scheduled.
//! - **Measurement**: an enclave's initial contents are hashed at
//!   creation for attestation.
//! - **Mediated communication**: mailboxes (64-byte authenticated
//!   messages) and the privileged memcopy between agreed buffer pairs are
//!   the *only* cross-domain channels; no memory is ever shared.
//!
//! On real MI6 hardware these operations execute as monitor code under
//! the machine-mode speculation guard; here the host drives the
//! [`Machine`] directly, charging the microarchitectural costs the paper
//! counts (the purge on every schedule/deschedule via
//! [`Core::start_purge`], and TLB shootdowns via the purge's TLB flush).

use crate::sha256::{sha256, Digest};
use mi6_core::Core;
use mi6_isa::{PhysAddr, PrivLevel};
use mi6_mem::{RegionBitvec, RegionId, RegionMap};
use mi6_soc::loader::{self, FrameAllocator, Program};
use mi6_soc::Machine;
use std::collections::HashMap;
use std::fmt;

/// An enclave handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnclaveId(pub u32);

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "enclave {}", self.0)
    }
}

/// Who owns a DRAM region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegionOwner {
    /// The security monitor itself (its PAR lives here).
    Monitor,
    /// The untrusted OS and ordinary processes.
    Os,
    /// Unassigned.
    Free,
    /// Owned by an enclave.
    Enclave(EnclaveId),
}

/// Life-cycle state of an enclave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created and measured, not scheduled.
    Created,
    /// Running on a core.
    Running {
        /// The core it occupies.
        core: usize,
    },
    /// Descheduled (core purged); can be rescheduled.
    Stopped,
}

/// A 64-byte mailbox message (paper Section 6.2: local attestation /
/// authenticated private messages between domains).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MailboxMsg {
    /// Sending domain (`None` = the untrusted OS).
    pub from: Option<EnclaveId>,
    /// Payload.
    pub data: [u8; 64],
}

/// An attestation report: the enclave measurement bound by the monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attestation {
    /// SHA-256 of the enclave's initial code, entry point, and region
    /// allocation.
    pub measurement: Digest,
    /// Mock signature: hash of the measurement under the monitor's
    /// (fixed, simulated) key.
    pub signature: Digest,
}

/// Errors returned by monitor calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// A requested region is not free / not owned by the caller.
    RegionBusy(RegionId),
    /// No regions were supplied.
    NoRegions,
    /// Unknown enclave handle.
    UnknownEnclave(EnclaveId),
    /// Operation requires the enclave to be stopped, but it is running.
    EnclaveRunning(EnclaveId),
    /// Operation requires the enclave to be running, but it is not.
    NotRunning(EnclaveId),
    /// The target core is occupied by another enclave.
    CoreBusy(usize),
    /// The program did not fit into the enclave's regions.
    LoadFailed,
    /// The receiving mailbox is occupied.
    MailboxFull,
    /// The mailbox is empty.
    MailboxEmpty,
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::RegionBusy(r) => write!(f, "{r} is not available"),
            MonitorError::NoRegions => f.write_str("enclave needs at least one region"),
            MonitorError::UnknownEnclave(e) => write!(f, "unknown {e}"),
            MonitorError::EnclaveRunning(e) => write!(f, "{e} is running"),
            MonitorError::NotRunning(e) => write!(f, "{e} is not running"),
            MonitorError::CoreBusy(c) => write!(f, "core {c} is occupied"),
            MonitorError::LoadFailed => f.write_str("program does not fit enclave regions"),
            MonitorError::MailboxFull => f.write_str("mailbox full"),
            MonitorError::MailboxEmpty => f.write_str("mailbox empty"),
        }
    }
}

impl std::error::Error for MonitorError {}

#[derive(Debug)]
struct Enclave {
    regions: RegionBitvec,
    state: EnclaveState,
    measurement: Digest,
    entry: u64,
    sp: u64,
    satp: u64,
    mailbox: Option<MailboxMsg>,
}

/// The security monitor state machine.
#[derive(Debug)]
pub struct SecurityMonitor {
    region_map: RegionMap,
    owners: Vec<RegionOwner>,
    enclaves: HashMap<EnclaveId, Enclave>,
    os_mailbox: Option<MailboxMsg>,
    next_id: u32,
}

impl SecurityMonitor {
    /// Creates the monitor for a machine. Region 0 (kernel, monitor PAR,
    /// page tables) is assigned to the OS/monitor; everything else starts
    /// free. The monitor's own text (the machine-mode stub) is protected
    /// by the fetch window the SoC configures, playing the role of
    /// Sanctum's PAR.
    pub fn new(machine: &Machine) -> SecurityMonitor {
        let region_map = machine.mem().region_map();
        let mut owners = vec![RegionOwner::Free; region_map.regions() as usize];
        owners[0] = RegionOwner::Monitor;
        // The OS's user-page windows: mark regions the loader hands to
        // ordinary processes as OS-owned as they get used; initially the
        // OS owns region 0's neighbours only when a program loads. Keep
        // it simple: regions below the first enclave grant stay OS/free.
        owners[0] = RegionOwner::Os; // kernel + monitor share region 0 (PAR inside)
        SecurityMonitor {
            region_map,
            owners,
            enclaves: HashMap::new(),
            os_mailbox: None,
            next_id: 1,
        }
    }

    /// The owner of a region.
    pub fn owner(&self, r: RegionId) -> RegionOwner {
        self.owners[r.index()]
    }

    /// The state of an enclave.
    pub fn enclave_state(&self, id: EnclaveId) -> Result<EnclaveState, MonitorError> {
        self.enclaves
            .get(&id)
            .map(|e| e.state)
            .ok_or(MonitorError::UnknownEnclave(id))
    }

    /// The measurement recorded at creation.
    pub fn measurement(&self, id: EnclaveId) -> Result<Digest, MonitorError> {
        self.enclaves
            .get(&id)
            .map(|e| e.measurement)
            .ok_or(MonitorError::UnknownEnclave(id))
    }

    /// Creates an enclave: claims `regions`, scrubs them, loads `program`
    /// into them (page tables included — an enclave shares no address
    /// space with the OS), and measures the initial state.
    ///
    /// # Errors
    ///
    /// Fails if any region is not free or the program does not fit.
    pub fn create_enclave(
        &mut self,
        machine: &mut Machine,
        program: &Program,
        regions: &[RegionId],
    ) -> Result<EnclaveId, MonitorError> {
        if regions.is_empty() {
            return Err(MonitorError::NoRegions);
        }
        for &r in regions {
            if self.owners[r.index()] != RegionOwner::Free {
                return Err(MonitorError::RegionBusy(r));
            }
        }
        // Scrub before use: the previous owner's data must not leak in.
        let region_bytes = self.region_map.region_bytes();
        for &r in regions {
            let base = self.region_map.base_of(r);
            machine.mem_mut().phys.scrub(base, region_bytes);
        }
        // Load entirely within the first region: tables first, frames
        // after. (Multi-region images simply get a larger frame window
        // when the regions are contiguous.)
        let base = self.region_map.base_of(regions[0]).raw();
        let contiguous = regions.windows(2).all(|w| w[1].index() == w[0].index() + 1);
        let window = if contiguous {
            region_bytes * regions.len() as u64
        } else {
            region_bytes
        };
        let table_bytes = 1 << 20;
        let mut frames = FrameAllocator::new(base + table_bytes, window - table_bytes);
        let image = loader::load_program(
            &mut machine.mem_mut().phys,
            program,
            base,
            table_bytes,
            &mut frames,
            &[], // no OS pages: enclaves share nothing with the OS
        )
        .map_err(|_| MonitorError::LoadFailed)?;
        // Measure: code, entry, and the region allocation.
        let mut measured = Vec::new();
        for w in &program.code {
            measured.extend_from_slice(&w.to_le_bytes());
        }
        measured.extend_from_slice(&image.entry.to_le_bytes());
        for &r in regions {
            measured.extend_from_slice(&(r.0).to_le_bytes());
        }
        let measurement = sha256(&measured);
        let id = EnclaveId(self.next_id);
        self.next_id += 1;
        for &r in regions {
            self.owners[r.index()] = RegionOwner::Enclave(id);
        }
        self.enclaves.insert(
            id,
            Enclave {
                regions: RegionBitvec::of(regions.iter().copied()),
                state: EnclaveState::Created,
                measurement,
                entry: image.entry,
                sp: image.sp,
                satp: image.satp,
                mailbox: None,
            },
        );
        Ok(id)
    }

    /// Schedules an enclave onto a core: purges the core (creating a
    /// pristine environment), installs the enclave's address space and
    /// region bitvector, and starts it at its entry point in user mode.
    pub fn schedule(
        &mut self,
        machine: &mut Machine,
        core: usize,
        id: EnclaveId,
    ) -> Result<(), MonitorError> {
        if self
            .enclaves
            .values()
            .any(|e| e.state == (EnclaveState::Running { core }))
        {
            return Err(MonitorError::CoreBusy(core));
        }
        let enclave = self
            .enclaves
            .get_mut(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        if let EnclaveState::Running { .. } = enclave.state {
            return Err(MonitorError::EnclaveRunning(id));
        }
        let (entry, sp, satp, regions) = (enclave.entry, enclave.sp, enclave.satp, enclave.regions);
        enclave.state = EnclaveState::Running { core };
        let now = machine.now();
        let c: &mut Core = machine.core_mut(core);
        // All enclave traps go to the monitor: nothing is delegated.
        c.csrs.medeleg = 0;
        c.csrs.mideleg = 0;
        c.csrs.satp = satp;
        c.csrs.mregions = regions.0;
        c.csrs.stimecmp = u64::MAX;
        c.regs = [0; 32];
        c.regs[mi6_isa::Reg::SP.index() as usize] = sp;
        c.halted = false;
        // The purge both scrubs the core and (on completion) drops to the
        // enclave's entry in user mode — the paper's secure context switch.
        c.start_purge(now, entry, PrivLevel::User);
        Ok(())
    }

    /// Deschedules a running enclave: purges the core (erasing all side
    /// effects of enclave execution) and returns it to the monitor idle
    /// loop (modelled as the halted machine-mode stub).
    pub fn deschedule(&mut self, machine: &mut Machine, id: EnclaveId) -> Result<(), MonitorError> {
        let enclave = self
            .enclaves
            .get_mut(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        let EnclaveState::Running { core } = enclave.state else {
            return Err(MonitorError::NotRunning(id));
        };
        enclave.state = EnclaveState::Stopped;
        let now = machine.now();
        let c = machine.core_mut(core);
        c.csrs.mregions = u64::MAX; // back to monitor/OS configuration
        c.start_purge(now, mi6_soc::kernel::M_STUB_BASE, PrivLevel::Machine);
        Ok(())
    }

    /// Destroys a stopped enclave: scrubs its regions and frees them.
    pub fn destroy(&mut self, machine: &mut Machine, id: EnclaveId) -> Result<(), MonitorError> {
        let enclave = self
            .enclaves
            .get(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        if let EnclaveState::Running { .. } = enclave.state {
            return Err(MonitorError::EnclaveRunning(id));
        }
        let regions = enclave.regions;
        let region_bytes = self.region_map.region_bytes();
        for r in regions.iter() {
            machine
                .mem_mut()
                .phys
                .scrub(self.region_map.base_of(r), region_bytes);
            self.owners[r.index()] = RegionOwner::Free;
        }
        self.enclaves.remove(&id);
        Ok(())
    }

    /// Sends a 64-byte mailbox message to an enclave (or to the OS when
    /// `to` is `None`). The monitor's handling does not depend on the
    /// data (Section 6.2), so no purge is required.
    pub fn mailbox_send(
        &mut self,
        from: Option<EnclaveId>,
        to: Option<EnclaveId>,
        data: [u8; 64],
    ) -> Result<(), MonitorError> {
        let msg = MailboxMsg { from, data };
        match to {
            None => {
                if self.os_mailbox.is_some() {
                    return Err(MonitorError::MailboxFull);
                }
                self.os_mailbox = Some(msg);
            }
            Some(id) => {
                let enclave = self
                    .enclaves
                    .get_mut(&id)
                    .ok_or(MonitorError::UnknownEnclave(id))?;
                if enclave.mailbox.is_some() {
                    return Err(MonitorError::MailboxFull);
                }
                enclave.mailbox = Some(msg);
            }
        }
        Ok(())
    }

    /// Receives the pending mailbox message for a domain.
    pub fn mailbox_recv(&mut self, target: Option<EnclaveId>) -> Result<MailboxMsg, MonitorError> {
        match target {
            None => self.os_mailbox.take().ok_or(MonitorError::MailboxEmpty),
            Some(id) => self
                .enclaves
                .get_mut(&id)
                .ok_or(MonitorError::UnknownEnclave(id))?
                .mailbox
                .take()
                .ok_or(MonitorError::MailboxEmpty),
        }
    }

    /// The privileged memcopy (Section 6.2): copies `len` bytes from an
    /// OS-owned physical buffer into an enclave virtual address (an
    /// agreed buffer pair). The copy is performed by the monitor,
    /// non-speculatively, touching only the two buffers.
    pub fn memcopy_to_enclave(
        &mut self,
        machine: &mut Machine,
        id: EnclaveId,
        os_buf: PhysAddr,
        enclave_va: u64,
        len: u64,
    ) -> Result<(), MonitorError> {
        let enclave = self
            .enclaves
            .get(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        let aspace = loader::AddressSpace::probe(enclave.satp);
        for off in (0..len).step_by(8) {
            let value = machine
                .mem()
                .phys
                .read_u64(PhysAddr::new(os_buf.raw() + off));
            let pa = aspace
                .translate(&machine.mem().phys, enclave_va + off)
                .ok_or(MonitorError::LoadFailed)?;
            // Invariant: the destination stays inside the enclave's regions.
            let dest_region = self.region_map.region_of(PhysAddr::new(pa));
            debug_assert!(enclave.regions.allows(dest_region));
            machine.mem_mut().phys.write_u64(PhysAddr::new(pa), value);
        }
        Ok(())
    }

    /// The reverse memcopy: enclave buffer to OS physical buffer.
    pub fn memcopy_from_enclave(
        &mut self,
        machine: &mut Machine,
        id: EnclaveId,
        enclave_va: u64,
        os_buf: PhysAddr,
        len: u64,
    ) -> Result<(), MonitorError> {
        let enclave = self
            .enclaves
            .get(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        let aspace = loader::AddressSpace::probe(enclave.satp);
        for off in (0..len).step_by(8) {
            let pa = aspace
                .translate(&machine.mem().phys, enclave_va + off)
                .ok_or(MonitorError::LoadFailed)?;
            let value = machine.mem().phys.read_u64(PhysAddr::new(pa));
            machine
                .mem_mut()
                .phys
                .write_u64(PhysAddr::new(os_buf.raw() + off), value);
        }
        Ok(())
    }

    /// Produces an attestation report for an enclave.
    pub fn attest(&self, id: EnclaveId) -> Result<Attestation, MonitorError> {
        let enclave = self
            .enclaves
            .get(&id)
            .ok_or(MonitorError::UnknownEnclave(id))?;
        let mut signed = enclave.measurement.0.to_vec();
        signed.extend_from_slice(b"MI6-monitor-signing-key");
        Ok(Attestation {
            measurement: enclave.measurement,
            signature: sha256(&signed),
        })
    }

    /// Checks the global non-overlap invariant (every region has exactly
    /// one owner; every enclave's bitvector matches the owner table).
    /// Used by tests and debug assertions.
    pub fn check_invariants(&self) -> bool {
        for (i, owner) in self.owners.iter().enumerate() {
            if let RegionOwner::Enclave(id) = owner {
                let Some(e) = self.enclaves.get(id) else {
                    return false;
                };
                if !e.regions.allows(RegionId(i as u32)) {
                    return false;
                }
            }
        }
        for (id, e) in &self.enclaves {
            for r in e.regions.iter() {
                if self.owners[r.index()] != RegionOwner::Enclave(*id) {
                    return false;
                }
            }
            // No two enclaves share a region.
            for (id2, e2) in &self.enclaves {
                if id != id2 && e.regions.overlaps(e2.regions) {
                    return false;
                }
            }
        }
        true
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for EnclaveId {
    fn save(&self, w: &mut SnapWriter) {
        w.u32(self.0);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(EnclaveId(r.u32()?))
    }
}

impl SnapState for RegionOwner {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            RegionOwner::Monitor => w.u8(0),
            RegionOwner::Os => w.u8(1),
            RegionOwner::Free => w.u8(2),
            RegionOwner::Enclave(id) => {
                w.u8(3);
                id.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => RegionOwner::Monitor,
            1 => RegionOwner::Os,
            2 => RegionOwner::Free,
            3 => RegionOwner::Enclave(EnclaveId::load(r)?),
            other => {
                return Err(SnapError::BadValue {
                    what: format!("RegionOwner tag {other}"),
                })
            }
        })
    }
}

impl SnapState for EnclaveState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            EnclaveState::Created => w.u8(0),
            EnclaveState::Running { core } => {
                w.u8(1);
                w.usize(core);
            }
            EnclaveState::Stopped => w.u8(2),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => EnclaveState::Created,
            1 => EnclaveState::Running { core: r.usize()? },
            2 => EnclaveState::Stopped,
            other => {
                return Err(SnapError::BadValue {
                    what: format!("EnclaveState tag {other}"),
                })
            }
        })
    }
}

impl SnapState for MailboxMsg {
    fn save(&self, w: &mut SnapWriter) {
        self.from.save(w);
        w.bytes(&self.data);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MailboxMsg {
            from: SnapState::load(r)?,
            data: r.bytes(64)?.try_into().expect("fixed-size mailbox"),
        })
    }
}

impl SnapState for Enclave {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.regions.0);
        self.state.save(w);
        w.bytes(&self.measurement.0);
        w.u64(self.entry);
        w.u64(self.sp);
        w.u64(self.satp);
        self.mailbox.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Enclave {
            regions: RegionBitvec(r.u64()?),
            state: EnclaveState::load(r)?,
            measurement: Digest(r.bytes(32)?.try_into().expect("fixed-size digest")),
            entry: r.u64()?,
            sp: r.u64()?,
            satp: r.u64()?,
            mailbox: SnapState::load(r)?,
        })
    }
}

impl SecurityMonitor {
    /// Serializes the monitor's bookkeeping: region ownership, every
    /// enclave's metadata and mailbox, the OS mailbox, and the ID counter.
    /// Enclaves are written in ascending ID order so identical states
    /// always produce identical bytes.
    pub fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"MONI");
        self.owners.save(w);
        let mut ids: Vec<EnclaveId> = self.enclaves.keys().copied().collect();
        ids.sort_unstable();
        w.usize(ids.len());
        for id in ids {
            id.save(w);
            self.enclaves[&id].save(w);
        }
        self.os_mailbox.save(w);
        w.u32(self.next_id);
    }

    /// Restores state saved by [`SecurityMonitor::save_state`]. The
    /// monitor must have been created against a machine with the same
    /// DRAM-region layout.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on corrupt input or a region-count mismatch.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.expect_tag(b"MONI")?;
        let owners: Vec<RegionOwner> = SnapState::load(r)?;
        if owners.len() != self.owners.len() {
            return Err(SnapError::ConfigMismatch {
                what: format!(
                    "monitor covers {} DRAM regions, snapshot has {}",
                    self.owners.len(),
                    owners.len()
                ),
            });
        }
        self.owners = owners;
        let n = r.len()?;
        let mut enclaves = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = EnclaveId::load(r)?;
            enclaves.insert(id, Enclave::load(r)?);
        }
        self.enclaves = enclaves;
        self.os_mailbox = SnapState::load(r)?;
        self.next_id = r.u32()?;
        Ok(())
    }
}
