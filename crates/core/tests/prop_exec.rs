//! Property tests: the functional execution semantics match independent
//! reference implementations.
//!
//! Dependency-free property testing: each property is checked over a
//! deterministic stream of pseudo-random inputs (splitmix64) plus the
//! classic boundary values, which is where these semantics actually break.

use mi6_core::exec;
use mi6_isa::{Inst, MemWidth, Reg};

const CASES: usize = 2_000;

/// Interesting boundary values checked in every pairwise property.
const EDGES: &[u64] = &[
    0,
    1,
    2,
    u64::MAX,
    u64::MAX - 1,
    i64::MAX as u64,
    i64::MIN as u64,
    0x8000_0000,
    0x7fff_ffff,
    0xffff_ffff,
];

struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drives `check` over every pair of edge values plus `CASES` random pairs.
fn for_pairs(seed: u64, mut check: impl FnMut(u64, u64)) {
    for &a in EDGES {
        for &b in EDGES {
            check(a, b);
        }
    }
    let mut rng = SplitMix64(seed);
    for _ in 0..CASES {
        check(rng.next_u64(), rng.next_u64());
    }
}

fn r3(f: fn(Reg, Reg, Reg) -> Inst) -> Inst {
    f(Reg::A0, Reg::A1, Reg::A2)
}

#[test]
fn div_rem_identity() {
    // RISC-V guarantees: a == div(a,b)*b + rem(a,b) for all inputs
    // (including b == 0 and the signed-overflow case).
    for_pairs(1, |a, b| {
        let d = exec::eval(&r3(|rd, rs1, rs2| Inst::Div { rd, rs1, rs2 }), a, b, 0);
        let r = exec::eval(&r3(|rd, rs1, rs2| Inst::Rem { rd, rs1, rs2 }), a, b, 0);
        assert_eq!(d.wrapping_mul(b).wrapping_add(r), a, "signed a={a} b={b}");
        let du = exec::eval(&r3(|rd, rs1, rs2| Inst::Divu { rd, rs1, rs2 }), a, b, 0);
        let ru = exec::eval(&r3(|rd, rs1, rs2| Inst::Remu { rd, rs1, rs2 }), a, b, 0);
        assert_eq!(
            du.wrapping_mul(b).wrapping_add(ru),
            a,
            "unsigned a={a} b={b}"
        );
    });
}

#[test]
fn mulh_matches_i128() {
    for_pairs(2, |a, b| {
        let got = exec::eval(&r3(|rd, rs1, rs2| Inst::Mulh { rd, rs1, rs2 }), a, b, 0);
        let want = (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64;
        assert_eq!(got, want, "a={a} b={b}");
    });
}

#[test]
fn movz_movk_compose_any_constant() {
    for_pairs(3, |value, _| {
        // Building a value with movz + 3 movk always reproduces it.
        let mut reg = exec::eval(
            &Inst::Movz {
                rd: Reg::A0,
                imm16: value as u16,
                sh16: 0,
            },
            0,
            0,
            0,
        );
        for sh16 in 1..4u8 {
            reg = exec::eval(
                &Inst::Movk {
                    rd: Reg::A0,
                    imm16: (value >> (16 * sh16)) as u16,
                    sh16,
                },
                reg,
                0,
                0,
            );
        }
        assert_eq!(reg, value);
    });
}

#[test]
fn load_extension_idempotent() {
    for_pairs(4, |raw, sel| {
        let signed = sel & 1 != 0;
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            let inst = Inst::Load {
                rd: Reg::A0,
                rs1: Reg::A1,
                off: 0,
                width,
                signed,
            };
            let once = exec::extend_load(&inst, raw);
            let twice = exec::extend_load(&inst, once);
            assert_eq!(once, twice, "width {width:?} raw {raw:#x}");
        }
    });
}

#[test]
fn shifts_match_reference() {
    for_pairs(5, |a, sel| {
        let sh = (sel % 64) as u8;
        let sll = exec::eval(
            &Inst::Slli {
                rd: Reg::A0,
                rs1: Reg::A1,
                sh,
            },
            a,
            0,
            0,
        );
        assert_eq!(sll, a << sh);
        let srl = exec::eval(
            &Inst::Srli {
                rd: Reg::A0,
                rs1: Reg::A1,
                sh,
            },
            a,
            0,
            0,
        );
        assert_eq!(srl, a >> sh);
        let sra = exec::eval(
            &Inst::Srai {
                rd: Reg::A0,
                rs1: Reg::A1,
                sh,
            },
            a,
            0,
            0,
        );
        assert_eq!(sra, ((a as i64) >> sh) as u64);
    });
}
