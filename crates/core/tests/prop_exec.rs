//! Property tests: the functional execution semantics match independent
//! reference implementations.

use mi6_core::exec;
use mi6_isa::{Inst, MemWidth, Reg};
use proptest::prelude::*;

fn r3(f: fn(Reg, Reg, Reg) -> Inst) -> Inst {
    f(Reg::A0, Reg::A1, Reg::A2)
}

proptest! {
    #[test]
    fn div_rem_identity(a in any::<u64>(), b in any::<u64>()) {
        // RISC-V guarantees: a == div(a,b)*b + rem(a,b) for all inputs
        // (including b == 0 and the signed-overflow case).
        let d = exec::eval(&r3(|rd, rs1, rs2| Inst::Div { rd, rs1, rs2 }), a, b, 0);
        let r = exec::eval(&r3(|rd, rs1, rs2| Inst::Rem { rd, rs1, rs2 }), a, b, 0);
        prop_assert_eq!(d.wrapping_mul(b).wrapping_add(r), a);
        let du = exec::eval(&r3(|rd, rs1, rs2| Inst::Divu { rd, rs1, rs2 }), a, b, 0);
        let ru = exec::eval(&r3(|rd, rs1, rs2| Inst::Remu { rd, rs1, rs2 }), a, b, 0);
        prop_assert_eq!(du.wrapping_mul(b).wrapping_add(ru), a);
    }

    #[test]
    fn mulh_matches_i128(a in any::<u64>(), b in any::<u64>()) {
        let got = exec::eval(&r3(|rd, rs1, rs2| Inst::Mulh { rd, rs1, rs2 }), a, b, 0);
        let want = (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn movz_movk_compose_any_constant(value in any::<u64>()) {
        // Building a value with movz + 3 movk always reproduces it.
        let mut reg = exec::eval(
            &Inst::Movz { rd: Reg::A0, imm16: value as u16, sh16: 0 },
            0, 0, 0,
        );
        for sh16 in 1..4u8 {
            reg = exec::eval(
                &Inst::Movk { rd: Reg::A0, imm16: (value >> (16 * sh16)) as u16, sh16 },
                reg, 0, 0,
            );
        }
        prop_assert_eq!(reg, value);
    }

    #[test]
    fn load_extension_idempotent(raw in any::<u64>(), signed in any::<bool>()) {
        for width in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            let inst = Inst::Load { rd: Reg::A0, rs1: Reg::A1, off: 0, width, signed };
            let once = exec::extend_load(&inst, raw);
            let twice = exec::extend_load(&inst, once);
            prop_assert_eq!(once, twice, "width {:?}", width);
        }
    }

    #[test]
    fn shifts_match_reference(a in any::<u64>(), sh in 0u8..64) {
        let sll = exec::eval(&Inst::Slli { rd: Reg::A0, rs1: Reg::A1, sh }, a, 0, 0);
        prop_assert_eq!(sll, a << sh);
        let srl = exec::eval(&Inst::Srli { rd: Reg::A0, rs1: Reg::A1, sh }, a, 0, 0);
        prop_assert_eq!(srl, a >> sh);
        let sra = exec::eval(&Inst::Srai { rd: Reg::A0, rs1: Reg::A1, sh }, a, 0, 0);
        prop_assert_eq!(sra, ((a as i64) >> sh) as u64);
    }
}
