//! End-to-end pipeline tests: assemble small programs, run them on the
//! core + memory hierarchy, and check architectural results and
//! microarchitectural counters.

use mi6_core::{Core, CoreConfig, SecurityConfig};
use mi6_isa::csr;
use mi6_isa::{Assembler, Inst, PhysAddr, PrivLevel, Reg};
use mi6_mem::{MemConfig, MemSystem, Port};

const BOOT: u64 = 0x1000;

/// Runs an assembled machine-mode program until `ebreak` (or a cycle cap).
fn run(asm: &Assembler, sec: SecurityConfig) -> (Core, MemSystem, u64) {
    run_with(asm, sec, |_core, _mem| {})
}

fn run_with(
    asm: &Assembler,
    sec: SecurityConfig,
    setup: impl FnOnce(&mut Core, &mut MemSystem),
) -> (Core, MemSystem, u64) {
    let words = asm.assemble().expect("assembles");
    let mut mem = MemSystem::new(MemConfig::paper_base(), 1);
    mem.phys.load_words(PhysAddr::new(asm.base()), &words);
    let mut core = Core::new(0, CoreConfig::paper(), sec);
    core.reset_to(asm.base(), PrivLevel::Machine);
    setup(&mut core, &mut mem);
    let mut now = 0u64;
    while !core.halted {
        core.tick(now, &mut mem);
        mem.tick(now);
        now += 1;
        assert!(now < 3_000_000, "program did not halt");
    }
    (core, mem, now)
}

#[test]
fn arithmetic_loop_computes_sum() {
    // sum = 1 + 2 + ... + 100 = 5050
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 100); // counter
    asm.li(Reg::A1, 0); // sum
    let top = asm.here();
    asm.push(Inst::add(Reg::A1, Reg::A1, Reg::A0));
    asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
    asm.bnez(Reg::A0, top);
    asm.push(Inst::Ebreak);
    let (core, _, cycles) = run(&asm, SecurityConfig::insecure());
    assert_eq!(core.regs[Reg::A1.index() as usize], 5050);
    assert!(core.stats.committed_instructions >= 303);
    assert!(cycles > 0);
    // The loop-closing branch trains through its history warmup (each new
    // local/global history value starts at a weakly-not-taken counter, so
    // the first ~a dozen iterations can mispredict) and then predicts
    // perfectly.
    assert!(
        core.stats.branch_mispredicts < 25,
        "got {}",
        core.stats.branch_mispredicts
    );
}

#[test]
fn mul_div_results() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 7);
    asm.li(Reg::A1, 6);
    asm.push(Inst::Mul {
        rd: Reg::A2,
        rs1: Reg::A0,
        rs2: Reg::A1,
    });
    asm.push(Inst::Div {
        rd: Reg::A3,
        rs1: Reg::A2,
        rs2: Reg::A0,
    });
    asm.push(Inst::Rem {
        rd: Reg::A4,
        rs1: Reg::A2,
        rs2: Reg::A1,
    });
    asm.push(Inst::Ebreak);
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    assert_eq!(core.regs[Reg::A2.index() as usize], 42);
    assert_eq!(core.regs[Reg::A3.index() as usize], 6);
    assert_eq!(core.regs[Reg::A4.index() as usize], 0);
}

#[test]
fn store_load_forwarding() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::SP, 0x10_0000);
    asm.li(Reg::A0, 0xdead_beef);
    asm.push(Inst::sd(Reg::A0, Reg::SP, 0));
    asm.push(Inst::ld(Reg::A1, Reg::SP, 0)); // forwarded from SQ
    asm.push(Inst::sd(Reg::A1, Reg::SP, 8));
    asm.push(Inst::ld(Reg::A2, Reg::SP, 8));
    asm.push(Inst::Ebreak);
    let (core, mem, _) = run(&asm, SecurityConfig::insecure());
    assert_eq!(core.regs[Reg::A1.index() as usize], 0xdead_beef);
    assert_eq!(core.regs[Reg::A2.index() as usize], 0xdead_beef);
    assert_eq!(mem.phys.read_u64(PhysAddr::new(0x10_0000)), 0xdead_beef);
    assert_eq!(mem.phys.read_u64(PhysAddr::new(0x10_0008)), 0xdead_beef);
}

#[test]
fn partial_width_store_load() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::SP, 0x10_0000);
    asm.li(Reg::A0, 0x1122_3344_5566_7788);
    asm.push(Inst::sd(Reg::A0, Reg::SP, 0));
    // lb of byte 1 (0x77), sign extended
    asm.push(Inst::Load {
        rd: Reg::A1,
        rs1: Reg::SP,
        off: 1,
        width: mi6_isa::MemWidth::B,
        signed: true,
    });
    // lhu of bytes 2..4 (0x5566)
    asm.push(Inst::Load {
        rd: Reg::A2,
        rs1: Reg::SP,
        off: 2,
        width: mi6_isa::MemWidth::H,
        signed: false,
    });
    asm.push(Inst::Ebreak);
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    assert_eq!(core.regs[Reg::A1.index() as usize], 0x77);
    assert_eq!(core.regs[Reg::A2.index() as usize], 0x5566);
}

#[test]
fn data_dependent_branches_mispredict() {
    // Branch on bit i of an LFSR-ish pattern: unpredictable, so the
    // mispredict counter must be substantial.
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 2000); // iterations
    asm.li(Reg::A1, 0x9e3779b97f4a7c15); // "random" bits
    asm.li(Reg::A3, 0);
    let top = asm.here();
    let skip = asm.new_label();
    asm.push(Inst::Andi {
        rd: Reg::A2,
        rs1: Reg::A1,
        imm: 1,
    });
    // rotate the pattern
    asm.push(Inst::Srli {
        rd: Reg::T0,
        rs1: Reg::A1,
        sh: 1,
    });
    asm.push(Inst::Slli {
        rd: Reg::T1,
        rs1: Reg::A1,
        sh: 63,
    });
    asm.push(Inst::Or {
        rd: Reg::A1,
        rs1: Reg::T0,
        rs2: Reg::T1,
    });
    asm.beqz(Reg::A2, skip);
    asm.push(Inst::addi(Reg::A3, Reg::A3, 1));
    asm.bind(skip);
    asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
    asm.bnez(Reg::A0, top);
    asm.push(Inst::Ebreak);
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    // The pattern has period 64 with mixed outcomes; the tournament
    // predictor learns parts of it but the warmup and aliasing leave far
    // more mispredicts than a biased loop.
    assert!(
        core.stats.branch_mispredicts > 30,
        "got {}",
        core.stats.branch_mispredicts
    );
    // Architectural check: count the 1-bits actually encountered.
    let mut pattern: u64 = 0x9e3779b97f4a7c15;
    let mut expect = 0u64;
    for _ in 0..2000 {
        expect += pattern & 1;
        pattern = pattern.rotate_right(1);
    }
    assert_eq!(core.regs[Reg::A3.index() as usize], expect);
}

#[test]
fn biased_branches_predict_well() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 5000);
    let top = asm.here();
    asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
    asm.bnez(Reg::A0, top);
    asm.push(Inst::Ebreak);
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    let mpki = core.stats.mispredicts_per_kinst();
    assert!(mpki < 3.0, "biased loop mpki {mpki}");
}

#[test]
fn call_return_uses_ras() {
    let mut asm = Assembler::new(BOOT);
    let func = asm.new_label();
    asm.li(Reg::A0, 200);
    asm.li(Reg::A1, 0);
    let top = asm.here();
    asm.call(func);
    asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
    asm.bnez(Reg::A0, top);
    asm.push(Inst::Ebreak);
    asm.bind(func);
    asm.push(Inst::addi(Reg::A1, Reg::A1, 1));
    asm.ret();
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    assert_eq!(core.regs[Reg::A1.index() as usize], 200);
    // Returns predicted by the RAS: very few jump mispredicts.
    assert!(
        core.stats.jump_mispredicts < 10,
        "got {}",
        core.stats.jump_mispredicts
    );
}

#[test]
fn purge_stalls_at_least_512_cycles() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 1);
    asm.push(Inst::Purge);
    asm.push(Inst::Ebreak);
    let (core, _, cycles) = run(&asm, SecurityConfig::mi6());
    assert_eq!(core.stats.purges, 1);
    assert!(core.stats.flush_stall_cycles >= 512);
    assert!(cycles >= 512);
}

#[test]
fn purge_resets_branch_predictor() {
    // A history-dependent (alternating) branch trains up, then a purge
    // wipes the predictor; the relearning phase must cost clearly more
    // mispredicts than continuing warm.
    fn loop_then(purge: bool) -> u64 {
        let mut asm = Assembler::new(BOOT);
        asm.li(Reg::S0, 4); // phases
        let phase = asm.here();
        asm.li(Reg::A0, 400);
        asm.li(Reg::S2, 0); // toggler
        let top = asm.here();
        let skip = asm.new_label();
        asm.push(Inst::Xori {
            rd: Reg::S2,
            rs1: Reg::S2,
            imm: 1,
        });
        asm.beqz(Reg::S2, skip); // alternating branch: needs history
        asm.push(Inst::addi(Reg::A4, Reg::A4, 1));
        asm.bind(skip);
        asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
        asm.bnez(Reg::A0, top);
        if purge {
            asm.push(Inst::Purge);
        } else {
            asm.push(Inst::NOP);
        }
        asm.push(Inst::addi(Reg::S0, Reg::S0, -1));
        asm.bnez(Reg::S0, phase);
        asm.push(Inst::Ebreak);
        let (core, _, _) = run(&asm, SecurityConfig::mi6());
        core.stats.branch_mispredicts
    }
    let with_purge = loop_then(true);
    let without = loop_then(false);
    assert!(
        with_purge > without + 10,
        "purge {with_purge} vs warm {without}"
    );
}

#[test]
fn purge_requires_machine_mode_and_region_fault_traps() {
    // Drop to user mode via mret into user code that tries `purge`: must
    // trap back to machine mode with IllegalInst. Handler and user code
    // live at fixed addresses.
    let mut asm = Assembler::new(BOOT);
    let handler_addr = 0x2000u64;
    let user_addr = 0x3000u64;
    asm.li(Reg::T0, handler_addr);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MTVEC,
    });
    asm.li(Reg::T0, user_addr);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MEPC,
    });
    // MPP stays 0 (user) after reset; mret drops to user.
    asm.push(Inst::Mret);
    let boot_words = asm.assemble().unwrap();

    let mut user_asm = Assembler::new(user_addr);
    user_asm.push(Inst::Purge); // illegal in user mode
    user_asm.push(Inst::Ebreak);
    let user_words = user_asm.assemble().unwrap();

    let mut handler_asm = Assembler::new(handler_addr);
    // read mcause into a0, halt
    handler_asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rs,
        rd: Reg::A0,
        rs1: Reg::ZERO,
        csr: csr::MCAUSE,
    });
    handler_asm.push(Inst::Ebreak);
    let handler_words = handler_asm.assemble().unwrap();

    let mut mem = MemSystem::new(MemConfig::paper_base(), 1);
    mem.phys.load_words(PhysAddr::new(BOOT), &boot_words);
    mem.phys.load_words(PhysAddr::new(user_addr), &user_words);
    mem.phys
        .load_words(PhysAddr::new(handler_addr), &handler_words);
    let mut core = Core::new(0, CoreConfig::paper(), SecurityConfig::insecure());
    core.reset_to(BOOT, PrivLevel::Machine);
    let mut now = 0;
    while !core.halted {
        core.tick(now, &mut mem);
        mem.tick(now);
        now += 1;
        assert!(now < 1_000_000);
    }
    assert_eq!(
        core.regs[Reg::A0.index() as usize],
        mi6_isa::Exception::IllegalInst.code()
    );
    assert_eq!(core.stats.traps, 1);
}

#[test]
fn region_check_suppresses_and_faults() {
    // With region checks on and mregions limited to region 0, a *user*
    // load from region 1 (at 32 MiB) must raise a DramRegionFault.
    // (Machine mode bypasses the check — Section 4.1 — so the violating
    // access runs in user mode with bare translation.)
    let handler_addr = 0x2000u64;
    let user_addr = 0x3000u64;
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::T0, handler_addr);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MTVEC,
    });
    asm.li(Reg::T1, 1); // allow only region 0
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T1,
        csr: csr::MREGIONS,
    });
    asm.li(Reg::T0, user_addr);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MEPC,
    });
    asm.push(Inst::Mret); // MPP=0 after reset: drop to user, bare satp
    let words = asm.assemble().unwrap();

    let mut user_asm = Assembler::new(user_addr);
    user_asm.li(Reg::A0, 32 << 20); // region 1 base
    user_asm.push(Inst::ld(Reg::A1, Reg::A0, 0));
    user_asm.push(Inst::Ebreak);
    let user_words = user_asm.assemble().unwrap();

    let mut handler_asm = Assembler::new(handler_addr);
    handler_asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rs,
        rd: Reg::A5,
        rs1: Reg::ZERO,
        csr: csr::MCAUSE,
    });
    handler_asm.push(Inst::Ebreak);
    let handler_words = handler_asm.assemble().unwrap();

    let mut sec = SecurityConfig::mi6();
    sec.flush_on_trap = false; // isolate the region-check behaviour
    sec.machine_mode_guard = false;
    let mut mem = MemSystem::new(MemConfig::paper_base(), 1);
    mem.phys.load_words(PhysAddr::new(BOOT), &words);
    mem.phys.load_words(PhysAddr::new(user_addr), &user_words);
    mem.phys
        .load_words(PhysAddr::new(handler_addr), &handler_words);
    let mut core = Core::new(0, CoreConfig::paper(), sec);
    core.reset_to(BOOT, PrivLevel::Machine);
    let mut now = 0;
    while !core.halted {
        core.tick(now, &mut mem);
        mem.tick(now);
        now += 1;
        assert!(now < 1_000_000);
    }
    assert_eq!(
        core.regs[Reg::A5.index() as usize],
        mi6_isa::Exception::DramRegionFault.code()
    );
    assert_eq!(core.stats.region_faults, 1);
    assert!(core.stats.region_suppressed >= 1);
}

#[test]
fn nonspec_is_much_slower_on_memory_code() {
    fn run_loads(sec: SecurityConfig) -> u64 {
        let mut asm = Assembler::new(BOOT);
        asm.li(Reg::SP, 0x10_0000);
        asm.li(Reg::A0, 500);
        let top = asm.here();
        asm.push(Inst::ld(Reg::A1, Reg::SP, 0));
        asm.push(Inst::ld(Reg::A2, Reg::SP, 8));
        asm.push(Inst::ld(Reg::A3, Reg::SP, 16));
        asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
        asm.bnez(Reg::A0, top);
        asm.push(Inst::Ebreak);
        let (_, _, cycles) = run(&asm, sec);
        cycles
    }
    let base = run_loads(SecurityConfig::insecure());
    let nonspec = run_loads(SecurityConfig {
        nonspec_all_modes: true,
        ..SecurityConfig::insecure()
    });
    assert!(
        nonspec > base * 2,
        "nonspec {nonspec} vs base {base} — expected large slowdown"
    );
}

#[test]
fn machine_mode_fetch_window_enforced() {
    // With the guard on and a fetch window covering only the boot code, a
    // jump outside the window must fault.
    let handler_addr = 0x2000u64;
    let outside = 0x5000u64;
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::T0, handler_addr);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MTVEC,
    });
    asm.li(Reg::T0, BOOT);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MFETCHBASE,
    });
    asm.li(Reg::T0, 0x3000);
    asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rw,
        rd: Reg::ZERO,
        rs1: Reg::T0,
        csr: csr::MFETCHBOUND,
    });
    asm.li(Reg::T1, outside);
    asm.push(Inst::Jalr {
        rd: Reg::ZERO,
        rs1: Reg::T1,
        off: 0,
    });
    let words = asm.assemble().unwrap();

    let mut handler_asm = Assembler::new(handler_addr);
    handler_asm.push(Inst::Csr {
        op: mi6_isa::CsrOp::Rs,
        rd: Reg::A5,
        rs1: Reg::ZERO,
        csr: csr::MCAUSE,
    });
    handler_asm.push(Inst::Ebreak);
    let handler_words = handler_asm.assemble().unwrap();

    let mut out_asm = Assembler::new(outside);
    out_asm.push(Inst::Ebreak); // must never retire
    let out_words = out_asm.assemble().unwrap();

    let mut sec = SecurityConfig::mi6();
    sec.flush_on_trap = false;
    sec.region_checks = false;
    let mut mem = MemSystem::new(MemConfig::paper_base(), 1);
    mem.phys.load_words(PhysAddr::new(BOOT), &words);
    mem.phys
        .load_words(PhysAddr::new(handler_addr), &handler_words);
    mem.phys.load_words(PhysAddr::new(outside), &out_words);
    let mut core = Core::new(0, CoreConfig::paper(), sec);
    core.reset_to(BOOT, PrivLevel::Machine);
    let mut now = 0;
    while !core.halted {
        core.tick(now, &mut mem);
        mem.tick(now);
        now += 1;
        assert!(now < 1_000_000);
    }
    // Wait: the handler itself is outside [BOOT, 0x3000)? 0x2000 is inside.
    assert_eq!(
        core.regs[Reg::A5.index() as usize],
        mi6_isa::Exception::InstAccessFault.code()
    );
}

#[test]
fn memory_order_violation_recovers() {
    // A load issued before an older store to the same address resolves
    // must be squashed and re-executed with the right value. The store's
    // address arrives late through a serial divide chain; an outer loop
    // warms the I-cache so fetch latency doesn't serialize the pair.
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::SP, 0x10_0000);
    asm.li(Reg::S1, 3); // outer iterations
    let outer = asm.here();
    asm.li(Reg::A0, 7);
    asm.push(Inst::sd(Reg::A0, Reg::SP, 0));
    asm.push(Inst::Fence); // drain the store buffer between rounds
                           // T0 = SP, computed slowly: T2 = ((3/1)/1)/1... (16 cycles per div).
    asm.li(Reg::T2, 3);
    asm.li(Reg::T3, 1);
    for _ in 0..5 {
        asm.push(Inst::Div {
            rd: Reg::T2,
            rs1: Reg::T2,
            rs2: Reg::T3,
        });
    }
    asm.push(Inst::add(Reg::T0, Reg::SP, Reg::T2));
    asm.push(Inst::addi(Reg::T0, Reg::T0, -3));
    asm.li(Reg::A1, 42);
    asm.push(Inst::sd(Reg::A1, Reg::T0, 0)); // store to 0x10_0000, late addr
    asm.push(Inst::ld(Reg::A2, Reg::SP, 0)); // younger load, fast addr
    asm.push(Inst::addi(Reg::S1, Reg::S1, -1));
    asm.bnez(Reg::S1, outer);
    asm.push(Inst::Ebreak);
    let (core, _, _) = run(&asm, SecurityConfig::insecure());
    assert_eq!(
        core.regs[Reg::A2.index() as usize],
        42,
        "load must observe the older store"
    );
    assert!(
        core.stats.mem_order_violations >= 1,
        "got {} violations",
        core.stats.mem_order_violations
    );
}

#[test]
fn flush_on_trap_charges_stall_and_colds_the_caches() {
    // Measure a single ecall round trip with and without flush-on-trap.
    fn trap_cost(flush: bool) -> u64 {
        let handler_addr = 0x2000u64;
        let mut asm = Assembler::new(BOOT);
        asm.li(Reg::T0, handler_addr);
        asm.push(Inst::Csr {
            op: mi6_isa::CsrOp::Rw,
            rd: Reg::ZERO,
            rs1: Reg::T0,
            csr: csr::MTVEC,
        });
        asm.push(Inst::Ecall);
        asm.push(Inst::Ebreak);
        let words = asm.assemble().unwrap();
        let mut handler_asm = Assembler::new(handler_addr);
        // mepc += 4; mret
        handler_asm.push(Inst::Csr {
            op: mi6_isa::CsrOp::Rs,
            rd: Reg::T1,
            rs1: Reg::ZERO,
            csr: csr::MEPC,
        });
        handler_asm.push(Inst::addi(Reg::T1, Reg::T1, 4));
        handler_asm.push(Inst::Csr {
            op: mi6_isa::CsrOp::Rw,
            rd: Reg::ZERO,
            rs1: Reg::T1,
            csr: csr::MEPC,
        });
        handler_asm.push(Inst::Mret);
        let handler_words = handler_asm.assemble().unwrap();
        let sec = SecurityConfig {
            flush_on_trap: flush,
            ..SecurityConfig::insecure()
        };
        let mut mem = MemSystem::new(MemConfig::paper_base(), 1);
        mem.phys.load_words(PhysAddr::new(BOOT), &words);
        mem.phys
            .load_words(PhysAddr::new(handler_addr), &handler_words);
        let mut core = Core::new(0, CoreConfig::paper(), sec);
        core.reset_to(BOOT, PrivLevel::Machine);
        let mut now = 0;
        while !core.halted {
            core.tick(now, &mut mem);
            mem.tick(now);
            now += 1;
            assert!(now < 1_000_000);
        }
        now
    }
    let base = trap_cost(false);
    let flushed = trap_cost(true);
    // Trap entry + mret each trigger a >= 512-cycle purge.
    assert!(
        flushed >= base + 2 * 512,
        "flushed {flushed} vs base {base}"
    );
}

#[test]
fn icache_warmup_visible_in_stats() {
    let mut asm = Assembler::new(BOOT);
    asm.li(Reg::A0, 100);
    let top = asm.here();
    asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
    asm.bnez(Reg::A0, top);
    asm.push(Inst::Ebreak);
    let (_, mem, _) = run(&asm, SecurityConfig::insecure());
    let l1i = mem.l1_stats(0, Port::IFetch);
    assert!(l1i.misses >= 1, "cold I-cache must miss");
    assert!(l1i.hits > l1i.misses * 10, "loop fetches must hit");
}
