//! Core configuration (Figure 4) and the MI6 security toggles.

/// Structural parameters of the out-of-order core. Defaults reproduce the
/// paper's Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Front-end width (fetch/decode/rename per cycle).
    pub fetch_width: usize,
    /// BTB entries (direct mapped).
    pub btb_entries: usize,
    /// Return address stack entries.
    pub ras_entries: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// ROB insert/commit width.
    pub commit_width: usize,
    /// Issue-queue entries per pipeline.
    pub iq_entries: usize,
    /// Load queue entries.
    pub lq_entries: usize,
    /// Store queue entries.
    pub sq_entries: usize,
    /// Store buffer entries (64 B wide each).
    pub sb_entries: usize,
    /// Fetch queue entries between fetch and rename.
    pub fetch_queue: usize,
    /// L1 TLB entries (fully associative), both I and D.
    pub l1_tlb_entries: usize,
    /// Maximum in-flight D-TLB misses.
    pub dtlb_max_misses: usize,
    /// L2 TLB entries.
    pub l2_tlb_entries: usize,
    /// L2 TLB associativity.
    pub l2_tlb_ways: usize,
    /// Translation-cache entries per intermediate walk level.
    pub tcache_entries: usize,
    /// Latency of integer multiply.
    pub mul_latency: u32,
    /// Latency of integer divide (unpipelined).
    pub div_latency: u32,
    /// Latency of FP add/mul.
    pub fp_latency: u32,
    /// Latency of FP divide (unpipelined).
    pub fdiv_latency: u32,
    /// Cycles a full purge of per-core state takes (Section 7.1: the L1
    /// sweep dominates at one line per cycle → 512).
    pub purge_cycles: u32,
}

impl CoreConfig {
    /// The Figure 4 configuration.
    pub const fn paper() -> CoreConfig {
        CoreConfig {
            fetch_width: 2,
            btb_entries: 256,
            ras_entries: 8,
            rob_entries: 80,
            commit_width: 2,
            iq_entries: 16,
            lq_entries: 24,
            sq_entries: 14,
            sb_entries: 4,
            fetch_queue: 8,
            l1_tlb_entries: 32,
            dtlb_max_misses: 4,
            l2_tlb_entries: 1024,
            l2_tlb_ways: 4,
            tcache_entries: 24,
            mul_latency: 4,
            div_latency: 16,
            fp_latency: 4,
            fdiv_latency: 16,
            purge_cycles: 512,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig::paper()
    }
}

/// MI6 security behaviour toggles; the seven evaluation variants are
/// combinations of these (plus LLC knobs in `mi6-mem`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SecurityConfig {
    /// FLUSH variant (Section 7.1): scrub all per-core microarchitectural
    /// state on *every* trap and trap return, not only on `purge`.
    pub flush_on_trap: bool,
    /// NONSPEC variant (Section 7.5): memory instructions rename only when
    /// the ROB is empty, in every privilege mode.
    pub nonspec_all_modes: bool,
    /// MI6 speculation guard (Section 6.2): in machine mode, restrict
    /// instruction fetch to the `mfetchbase..mfetchbound` window and
    /// serialize memory-instruction rename (no speculation). Always on in
    /// MI6; off in the insecure baseline.
    pub machine_mode_guard: bool,
    /// MI6 DRAM-region access checks (Section 5.3): suppress any physical
    /// access outside the `mregions` bitvector; fault when it becomes
    /// non-speculative. Off in the insecure baseline.
    pub region_checks: bool,
}

impl SecurityConfig {
    /// The insecure baseline: everything off.
    pub const fn insecure() -> SecurityConfig {
        SecurityConfig {
            flush_on_trap: false,
            nonspec_all_modes: false,
            machine_mode_guard: false,
            region_checks: false,
        }
    }

    /// Full MI6: flush on protection-domain transitions, machine-mode
    /// guard, and region checks.
    pub const fn mi6() -> SecurityConfig {
        SecurityConfig {
            flush_on_trap: true,
            nonspec_all_modes: false,
            machine_mode_guard: true,
            region_checks: true,
        }
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for CoreConfig {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.fetch_width,
            self.btb_entries,
            self.ras_entries,
            self.rob_entries,
            self.commit_width,
            self.iq_entries,
            self.lq_entries,
            self.sq_entries,
            self.sb_entries,
            self.fetch_queue,
            self.l1_tlb_entries,
            self.dtlb_max_misses,
            self.l2_tlb_entries,
            self.l2_tlb_ways,
            self.tcache_entries,
        ] {
            w.usize(v);
        }
        for v in [
            self.mul_latency,
            self.div_latency,
            self.fp_latency,
            self.fdiv_latency,
            self.purge_cycles,
        ] {
            w.u32(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CoreConfig {
            fetch_width: r.usize()?,
            btb_entries: r.usize()?,
            ras_entries: r.usize()?,
            rob_entries: r.usize()?,
            commit_width: r.usize()?,
            iq_entries: r.usize()?,
            lq_entries: r.usize()?,
            sq_entries: r.usize()?,
            sb_entries: r.usize()?,
            fetch_queue: r.usize()?,
            l1_tlb_entries: r.usize()?,
            dtlb_max_misses: r.usize()?,
            l2_tlb_entries: r.usize()?,
            l2_tlb_ways: r.usize()?,
            tcache_entries: r.usize()?,
            mul_latency: r.u32()?,
            div_latency: r.u32()?,
            fp_latency: r.u32()?,
            fdiv_latency: r.u32()?,
            purge_cycles: r.u32()?,
        })
    }
}

impl SnapState for SecurityConfig {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(self.flush_on_trap);
        w.bool(self.nonspec_all_modes);
        w.bool(self.machine_mode_guard);
        w.bool(self.region_checks);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SecurityConfig {
            flush_on_trap: r.bool()?,
            nonspec_all_modes: r.bool()?,
            machine_mode_guard: r.bool()?,
            region_checks: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_figure_4() {
        let c = CoreConfig::paper();
        assert_eq!(c.fetch_width, 2);
        assert_eq!(c.btb_entries, 256);
        assert_eq!(c.rob_entries, 80);
        assert_eq!(c.lq_entries, 24);
        assert_eq!(c.sq_entries, 14);
        assert_eq!(c.sb_entries, 4);
        assert_eq!(c.l1_tlb_entries, 32);
        assert_eq!(c.l2_tlb_entries, 1024);
        assert_eq!(c.l2_tlb_ways, 4);
        assert_eq!(c.tcache_entries, 24);
        assert_eq!(c.purge_cycles, 512);
    }

    #[test]
    fn security_presets() {
        assert!(!SecurityConfig::insecure().region_checks);
        let s = SecurityConfig::mi6();
        assert!(s.flush_on_trap && s.machine_mode_guard && s.region_checks);
        assert!(!s.nonspec_all_modes);
    }
}
