//! # mi6-core
//!
//! A cycle-level model of the RiscyOO speculative out-of-order core
//! (paper Figure 4) with MI6's hardware modifications:
//!
//! - the `purge` instruction that scrubs all per-core microarchitectural
//!   state (Section 6.1),
//! - flush-on-trap for the FLUSH evaluation variant (Section 7.1),
//! - non-speculative execution of memory instructions for NONSPEC
//!   (Section 7.5),
//! - the machine-mode speculation guard: restricted fetch window and
//!   serialized memory instructions (Section 6.2),
//! - per-core DRAM-region access checks on every physical access,
//!   including speculative fetches, loads, and page-table walks
//!   (Section 5.3).
//!
//! The core talks to the `mi6-mem` hierarchy through its per-core fetch
//! and data ports; the `mi6-soc` crate wires multiple cores and the shared
//! LLC into a machine.

pub mod branch;
pub mod config;
pub mod core;
pub mod cpi;
pub mod exec;
pub mod lap;
pub mod stats;
pub mod tlb;

pub use crate::core::Core;
pub use branch::{Btb, Prediction, Ras, Tournament};
pub use config::{CoreConfig, SecurityConfig};
pub use cpi::{CpiCategory, CpiStack, CPI_CATEGORIES};
pub use lap::{LapProfile, LAP_COMPILED, LAP_STAGES};
pub use stats::CoreStats;
pub use tlb::{Tlb, TlbEntry, TranslationCache};
