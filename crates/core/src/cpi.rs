//! CPI-stack accounting: top-down attribution of every commit slot.
//!
//! Each cycle a core ticks, its `commit_width` commit slots are charged
//! to exactly one category each: `Base` for slots that retired an
//! instruction, and the **oldest blocking reason** for the rest. The
//! oldest-blocking-reason rule is the classic top-down simplification:
//! when fewer than `commit_width` instructions retire, the leftover
//! slots are all charged to whatever is holding up the ROB *head*
//! (the oldest instruction), because nothing younger can retire until
//! it does. Fast-forwarded cycles (the idle-skip optimisation) charge
//! `Idle`, purge/flush drain cycles charge `Flush`, and cycles after a
//! squash while the ROB refills charge the *cause* of the squash via a
//! shadow category.
//!
//! The accounting is always-on and timing-neutral: it only observes
//! decisions the pipeline already made. The invariant
//! `sum(slots) == cycles * commit_width` is enforced by tests on every
//! bench kernel and checked on every emitted stacks artifact by
//! `mi6-obs-check stacks`.
//!
//! Like `StallStats` before it (which this module absorbs — the
//! rename/commit pressure counters live here now so there is a single
//! attribution surface), the stack is deliberately **not** part of
//! [`crate::CoreStats`]: that struct's byte layout is pinned by
//! committed snapshot fixtures, while the stack is runtime-only —
//! never serialized, reset to zero on a snapshot restore. `cycles`
//! counts only cycles observed since attach/restore, so the sum
//! invariant holds even for runs resumed from a warm checkpoint.

/// One commit-slot attribution category.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum CpiCategory {
    /// Slot retired an instruction.
    Base,
    /// Cycle was fast-forwarded by the idle-skip optimisation (no
    /// pipeline work anywhere; typically WFI or a drained machine).
    Idle,
    /// ROB empty with no squash in flight: the frontend could not
    /// supply instructions (fetch latency, decode, redirect penalty).
    Frontend,
    /// Head is still executing (issue wait or functional-unit latency),
    /// or is a serializing system op stalled at commit (wfi, csr).
    Exec,
    /// Head memory op is translating: TLB lookup latency or a page walk.
    Tlb,
    /// Head load is in the L1 access path (hit latency, store-buffer
    /// forward, or cache-port retry).
    MemL1,
    /// Head load missed L1 and was served by the LLC.
    MemLlc,
    /// Head load missed L1 and was served by DRAM.
    MemDram,
    /// Head load is waiting on memory and the serve level is not yet
    /// known. Normally transferred to `MemLlc`/`MemDram` when the fill
    /// arrives; a residual stays here only if the run is cut off (or
    /// the load squashed) mid-miss.
    MemPending,
    /// Head store cannot retire: store buffer full.
    SbFull,
    /// Refill shadow of a branch/jump mispredict squash.
    SquashMispredict,
    /// Refill shadow of a memory-order-violation squash.
    SquashOrder,
    /// Refill shadow of a trap entry or trap return redirect.
    SquashTrap,
    /// Microarchitectural purge/flush drain (MI6 `purge`, flush-on-trap),
    /// including the refill shadow after a purge redirect.
    Flush,
    /// Head load is blocked at the LLC because its core's MSHR quota
    /// (or bank partition) has no free entry (MI6 miss-status quota).
    MshrQuotaDeny,
    /// Head load is blocked because the round-robin LLC arbiter is
    /// granting another core's turn (MI6 secure arbiter).
    ArbDeny,
}

/// Number of categories (length of [`CpiStack::slots`]).
pub const CPI_CATEGORIES: usize = 16;

impl CpiCategory {
    /// Every category, in `slots` index order.
    pub const ALL: [CpiCategory; CPI_CATEGORIES] = [
        CpiCategory::Base,
        CpiCategory::Idle,
        CpiCategory::Frontend,
        CpiCategory::Exec,
        CpiCategory::Tlb,
        CpiCategory::MemL1,
        CpiCategory::MemLlc,
        CpiCategory::MemDram,
        CpiCategory::MemPending,
        CpiCategory::SbFull,
        CpiCategory::SquashMispredict,
        CpiCategory::SquashOrder,
        CpiCategory::SquashTrap,
        CpiCategory::Flush,
        CpiCategory::MshrQuotaDeny,
        CpiCategory::ArbDeny,
    ];

    /// Stable snake_case name, used for JSON keys and metric names.
    pub fn name(self) -> &'static str {
        match self {
            CpiCategory::Base => "base",
            CpiCategory::Idle => "idle",
            CpiCategory::Frontend => "frontend",
            CpiCategory::Exec => "exec",
            CpiCategory::Tlb => "tlb",
            CpiCategory::MemL1 => "mem_l1",
            CpiCategory::MemLlc => "mem_llc",
            CpiCategory::MemDram => "mem_dram",
            CpiCategory::MemPending => "mem_pending",
            CpiCategory::SbFull => "sb_full",
            CpiCategory::SquashMispredict => "squash_mispredict",
            CpiCategory::SquashOrder => "squash_order",
            CpiCategory::SquashTrap => "squash_trap",
            CpiCategory::Flush => "flush",
            CpiCategory::MshrQuotaDeny => "mshr_quota_deny",
            CpiCategory::ArbDeny => "arb_deny",
        }
    }

    /// The name prefixed for the metrics time series (`cpi_base`, ...).
    pub fn metric_name(self) -> &'static str {
        match self {
            CpiCategory::Base => "cpi_base",
            CpiCategory::Idle => "cpi_idle",
            CpiCategory::Frontend => "cpi_frontend",
            CpiCategory::Exec => "cpi_exec",
            CpiCategory::Tlb => "cpi_tlb",
            CpiCategory::MemL1 => "cpi_mem_l1",
            CpiCategory::MemLlc => "cpi_mem_llc",
            CpiCategory::MemDram => "cpi_mem_dram",
            CpiCategory::MemPending => "cpi_mem_pending",
            CpiCategory::SbFull => "cpi_sb_full",
            CpiCategory::SquashMispredict => "cpi_squash_mispredict",
            CpiCategory::SquashOrder => "cpi_squash_order",
            CpiCategory::SquashTrap => "cpi_squash_trap",
            CpiCategory::Flush => "cpi_flush",
            CpiCategory::MshrQuotaDeny => "cpi_mshr_quota_deny",
            CpiCategory::ArbDeny => "cpi_arb_deny",
        }
    }
}

/// How many resolved-load serve levels to remember, as a seq-number
/// window behind the newest recorded load. Covers anything that can
/// still be live in an 80-entry ROB.
const RESOLVED_WINDOW: u64 = 128;

/// Per-core CPI stack plus the structural-pressure event counters that
/// used to live in `StallStats`.
///
/// The pressure counters are *events*, not commit slots: a full
/// ROB/IQ/LQ/SQ implies a non-empty ROB whose head carries the actual
/// (proximate) blocking reason, so charging a slot category for them
/// would double-count. They are kept alongside the stack so the `--json`
/// surface and the stack always come from one place.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CpiStack {
    /// Commit slots per category, indexed by `CpiCategory as usize`.
    pub slots: [u64; CPI_CATEGORIES],
    /// Cycles this stack has accounted (since attach or restore).
    /// Invariant: `slots.sum() == cycles * commit_width`.
    pub cycles: u64,
    /// Cycles rename held a fetched instruction but the ROB was full.
    pub rename_rob_full: u64,
    /// Cycles rename was blocked by a full issue queue.
    pub rename_iq_full: u64,
    /// Cycles rename was blocked by a full load queue.
    pub rename_lq_full: u64,
    /// Cycles rename was blocked by a full store queue.
    pub rename_sq_full: u64,
    /// Cycles commit stalled on a full store buffer.
    pub commit_sb_full: u64,
    /// Slots charged to `MemPending` on behalf of the in-flight head
    /// load `(seq, slots)`, transferred to the real level on resolve.
    pending: Option<(u64, u64)>,
    /// Cause of the most recent squash plus its kill threshold
    /// `(cause, from)` — the `from_seq` passed to `squash_from`, which
    /// killed every `seq >= from`. Empty-ROB and refill cycles are
    /// charged to the cause until post-squash work commits; surviving
    /// older work (`seq < from`) retiring must not end the window.
    shadow: Option<(CpiCategory, u64)>,
    /// Serve levels of recently completed loads `(seq, category)`, so
    /// `WaitValue` head cycles charge the right memory level.
    resolved: Vec<(u64, CpiCategory)>,
}

impl CpiStack {
    /// Rebuilds a stack from its serialized parts (bench JSON round
    /// trips and aggregation; the internal attribution state does not
    /// survive and does not need to).
    pub fn from_raw(cycles: u64, slots: [u64; CPI_CATEGORIES], pressure: [u64; 5]) -> CpiStack {
        CpiStack {
            slots,
            cycles,
            rename_rob_full: pressure[0],
            rename_iq_full: pressure[1],
            rename_lq_full: pressure[2],
            rename_sq_full: pressure[3],
            commit_sb_full: pressure[4],
            ..CpiStack::default()
        }
    }

    /// The five pressure counters in `from_raw` order.
    pub fn pressure(&self) -> [u64; 5] {
        [
            self.rename_rob_full,
            self.rename_iq_full,
            self.rename_lq_full,
            self.rename_sq_full,
            self.commit_sb_full,
        ]
    }

    #[inline]
    pub(crate) fn charge(&mut self, cat: CpiCategory, slots: u64) {
        self.slots[cat as usize] += slots;
    }

    /// Records the cause of a squash. `from` is the same threshold
    /// handed to `squash_from` (everything with `seq >= from` died);
    /// empty-ROB cycles are charged to `cause` until post-squash work
    /// commits.
    #[inline]
    pub(crate) fn note_squash(&mut self, cause: CpiCategory, from: u64) {
        self.shadow = Some((cause, from));
    }

    /// A commit of `seq` ends the squash window only if it is at or
    /// past the kill threshold: killed seqs never retire and survivors
    /// are all older, so any committing `seq >= from` is refilled
    /// post-squash work.
    #[inline]
    pub(crate) fn clear_shadow(&mut self, seq: u64) {
        if matches!(self.shadow, Some((_, from)) if seq >= from) {
            self.shadow = None;
        }
    }

    /// The category for an empty-ROB cycle: the pending squash cause if
    /// one is in flight, otherwise a plain frontend bubble.
    #[inline]
    pub(crate) fn empty_reason(&self) -> CpiCategory {
        self.shadow.map(|(c, _)| c).unwrap_or(CpiCategory::Frontend)
    }

    /// Charges head-load wait slots to `MemPending` and remembers them
    /// against `seq` so they can move to the real serve level later.
    pub(crate) fn charge_wait_mem(&mut self, seq: u64, slots: u64) {
        self.slots[CpiCategory::MemPending as usize] += slots;
        match &mut self.pending {
            Some((s, n)) if *s == seq => *n += slots,
            // A different load's residual stays in MemPending (it was
            // squashed or the head moved on); start tracking the new one.
            _ => self.pending = Some((seq, slots)),
        }
    }

    /// Records where load `seq`'s data actually came from. Any slots
    /// parked in `MemPending` for it are transferred to `cat`.
    pub(crate) fn resolve_serve_level(&mut self, seq: u64, cat: CpiCategory) {
        if let Some((s, n)) = self.pending {
            if s == seq {
                self.slots[CpiCategory::MemPending as usize] -= n;
                self.slots[cat as usize] += n;
                self.pending = None;
            }
        }
        self.resolved.retain(|&(s, _)| s + RESOLVED_WINDOW > seq);
        self.resolved.push((seq, cat));
    }

    /// Serve level of a recently resolved load, for `WaitValue` cycles.
    pub(crate) fn resolved_level(&self, seq: u64) -> Option<CpiCategory> {
        self.resolved
            .iter()
            .rev()
            .find(|&&(s, _)| s == seq)
            .map(|&(_, c)| c)
    }

    /// Total commit slots accounted.
    pub fn total_slots(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Slots for one category.
    pub fn get(&self, cat: CpiCategory) -> u64 {
        self.slots[cat as usize]
    }

    /// The two largest non-`Base` categories, by slots (ties broken by
    /// taxonomy order). Categories with zero slots are skipped.
    pub fn top_blockers(&self) -> Vec<(CpiCategory, u64)> {
        let mut v: Vec<(CpiCategory, u64)> = CpiCategory::ALL
            .iter()
            .filter(|&&c| c != CpiCategory::Base)
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v.truncate(2);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for c in CpiCategory::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert!(c
                .name()
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '_' || ch.is_ascii_digit()));
            assert_eq!(c.metric_name(), format!("cpi_{}", c.name()));
        }
    }

    #[test]
    fn all_order_matches_slot_indices() {
        for (i, c) in CpiCategory::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn pending_transfers_to_resolved_level() {
        let mut s = CpiStack::default();
        s.charge_wait_mem(7, 2);
        s.charge_wait_mem(7, 2);
        assert_eq!(s.get(CpiCategory::MemPending), 4);
        s.resolve_serve_level(7, CpiCategory::MemDram);
        assert_eq!(s.get(CpiCategory::MemPending), 0);
        assert_eq!(s.get(CpiCategory::MemDram), 4);
        assert_eq!(s.resolved_level(7), Some(CpiCategory::MemDram));
        assert_eq!(s.total_slots(), 4);
    }

    #[test]
    fn squashed_pending_stays_in_mem_pending() {
        let mut s = CpiStack::default();
        s.charge_wait_mem(3, 2);
        // A different load takes over the head before 3 resolves.
        s.charge_wait_mem(9, 2);
        s.resolve_serve_level(9, CpiCategory::MemLlc);
        assert_eq!(s.get(CpiCategory::MemPending), 2, "load 3's residual");
        assert_eq!(s.get(CpiCategory::MemLlc), 2);
        assert_eq!(s.total_slots(), 4);
    }

    #[test]
    fn shadow_lifecycle() {
        let mut s = CpiStack::default();
        assert_eq!(s.empty_reason(), CpiCategory::Frontend);
        // Squash killed every seq >= 10.
        s.note_squash(CpiCategory::SquashMispredict, 10);
        assert_eq!(s.empty_reason(), CpiCategory::SquashMispredict);
        // Surviving older work retiring must not end the squash window.
        s.clear_shadow(8);
        s.clear_shadow(9);
        assert_eq!(s.empty_reason(), CpiCategory::SquashMispredict);
        // The first post-squash commit (at or past the threshold) does.
        s.clear_shadow(10);
        assert_eq!(s.empty_reason(), CpiCategory::Frontend);
    }

    #[test]
    fn raw_round_trip() {
        let mut s = CpiStack::default();
        s.charge(CpiCategory::Base, 10);
        s.charge(CpiCategory::Exec, 2);
        s.cycles = 6;
        s.rename_rob_full = 5;
        s.commit_sb_full = 1;
        let r = CpiStack::from_raw(s.cycles, s.slots, s.pressure());
        assert_eq!(r, s);
    }
}
