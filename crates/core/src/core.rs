//! The cycle-level speculative out-of-order core.
//!
//! Models the RiscyOO pipeline of Figure 4: a 2-wide front end with BTB,
//! tournament predictor, and RAS; ROB-based register renaming (the RAT maps
//! architectural registers to in-flight producers); four issue pipelines
//! (2 ALU, 1 MEM, 1 FP/MUL/DIV) with 16-entry issue queues; a 24-entry load
//! queue, 14-entry store queue, and 4-entry store buffer; L1/L2 TLBs with a
//! translation cache and a hardware page-table walker whose accesses go
//! through the data port (and are therefore region-checked, Section 5.3).
//!
//! MI6 behaviours (all toggled by [`SecurityConfig`]):
//! - **purge** (Section 6.1): scrubs BTB, tournament predictor, RAS, both
//!   TLBs, the translation cache, and the L1 caches; the core stalls for
//!   [`CoreConfig::purge_cycles`] while the sweeps run.
//! - **flush-on-trap** (FLUSH variant, Section 7.1): the same scrub on
//!   every trap entry and trap return.
//! - **non-speculative mode** (NONSPEC, Section 7.5): a memory instruction
//!   renames only when the ROB is empty.
//! - **machine-mode speculation guard** (Section 6.2): in machine mode,
//!   fetch is restricted to the monitor's physical window and memory
//!   instructions are serialized as in NONSPEC.
//! - **DRAM-region checks** (Section 5.3): every physical access —
//!   speculative fetch, load, store, or page-walk — outside the `mregions`
//!   bitvector is suppressed, and faults only when it commits.

use crate::branch::{Btb, Prediction, Ras, Tournament};
use crate::config::{CoreConfig, SecurityConfig};
use crate::exec;
use crate::stats::CoreStats;
use crate::tlb::{Tlb, TlbEntry, TranslationCache};
use mi6_isa::csr::CsrFile;
use mi6_isa::paging::{leaf_span, AccessKind, LEVELS};
use mi6_isa::trap::{Exception, TrapCause};
use mi6_isa::{Inst, PageTableEntry, PhysAddr, PrivLevel, Reg, VirtAddr, PAGE_SHIFT};
use mi6_mem::{L1Access, MemSystem, Port, RegionBitvec};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tag bits distinguishing token owners on the two memory ports.
const TOKEN_TAG_SHIFT: u32 = 62;
const TOKEN_LOAD: u64 = 0 << TOKEN_TAG_SHIFT;
const TOKEN_FETCH: u64 = 1 << TOKEN_TAG_SHIFT;
const TOKEN_PTW: u64 = 2 << TOKEN_TAG_SHIFT;
const TOKEN_SB: u64 = 3 << TOKEN_TAG_SHIFT;
const TOKEN_MASK: u64 = (1 << TOKEN_TAG_SHIFT) - 1;

/// Extra latency charged for an L2 TLB hit after an L1 TLB miss.
const L2_TLB_LATENCY: u64 = 4;
/// Front-end refill delay after a redirect (squash or trap).
const REDIRECT_PENALTY: u64 = 2;

/// A source operand: either already a value, or waiting on a producer.
#[derive(Clone, Copy, Debug)]
enum Src {
    Ready(u64),
    Wait { seq: u64, reg: Reg },
}

/// Which issue pipeline an instruction uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pipe {
    Alu0,
    Alu1,
    Mem,
    MulDiv,
}

/// Progress of a memory instruction after it leaves the MEM issue queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemPhase {
    /// Address generation in flight.
    AddrGen { done_at: u64 },
    /// Attempting translation (TLB lookup) this cycle.
    Translate,
    /// L2 TLB hit: waiting out the extra latency.
    TlbLatency { ready_at: u64 },
    /// Page-table walk outstanding.
    WaitWalk,
    /// Translated; loads try forwarding or issue to L1D, stores are done.
    ReadyToAccess,
    /// L1D request outstanding (loads only).
    WaitMem,
    /// Value arrives at `ready_at` (forwarding or L1 hit).
    WaitValue { ready_at: u64 },
    /// Finished.
    Done,
}

#[derive(Clone, Debug)]
struct MemState {
    vaddr: u64,
    paddr: Option<u64>,
    bytes: u64,
    is_store: bool,
    store_data: Option<u64>,
    phase: MemPhase,
}

#[derive(Clone, Copy, Debug)]
struct BranchState {
    pred_taken: bool,
    pred_target: u64,
    tournament: Option<Prediction>,
    /// Set when the branch resolves at execute.
    actual_taken: Option<bool>,
    actual_target: u64,
}

/// Where an instruction is in the backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Waiting in an issue queue.
    InIq,
    /// Executing; result valid at `done_at`.
    Exec { done_at: u64 },
    /// A memory instruction past issue (see [`MemPhase`]).
    MemOp,
    /// Executes at commit (system instructions).
    AtCommit,
    /// Finished; eligible for commit.
    Done,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    stage: Stage,
    srcs: [Option<Src>; 2],
    dest: Option<Reg>,
    /// Previous RAT mapping of `dest`, for squash undo.
    prev_map: Option<u64>,
    result: u64,
    branch: Option<BranchState>,
    mem: Option<MemState>,
    exception: Option<(Exception, u64)>,
}

impl RobEntry {
    fn is_done(&self) -> bool {
        matches!(self.stage, Stage::Done | Stage::AtCommit) || self.exception.is_some()
    }
}

/// A pending or active page-table walk.
#[derive(Clone, Copy, Debug)]
struct WalkReq {
    vpn: u64,
    kind: AccessKind,
    client: WalkClient,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkClient {
    Fetch,
    Rob(u64),
}

#[derive(Clone, Debug)]
struct ActiveWalk {
    req: WalkReq,
    level: usize,
    table: u64,
    /// Outstanding L1D token, or a ready time for an L1 hit.
    pending: WalkPending,
    pte_addr: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkPending {
    Issue,
    Token(u64),
    ReadyAt(u64),
}

/// Outcome of a completed walk, delivered to the client.
#[derive(Clone, Copy, Debug)]
enum WalkResult {
    Ok,
    Fault(Exception),
}

/// Outcome of a TLB lookup attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TranslateOutcome {
    /// Translation available.
    Hit {
        paddr: u64,
        region_ok: bool,
        /// Extra cycles charged (L2 TLB hit latency).
        extra: u64,
    },
    /// A page-table walk is in flight for this requester.
    Walking,
    /// The walker cannot accept another miss; retry next cycle.
    Busy,
}

/// State of the front end's current fetch.
#[derive(Clone, Debug, PartialEq)]
enum FetchState {
    /// Ready to translate and issue.
    Idle,
    /// ITLB walk outstanding.
    WaitWalk,
    /// L2 TLB latency, then issue the I-cache access.
    TlbDelay { ready_at: u64, paddr: u64, region_ok: bool },
    /// I-cache access outstanding (miss).
    WaitICache { token: u64, paddr: u64 },
    /// I-cache hit: deliver at `ready_at`.
    Deliver { ready_at: u64, paddr: u64 },
    /// A poisoned instruction was delivered; wait for redirect.
    Stalled,
}

#[derive(Clone, Debug)]
struct FetchedInst {
    pc: u64,
    inst: Inst,
    pred: Option<BranchState>,
    poison: Option<(Exception, u64)>,
}

/// Purge / flush-on-trap sequencing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PurgePhase {
    /// No purge in progress.
    Idle,
    /// Waiting for in-flight memory traffic and the store buffer to drain.
    DrainMem,
    /// Sweeps running; done at the given cycle.
    Flushing { until: u64 },
}

#[derive(Clone, Copy, Debug)]
struct SbEntry {
    line: u64,
    issued: bool,
    token: u64,
    done: bool,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Core {
    /// Core index (selects the memory-system ports).
    pub id: usize,
    cfg: CoreConfig,
    sec: SecurityConfig,
    /// Committed architectural registers.
    pub regs: [u64; 32],
    /// Committed PC of the next instruction to commit (trap EPC source).
    pub pc: u64,
    /// Current privilege level.
    pub priv_level: PrivLevel,
    /// Control and status registers.
    pub csrs: CsrFile,
    /// True once the core retired an `ebreak` in machine mode — the
    /// simulation halt convention.
    pub halted: bool,

    // Front end.
    btb: Btb,
    tournament: Tournament,
    ras: Ras,
    fetch_pc: u64,
    fetch_state: FetchState,
    fetch_queue: VecDeque<FetchedInst>,
    fetch_stall_until: u64,
    next_fetch_token: u64,
    itlb: Tlb,
    decode_cache: HashMap<u64, Inst>,

    // Backend.
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    rat: [Option<u64>; 32],
    iqs: [Vec<u64>; 4],
    muldiv_busy_until: u64,
    lq_used: usize,
    sq_used: usize,
    sb: Vec<SbEntry>,
    next_sb_token: u64,
    committed_ghist: u16,

    // Data-side translation.
    dtlb: Tlb,
    l2_tlb: Tlb,
    tcache: TranslationCache,
    walker_queue: VecDeque<WalkReq>,
    walker_active: Option<ActiveWalk>,
    walk_results: Vec<(WalkClient, WalkResult)>,
    next_ptw_token: u64,

    // Tokens owned by squashed instructions; completions are dropped.
    zombies: HashSet<u64>,
    // Completions that arrived this cycle, keyed by token.
    data_completions: HashMap<u64, u64>,
    ifetch_completions: HashMap<u64, u64>,

    purge: PurgePhase,
    /// Pending trap redirect after purge completes (handler pc, priv).
    purge_resume: Option<(u64, PrivLevel)>,

    /// Exported statistics.
    pub stats: CoreStats,
}

impl Core {
    /// Creates a core in reset: PC 0, machine mode, empty pipeline.
    pub fn new(id: usize, cfg: CoreConfig, sec: SecurityConfig) -> Core {
        Core {
            id,
            cfg,
            sec,
            regs: [0; 32],
            pc: 0,
            priv_level: PrivLevel::Machine,
            csrs: CsrFile::new(),
            halted: false,
            btb: Btb::new(cfg.btb_entries),
            tournament: Tournament::new(),
            ras: Ras::new(cfg.ras_entries),
            fetch_pc: 0,
            fetch_state: FetchState::Idle,
            fetch_queue: VecDeque::new(),
            fetch_stall_until: 0,
            next_fetch_token: 0,
            itlb: Tlb::new(cfg.l1_tlb_entries, 1),
            decode_cache: HashMap::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            rat: [None; 32],
            iqs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            muldiv_busy_until: 0,
            lq_used: 0,
            sq_used: 0,
            sb: Vec::new(),
            next_sb_token: 0,
            committed_ghist: 0,
            dtlb: Tlb::new(cfg.l1_tlb_entries, 1),
            l2_tlb: Tlb::new(cfg.l2_tlb_entries, cfg.l2_tlb_entries / cfg.l2_tlb_ways),
            tcache: TranslationCache::new(cfg.tcache_entries),
            walker_queue: VecDeque::new(),
            walker_active: None,
            walk_results: Vec::new(),
            next_ptw_token: 0,
            zombies: HashSet::new(),
            data_completions: HashMap::new(),
            ifetch_completions: HashMap::new(),
            purge: PurgePhase::Idle,
            purge_resume: None,
            stats: CoreStats::default(),
        }
    }

    /// Resets the program counter and privilege level (boot or test setup).
    pub fn reset_to(&mut self, pc: u64, priv_level: PrivLevel) {
        self.pc = pc;
        self.fetch_pc = pc;
        self.priv_level = priv_level;
        self.fetch_state = FetchState::Idle;
    }

    /// The security configuration in force.
    pub fn security(&self) -> &SecurityConfig {
        &self.sec
    }

    /// Whether the pipeline holds no in-flight instructions.
    pub fn pipeline_empty(&self) -> bool {
        self.rob.is_empty() && self.fetch_queue.is_empty()
    }

    /// Whether a purge/flush sequence is in progress.
    pub fn purging(&self) -> bool {
        self.purge != PurgePhase::Idle
    }

    fn region_bitvec(&self) -> RegionBitvec {
        RegionBitvec(self.csrs.mregions)
    }

    fn region_allowed(&self, mem: &MemSystem, paddr: u64) -> bool {
        // The security monitor (machine mode) has access to all physical
        // addresses (Section 4.1); its isolation comes from the fetch
        // window and the speculation guard, not the region bitvector.
        if !self.sec.region_checks || self.priv_level == PrivLevel::Machine {
            return true;
        }
        let map = mem.region_map();
        if paddr >= mem.phys.size() {
            return false;
        }
        self.region_bitvec().allows(map.region_of(PhysAddr::new(paddr)))
    }

    fn bare_translation(&self) -> bool {
        self.priv_level == PrivLevel::Machine || self.csrs.satp == 0
    }

    fn nonspec_gate(&self) -> bool {
        self.sec.nonspec_all_modes
            || (self.sec.machine_mode_guard && self.priv_level == PrivLevel::Machine)
    }

    // ---------------------------------------------------------------- ROB

    fn head_seq(&self) -> u64 {
        self.rob.front().map(|e| e.seq).unwrap_or(self.next_seq)
    }

    fn rob_index(&self, seq: u64) -> Option<usize> {
        // Seqs are strictly increasing but NOT contiguous (a squash leaves
        // a gap before the next rename), so binary-search.
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let (a, b) = self.rob.as_slices();
        match a.binary_search_by_key(&seq, |e| e.seq) {
            Ok(i) => Some(i),
            Err(_) => b
                .binary_search_by_key(&seq, |e| e.seq)
                .ok()
                .map(|i| a.len() + i),
        }
    }

    fn producer_value(&self, src: Src) -> Option<u64> {
        match src {
            Src::Ready(v) => Some(v),
            Src::Wait { seq, reg } => match self.rob_index(seq) {
                None => Some(self.regs[reg.index() as usize]),
                Some(idx) => {
                    let e = &self.rob[idx];
                    (e.stage == Stage::Done).then_some(e.result)
                }
            },
        }
    }

    fn srcs_ready(&self, entry: &RobEntry) -> Option<(u64, u64)> {
        let a = match entry.srcs[0] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        let b = match entry.srcs[1] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        Some((a, b))
    }

    // ------------------------------------------------------------- squash

    /// Squashes all entries with `seq >= from_seq`; redirects fetch to
    /// `new_pc`.
    fn squash_from(&mut self, now: u64, from_seq: u64, new_pc: u64) {
        while let Some(back) = self.rob.back() {
            if back.seq < from_seq {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_instructions += 1;
            // Undo RAT.
            if let Some(d) = e.dest {
                if self.rat[d.index() as usize] == Some(e.seq) {
                    self.rat[d.index() as usize] = e.prev_map;
                }
            }
            // Remove from issue queues.
            for iq in &mut self.iqs {
                iq.retain(|&s| s != e.seq);
            }
            // Release LQ/SQ slots and orphan in-flight tokens.
            if let Some(m) = &e.mem {
                if m.is_store {
                    self.sq_used -= 1;
                } else {
                    self.lq_used -= 1;
                }
                if m.phase == MemPhase::WaitMem {
                    self.zombies.insert(TOKEN_LOAD | (e.seq & TOKEN_MASK));
                }
                if m.phase == MemPhase::WaitWalk {
                    self.cancel_walk(WalkClient::Rob(e.seq));
                }
            }
        }
        // Flush the front end.
        self.fetch_queue.clear();
        match &self.fetch_state {
            FetchState::WaitICache { token, .. } => {
                self.zombies.insert(*token);
            }
            FetchState::WaitWalk => self.cancel_walk(WalkClient::Fetch),
            _ => {}
        }
        self.fetch_state = FetchState::Idle;
        self.fetch_pc = new_pc;
        self.fetch_stall_until = now + REDIRECT_PENALTY;
        self.rebuild_ghist();
    }

    /// Recomputes the speculative global history from the committed
    /// history plus surviving in-flight branches (actual outcome where
    /// resolved, predicted otherwise).
    fn rebuild_ghist(&mut self) {
        let mut g = self.committed_ghist;
        for e in &self.rob {
            if let Some(b) = &e.branch {
                if e.inst.is_cond_branch() {
                    g = (g << 1) | b.actual_taken.unwrap_or(b.pred_taken) as u16;
                }
            }
        }
        self.tournament.ghist = g;
    }

    fn cancel_walk(&mut self, client: WalkClient) {
        self.walker_queue.retain(|r| r.client != client);
        if let Some(active) = &mut self.walker_active {
            if active.req.client == client {
                // Let the memory access finish but drop the result.
                if let WalkPending::Token(t) = active.pending {
                    self.zombies.insert(t);
                }
                self.walker_active = None;
            }
        }
        self.walk_results.retain(|(c, _)| *c != client);
    }

    // ---------------------------------------------------------------- TLB

    /// Attempts a translation through the TLB hierarchy.
    ///
    /// Returns:
    /// - `Ok(Hit { .. })` on a TLB hit,
    /// - `Ok(Walking)` if a page-table walk is pending for this client,
    /// - `Ok(Busy)` if the walker could not accept the request (D-TLB
    ///   outstanding-miss limit) — the requester retries next cycle,
    /// - `Err(exception)` on a permission fault detected at TLB-hit time.
    fn try_translate(
        &mut self,
        vaddr: u64,
        kind: AccessKind,
        client: WalkClient,
    ) -> Result<TranslateOutcome, Exception> {
        let va = VirtAddr::new(vaddr);
        let vpn = va.raw() >> PAGE_SHIFT;
        let user = self.priv_level == PrivLevel::User;
        let l1 = match kind {
            AccessKind::Fetch => &mut self.itlb,
            _ => &mut self.dtlb,
        };
        let fault = |kind: AccessKind| match kind {
            AccessKind::Fetch => Exception::InstPageFault,
            AccessKind::Load => Exception::LoadPageFault,
            AccessKind::Store => Exception::StorePageFault,
        };
        if let Some(entry) = l1.lookup(vpn) {
            if !kind.permitted(entry.pte, user) {
                return Err(fault(kind));
            }
            return Ok(TranslateOutcome::Hit {
                paddr: entry.translate(va).raw(),
                region_ok: entry.region_ok,
                extra: 0,
            });
        }
        if let Some(entry) = self.l2_tlb.lookup(vpn) {
            if !kind.permitted(entry.pte, user) {
                return Err(fault(kind));
            }
            let l1 = match kind {
                AccessKind::Fetch => &mut self.itlb,
                _ => &mut self.dtlb,
            };
            l1.insert(entry);
            return Ok(TranslateOutcome::Hit {
                paddr: entry.translate(va).raw(),
                region_ok: entry.region_ok,
                extra: L2_TLB_LATENCY,
            });
        }
        // A walk already pending for this client?
        let pending = self.walker_queue.iter().any(|r| r.client == client)
            || self
                .walker_active
                .as_ref()
                .is_some_and(|a| a.req.client == client);
        if pending {
            return Ok(TranslateOutcome::Walking);
        }
        // The D-TLB supports at most `dtlb_max_misses` outstanding misses
        // (Figure 4); beyond that the requester must retry.
        let data_walks = self
            .walker_queue
            .iter()
            .filter(|r| r.kind != AccessKind::Fetch)
            .count()
            + self
                .walker_active
                .as_ref()
                .is_some_and(|a| a.req.kind != AccessKind::Fetch) as usize;
        if kind != AccessKind::Fetch && data_walks >= self.cfg.dtlb_max_misses {
            return Ok(TranslateOutcome::Busy);
        }
        self.walker_queue.push_back(WalkReq { vpn, kind, client });
        Ok(TranslateOutcome::Walking)
    }

    /// Advances the page-table walker by one cycle.
    fn tick_walker(&mut self, now: u64, mem: &mut MemSystem) {
        if self.walker_active.is_none() {
            let Some(req) = self.walker_queue.pop_front() else {
                return;
            };
            // Start from the deepest translation-cache hit.
            let root = (self.csrs.satp & ((1 << 44) - 1)) << PAGE_SHIFT;
            let (level, table) = if let Some(t) = self.tcache.lookup(1, req.vpn >> 9) {
                (0, t.raw())
            } else if let Some(t) = self.tcache.lookup(2, req.vpn >> 18) {
                (1, t.raw())
            } else {
                (LEVELS - 1, root)
            };
            self.walker_active = Some(ActiveWalk {
                req,
                level,
                table,
                pending: WalkPending::Issue,
                pte_addr: 0,
            });
        }
        let Some(mut walk) = self.walker_active.take() else {
            return;
        };
        match walk.pending {
            WalkPending::Issue => {
                let idx = (walk.req.vpn >> (9 * walk.level)) & 0x1ff;
                let pte_addr = walk.table + idx * 8;
                walk.pte_addr = pte_addr;
                // Region check on the walk access itself (Section 5.3):
                // a violating PTW access is suppressed, never emitted.
                if !self.region_allowed(mem, pte_addr) {
                    self.stats.region_suppressed += 1;
                    self.walk_results
                        .push((walk.req.client, WalkResult::Fault(Exception::DramRegionFault)));
                    return; // walker freed
                }
                let token = TOKEN_PTW | (self.next_ptw_token & TOKEN_MASK);
                self.next_ptw_token += 1;
                match mem.access(now, self.id, Port::Data, token, PhysAddr::new(pte_addr), false) {
                    L1Access::Hit { ready_at } => {
                        walk.pending = WalkPending::ReadyAt(ready_at);
                        self.walker_active = Some(walk);
                    }
                    L1Access::Miss => {
                        walk.pending = WalkPending::Token(token);
                        self.walker_active = Some(walk);
                    }
                    L1Access::Blocked => {
                        walk.pending = WalkPending::Issue;
                        self.walker_active = Some(walk);
                    }
                }
            }
            WalkPending::Token(token) => {
                if let Some(&ready_at) = self.data_completions.get(&token) {
                    self.data_completions.remove(&token);
                    walk.pending = WalkPending::ReadyAt(ready_at);
                }
                self.walker_active = Some(walk);
            }
            WalkPending::ReadyAt(ready_at) => {
                if now < ready_at {
                    self.walker_active = Some(walk);
                    return;
                }
                let pte = PageTableEntry(mem.phys.read_u64(PhysAddr::new(walk.pte_addr)));
                let fault = || match walk.req.kind {
                    AccessKind::Fetch => Exception::InstPageFault,
                    AccessKind::Load => Exception::LoadPageFault,
                    AccessKind::Store => Exception::StorePageFault,
                };
                if !pte.valid() {
                    self.walk_results
                        .push((walk.req.client, WalkResult::Fault(fault())));
                    self.stats.page_walks += 1;
                    return;
                }
                if pte.is_leaf() {
                    let leaf_base = pte.ppn() << PAGE_SHIFT;
                    let span = leaf_span(walk.level);
                    let region_ok = {
                        // One check suffices: no page straddles a region.
                        let probe = leaf_base & !(span - 1);
                        self.region_allowed(mem, probe)
                    };
                    let entry = TlbEntry {
                        vpn: walk.req.vpn & !((1u64 << (9 * walk.level)) - 1),
                        level: walk.level,
                        pte,
                        region_ok,
                    };
                    self.l2_tlb.insert(entry);
                    match walk.req.kind {
                        AccessKind::Fetch => self.itlb.insert(entry),
                        _ => self.dtlb.insert(entry),
                    }
                    self.walk_results.push((walk.req.client, WalkResult::Ok));
                    self.stats.page_walks += 1;
                } else {
                    let next_table = pte.ppn() << PAGE_SHIFT;
                    // Record the intermediate step in the translation
                    // cache: the table consulted at level-1 is determined
                    // by the vpn bits above it.
                    if walk.level >= 1 {
                        self.tcache.insert(
                            walk.level,
                            walk.req.vpn >> (9 * walk.level),
                            PhysAddr::new(next_table),
                        );
                    }
                    walk.level -= 1;
                    walk.table = next_table;
                    walk.pending = WalkPending::Issue;
                    self.walker_active = Some(walk);
                }
            }
        }
    }

    fn take_walk_result(&mut self, client: WalkClient) -> Option<WalkResult> {
        let idx = self.walk_results.iter().position(|(c, _)| *c == client)?;
        Some(self.walk_results.remove(idx).1)
    }

    // -------------------------------------------------------------- fetch

    fn decode_at(&mut self, mem: &MemSystem, paddr: u64) -> Result<Inst, Exception> {
        if let Some(inst) = self.decode_cache.get(&paddr) {
            return Ok(*inst);
        }
        let word = mem.phys.read_u32(PhysAddr::new(paddr));
        match mi6_isa::decode(word) {
            Ok(inst) => {
                self.decode_cache.insert(paddr, inst);
                Ok(inst)
            }
            Err(_) => Err(Exception::IllegalInst),
        }
    }

    fn push_poison(&mut self, exception: Exception, tval: u64) {
        self.fetch_queue.push_back(FetchedInst {
            pc: self.fetch_pc,
            inst: Inst::NOP,
            pred: None,
            poison: Some((exception, tval)),
        });
        self.fetch_state = FetchState::Stalled;
    }

    fn tick_fetch(&mut self, now: u64, mem: &mut MemSystem) {
        if now < self.fetch_stall_until {
            return;
        }
        if self.fetch_queue.len() + self.cfg.fetch_width > self.cfg.fetch_queue {
            return;
        }
        match self.fetch_state.clone() {
            FetchState::Stalled => {}
            FetchState::Idle => {
                // Translate the fetch PC.
                if self.fetch_pc % 4 != 0 {
                    self.push_poison(Exception::InstMisaligned, self.fetch_pc);
                    return;
                }
                let (paddr, region_ok, extra) = if self.bare_translation() {
                    let pa = self.fetch_pc;
                    (pa, self.region_allowed(mem, pa), 0)
                } else {
                    match self.try_translate(self.fetch_pc, AccessKind::Fetch, WalkClient::Fetch)
                    {
                        Err(e) => {
                            self.push_poison(e, self.fetch_pc);
                            return;
                        }
                        Ok(TranslateOutcome::Walking) => {
                            self.fetch_state = FetchState::WaitWalk;
                            return;
                        }
                        Ok(TranslateOutcome::Busy) => return, // retry next cycle
                        Ok(TranslateOutcome::Hit { paddr, region_ok, extra }) => {
                            (paddr, region_ok, extra)
                        }
                    }
                };
                // Machine-mode fetch window (Section 6.2).
                if self.sec.machine_mode_guard
                    && self.priv_level == PrivLevel::Machine
                    && !(self.csrs.mfetchbase..self.csrs.mfetchbound).contains(&paddr)
                {
                    self.push_poison(Exception::InstAccessFault, self.fetch_pc);
                    return;
                }
                if !region_ok {
                    // Suppressed speculative fetch; faults only if it
                    // becomes non-speculative.
                    self.stats.region_suppressed += 1;
                    self.push_poison(Exception::DramRegionFault, self.fetch_pc);
                    return;
                }
                if paddr + 4 > mem.phys.size() {
                    self.push_poison(Exception::InstAccessFault, self.fetch_pc);
                    return;
                }
                if extra > 0 {
                    self.fetch_state = FetchState::TlbDelay {
                        ready_at: now + extra,
                        paddr,
                        region_ok,
                    };
                    return;
                }
                self.issue_icache(now, mem, paddr);
            }
            FetchState::TlbDelay { ready_at, paddr, .. } => {
                if now >= ready_at {
                    self.issue_icache(now, mem, paddr);
                }
            }
            FetchState::WaitWalk => {
                if let Some(result) = self.take_walk_result(WalkClient::Fetch) {
                    match result {
                        WalkResult::Ok => self.fetch_state = FetchState::Idle,
                        WalkResult::Fault(e) => self.push_poison(e, self.fetch_pc),
                    }
                }
            }
            FetchState::WaitICache { token, paddr } => {
                if let Some(&ready_at) = self.ifetch_completions.get(&token) {
                    self.ifetch_completions.remove(&token);
                    self.fetch_state = FetchState::Deliver { ready_at, paddr };
                }
            }
            FetchState::Deliver { ready_at, paddr } => {
                if now >= ready_at {
                    self.deliver_fetch_group(mem, paddr);
                }
            }
        }
    }

    fn issue_icache(&mut self, now: u64, mem: &mut MemSystem, paddr: u64) {
        let token = TOKEN_FETCH | (self.next_fetch_token & TOKEN_MASK);
        self.next_fetch_token += 1;
        match mem.access(now, self.id, Port::IFetch, token, PhysAddr::new(paddr), false) {
            L1Access::Hit { ready_at } => {
                self.fetch_state = FetchState::Deliver { ready_at, paddr };
            }
            L1Access::Miss => {
                self.fetch_state = FetchState::WaitICache { token, paddr };
            }
            L1Access::Blocked => {
                self.fetch_state = FetchState::Idle; // retry next cycle
            }
        }
    }

    /// Decodes and predicts up to `fetch_width` instructions from the
    /// fetched line, pushing them into the fetch queue.
    fn deliver_fetch_group(&mut self, mem: &MemSystem, paddr: u64) {
        let mut pc = self.fetch_pc;
        let mut pa = paddr;
        self.fetch_state = FetchState::Idle;
        for slot in 0..self.cfg.fetch_width {
            // The group ends at a line boundary.
            if slot > 0 && pa & 63 == 0 {
                break;
            }
            let inst = match self.decode_at(mem, pa) {
                Ok(i) => i,
                Err(e) => {
                    self.fetch_pc = pc;
                    self.push_poison(e, pc);
                    return;
                }
            };
            let mut pred = None;
            let mut next_pc = pc.wrapping_add(4);
            let mut redirect = false;
            match inst {
                Inst::Branch { off, .. } => {
                    let p = self.tournament.predict(pc);
                    self.tournament.speculate(p.taken);
                    let target = pc.wrapping_add(off as i64 as u64);
                    if p.taken {
                        next_pc = target;
                        redirect = true;
                    }
                    pred = Some(BranchState {
                        pred_taken: p.taken,
                        pred_target: target,
                        tournament: Some(p),
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                Inst::Jal { rd, off } => {
                    let target = pc.wrapping_add(off as i64 as u64);
                    if rd == Reg::RA {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    next_pc = target;
                    redirect = true;
                    pred = Some(BranchState {
                        pred_taken: true,
                        pred_target: target,
                        tournament: None,
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                Inst::Jalr { rd, rs1, .. } => {
                    let predicted = if rd == Reg::ZERO && rs1 == Reg::RA {
                        self.ras.pop()
                    } else {
                        if rd == Reg::RA {
                            self.ras.push(pc.wrapping_add(4));
                        }
                        self.btb.lookup(pc)
                    };
                    let target = predicted.unwrap_or(pc.wrapping_add(4));
                    next_pc = target;
                    redirect = true;
                    pred = Some(BranchState {
                        pred_taken: true,
                        pred_target: target,
                        tournament: None,
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                _ => {}
            }
            self.fetch_queue.push_back(FetchedInst {
                pc,
                inst,
                pred,
                poison: None,
            });
            pc = next_pc;
            if redirect {
                self.fetch_pc = pc;
                return;
            }
            pa += 4;
        }
        self.fetch_pc = pc;
    }

    // ------------------------------------------------------------- rename

    fn tick_rename(&mut self, now: u64) {
        let mut renamed = 0;
        while renamed < self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            let inst = front.inst;
            let poisoned = front.poison.is_some();
            // Serialization: system instructions and (under the
            // non-speculative gate) memory instructions rename only into
            // an empty ROB.
            let serialize = !poisoned
                && (inst.is_system() || (self.nonspec_gate() && inst.is_mem()));
            if serialize && (!self.rob.is_empty() || renamed > 0) {
                if self.nonspec_gate() && inst.is_mem() {
                    self.stats.nonspec_stall_cycles += 1;
                }
                break;
            }
            // Structural slots.
            let pipe = if poisoned {
                None
            } else {
                match inst {
                    _ if inst.is_mem() => Some(Pipe::Mem),
                    _ if inst.is_muldiv_fp() => Some(Pipe::MulDiv),
                    Inst::Jal { .. } => None,
                    _ if inst.is_system() => None,
                    _ => {
                        // Pick the shorter ALU queue.
                        if self.iqs[0].len() <= self.iqs[1].len() {
                            Some(Pipe::Alu0)
                        } else {
                            Some(Pipe::Alu1)
                        }
                    }
                }
            };
            if let Some(p) = pipe {
                let iq = &self.iqs[p as usize];
                if iq.len() >= self.cfg.iq_entries {
                    break;
                }
            }
            if inst.is_load() && self.lq_used >= self.cfg.lq_entries {
                break;
            }
            if inst.is_store() && self.sq_used >= self.cfg.sq_entries {
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            // Sources.
            let (s1, s2) = fetched.inst.sources();
            let mk_src = |r: Option<Reg>, core: &Core| -> Option<Src> {
                let r = r?;
                if r.is_zero() {
                    return Some(Src::Ready(0));
                }
                Some(match core.rat[r.index() as usize] {
                    Some(pseq) => Src::Wait { seq: pseq, reg: r },
                    None => Src::Ready(core.regs[r.index() as usize]),
                })
            };
            let srcs = [mk_src(s1, self), mk_src(s2, self)];
            // Destination renaming.
            let dest = fetched.inst.dest();
            let mut prev_map = None;
            if let Some(d) = dest {
                prev_map = self.rat[d.index() as usize];
                self.rat[d.index() as usize] = Some(seq);
            }
            let stage = if poisoned {
                Stage::Done
            } else if fetched.inst.is_system() {
                Stage::AtCommit
            } else if matches!(fetched.inst, Inst::Jal { .. }) {
                Stage::Done
            } else {
                Stage::InIq
            };
            let mem_state = fetched.inst.is_mem().then(|| {
                let bytes = match fetched.inst {
                    Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
                    _ => unreachable!(),
                };
                if fetched.inst.is_store() {
                    self.sq_used += 1;
                } else {
                    self.lq_used += 1;
                }
                MemState {
                    vaddr: 0,
                    paddr: None,
                    bytes,
                    is_store: fetched.inst.is_store(),
                    store_data: None,
                    phase: MemPhase::AddrGen { done_at: 0 },
                }
            });
            let result = if matches!(fetched.inst, Inst::Jal { .. }) {
                fetched.pc.wrapping_add(4)
            } else {
                0
            };
            let entry = RobEntry {
                seq,
                pc: fetched.pc,
                inst: fetched.inst,
                stage,
                srcs,
                dest,
                prev_map,
                result,
                branch: fetched.pred,
                mem: mem_state,
                exception: fetched.poison,
            };
            if let Some(p) = pipe {
                self.iqs[p as usize].push(seq);
            }
            self.rob.push_back(entry);
            renamed += 1;
            let _ = now;
        }
    }

    // -------------------------------------------------------------- issue

    fn tick_issue(&mut self, now: u64) {
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            if pipe == Pipe::MulDiv && now < self.muldiv_busy_until {
                continue;
            }
            let iq = &self.iqs[pipe as usize];
            // Oldest-first: find the lowest seq whose sources are ready.
            let mut chosen: Option<u64> = None;
            let mut sorted: Vec<u64> = iq.clone();
            sorted.sort_unstable();
            for &seq in &sorted {
                let Some(idx) = self.rob_index(seq) else {
                    continue;
                };
                if self.srcs_ready(&self.rob[idx]).is_some() {
                    chosen = Some(seq);
                    break;
                }
            }
            let Some(seq) = chosen else {
                continue;
            };
            self.iqs[pipe as usize].retain(|&s| s != seq);
            let idx = self.rob_index(seq).expect("chosen entry exists");
            let (a, b) = self.srcs_ready(&self.rob[idx]).expect("ready");
            let entry = &mut self.rob[idx];
            match pipe {
                Pipe::Alu0 | Pipe::Alu1 => {
                    let done_at = now + 1;
                    match entry.inst {
                        Inst::Branch { cond, .. } => {
                            let taken = cond.eval(a, b);
                            let b_state = entry.branch.as_mut().expect("branch state");
                            b_state.actual_taken = Some(taken);
                            b_state.actual_target = if taken {
                                b_state.pred_target
                            } else {
                                entry.pc.wrapping_add(4)
                            };
                            entry.stage = Stage::Exec { done_at };
                        }
                        Inst::Jalr { off, .. } => {
                            let target = a.wrapping_add(off as i64 as u64) & !1;
                            let b_state = entry.branch.as_mut().expect("jalr state");
                            b_state.actual_taken = Some(true);
                            b_state.actual_target = target;
                            entry.result = entry.pc.wrapping_add(4);
                            entry.stage = Stage::Exec { done_at };
                        }
                        _ => {
                            entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                            entry.stage = Stage::Exec { done_at };
                        }
                    }
                }
                Pipe::MulDiv => {
                    let lat = match entry.inst {
                        Inst::Div { .. } | Inst::Divu { .. } | Inst::Rem { .. }
                        | Inst::Remu { .. } => self.cfg.div_latency,
                        Inst::Fdiv { .. } => self.cfg.fdiv_latency,
                        Inst::Fadd { .. } | Inst::Fmul { .. } => self.cfg.fp_latency,
                        _ => self.cfg.mul_latency,
                    };
                    let pipelined = matches!(
                        entry.inst,
                        Inst::Mul { .. } | Inst::Mulh { .. } | Inst::Fadd { .. } | Inst::Fmul { .. }
                    );
                    entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                    entry.stage = Stage::Exec { done_at: now + lat as u64 };
                    self.muldiv_busy_until = if pipelined { now + 1 } else { now + lat as u64 };
                }
                Pipe::Mem => {
                    let vaddr = exec::effective_address(&entry.inst, a);
                    let m = entry.mem.as_mut().expect("mem state");
                    m.vaddr = vaddr;
                    if m.is_store {
                        m.store_data = Some(b);
                    }
                    m.phase = MemPhase::AddrGen { done_at: now + 1 };
                    entry.stage = Stage::MemOp;
                }
            }
        }
    }

    // ----------------------------------------------------- memory pipeline

    /// Reads the architectural value for a load, overlaying older
    /// uncommitted stores from the store queue.
    fn load_value(&self, mem: &MemSystem, seq: u64, paddr: u64, bytes: u64) -> u64 {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate().take(bytes as usize) {
            *b = mem.phys.read_u8(PhysAddr::new(paddr + i as u64));
        }
        for e in &self.rob {
            if e.seq >= seq {
                break;
            }
            let Some(m) = &e.mem else { continue };
            if !m.is_store {
                continue;
            }
            let (Some(sp), Some(data)) = (m.paddr, m.store_data) else {
                continue;
            };
            for i in 0..bytes {
                let a = paddr + i;
                if a >= sp && a < sp + m.bytes {
                    buf[i as usize] = (data >> (8 * (a - sp))) as u8;
                }
            }
        }
        u64::from_le_bytes(buf)
    }

    /// Whether an older store blocks this load from producing a value yet
    /// (overlapping store with unknown data), or may alias (unknown
    /// address — RiscyOO speculates past those; violations are caught when
    /// the store resolves).
    fn older_store_blocks(&self, seq: u64, paddr: u64, bytes: u64) -> bool {
        for e in &self.rob {
            if e.seq >= seq {
                break;
            }
            let Some(m) = &e.mem else { continue };
            if !m.is_store {
                continue;
            }
            if let Some(sp) = m.paddr {
                let overlap = paddr < sp + m.bytes && sp < paddr + bytes;
                if overlap && m.store_data.is_none() {
                    return true;
                }
            }
        }
        false
    }

    fn advance_mem_ops(&mut self, now: u64, mem: &mut MemSystem) {
        // Collect transitions first to keep borrows simple.
        let seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.stage == Stage::MemOp)
            .map(|e| e.seq)
            .collect();
        for seq in seqs {
            let Some(idx) = self.rob_index(seq) else { continue };
            let (pc, inst) = (self.rob[idx].pc, self.rob[idx].inst);
            let m = self.rob[idx].mem.clone().expect("mem state");
            match m.phase {
                MemPhase::AddrGen { done_at } => {
                    if now >= done_at {
                        if m.vaddr % m.bytes != 0 {
                            let e = if m.is_store {
                                Exception::StoreMisaligned
                            } else {
                                Exception::LoadMisaligned
                            };
                            self.rob[idx].exception = Some((e, m.vaddr));
                            self.rob[idx].stage = Stage::Done;
                            self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
                            continue;
                        }
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Translate;
                    }
                }
                MemPhase::Translate => {
                    let kind = if m.is_store { AccessKind::Store } else { AccessKind::Load };
                    let (paddr, region_ok, extra) = if self.bare_translation() {
                        (m.vaddr, self.region_allowed(mem, m.vaddr), 0)
                    } else {
                        match self.try_translate(m.vaddr, kind, WalkClient::Rob(seq)) {
                            Err(e) => {
                                self.rob[idx].exception = Some((e, m.vaddr));
                                self.rob[idx].stage = Stage::Done;
                                continue;
                            }
                            Ok(TranslateOutcome::Walking) => {
                                self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::WaitWalk;
                                continue;
                            }
                            Ok(TranslateOutcome::Busy) => continue, // retry in Translate
                            Ok(TranslateOutcome::Hit { paddr, region_ok, extra }) => {
                                (paddr, region_ok, extra)
                            }
                        }
                    };
                    if !region_ok || paddr + m.bytes > mem.phys.size() {
                        // Suppressed: no memory traffic; fault if it
                        // reaches commit (Section 5.3).
                        if !region_ok {
                            self.stats.region_suppressed += 1;
                            self.rob[idx].exception = Some((Exception::DramRegionFault, m.vaddr));
                        } else {
                            let e = if m.is_store {
                                Exception::StoreAccessFault
                            } else {
                                Exception::LoadAccessFault
                            };
                            self.rob[idx].exception = Some((e, m.vaddr));
                        }
                        self.rob[idx].stage = Stage::Done;
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
                        continue;
                    }
                    {
                        let ms = self.rob[idx].mem.as_mut().expect("mem");
                        ms.paddr = Some(paddr);
                        ms.phase = if extra > 0 {
                            MemPhase::TlbLatency { ready_at: now + extra }
                        } else {
                            MemPhase::ReadyToAccess
                        };
                    }
                    if self.rob[idx].mem.as_ref().expect("mem").phase == MemPhase::ReadyToAccess {
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::TlbLatency { ready_at } => {
                    if now >= ready_at {
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::ReadyToAccess;
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::WaitWalk => {
                    if let Some(result) = self.take_walk_result(WalkClient::Rob(seq)) {
                        match result {
                            WalkResult::Ok => {
                                self.rob[idx].mem.as_mut().expect("mem").phase =
                                    MemPhase::Translate;
                            }
                            WalkResult::Fault(e) => {
                                self.rob[idx].exception = Some((e, m.vaddr));
                                self.rob[idx].stage = Stage::Done;
                            }
                        }
                    }
                }
                MemPhase::ReadyToAccess => {
                    self.mem_ready_to_access(now, mem, seq);
                }
                MemPhase::WaitMem => {
                    let token = TOKEN_LOAD | (seq & TOKEN_MASK);
                    if let Some(&ready_at) = self.data_completions.get(&token) {
                        self.data_completions.remove(&token);
                        let ms = self.rob[idx].mem.as_mut().expect("mem");
                        ms.phase = MemPhase::WaitValue { ready_at };
                    }
                }
                MemPhase::WaitValue { ready_at } => {
                    if now >= ready_at {
                        let paddr = m.paddr.expect("translated");
                        let raw = self.load_value(mem, seq, paddr, m.bytes);
                        let entry = &mut self.rob[idx];
                        entry.result = exec::extend_load(&inst, raw);
                        entry.stage = Stage::Done;
                        entry.mem.as_mut().expect("mem").phase = MemPhase::Done;
                        let _ = pc;
                    }
                }
                MemPhase::Done => {}
            }
        }
    }

    /// A memory op has its physical address: stores record it (and check
    /// for memory-order violations); loads forward or issue to the L1D.
    fn mem_ready_to_access(&mut self, now: u64, mem: &mut MemSystem, seq: u64) {
        let Some(idx) = self.rob_index(seq) else { return };
        let m = self.rob[idx].mem.clone().expect("mem state");
        let paddr = m.paddr.expect("translated");
        if m.is_store {
            // Store: address + data recorded; done (data written at
            // commit). First check younger loads that already executed to
            // an overlapping address — memory-order violation.
            let mut violating: Option<(u64, u64)> = None; // (seq, pc)
            for e in self.rob.iter() {
                if e.seq <= seq {
                    continue;
                }
                let Some(lm) = &e.mem else { continue };
                if lm.is_store {
                    continue;
                }
                let issued = matches!(
                    lm.phase,
                    MemPhase::WaitMem | MemPhase::WaitValue { .. } | MemPhase::Done
                );
                if !issued {
                    continue;
                }
                let Some(lp) = lm.paddr else { continue };
                let overlap = lp < paddr + m.bytes && paddr < lp + lm.bytes;
                if overlap {
                    violating = Some((e.seq, e.pc));
                    break;
                }
            }
            self.rob[idx].stage = Stage::Done;
            self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
            if let Some((lseq, lpc)) = violating {
                self.stats.mem_order_violations += 1;
                self.squash_from(now, lseq, lpc);
            }
            return;
        }
        // Load.
        if self.older_store_blocks(seq, paddr, m.bytes) {
            return; // retry next cycle
        }
        // Full-cover forwarding from the youngest older store?
        let mut forwarded = false;
        for e in self.rob.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(sm) = &e.mem else { continue };
            if !sm.is_store {
                continue;
            }
            let (Some(sp), Some(_)) = (sm.paddr, sm.store_data) else { continue };
            let overlap = paddr < sp + sm.bytes && sp < paddr + m.bytes;
            if overlap {
                let covers = sp <= paddr && paddr + m.bytes <= sp + sm.bytes;
                if covers {
                    forwarded = true;
                }
                break; // youngest overlapping store decides
            }
        }
        if forwarded {
            let ms = self.rob[idx].mem.as_mut().expect("mem");
            ms.phase = MemPhase::WaitValue { ready_at: now + 1 };
            return;
        }
        let token = TOKEN_LOAD | (seq & TOKEN_MASK);
        match mem.access(now, self.id, Port::Data, token, PhysAddr::new(paddr), false) {
            L1Access::Hit { ready_at } => {
                let ms = self.rob[idx].mem.as_mut().expect("mem");
                ms.phase = MemPhase::WaitValue { ready_at };
            }
            L1Access::Miss => {
                let ms = self.rob[idx].mem.as_mut().expect("mem");
                ms.phase = MemPhase::WaitMem;
            }
            L1Access::Blocked => {} // retry next cycle
        }
    }

    // ---------------------------------------------------------- writeback

    /// Completes executing instructions and resolves branches.
    fn tick_writeback(&mut self, now: u64) {
        // Find resolved branches / finished ALU ops.
        let mut mispredict: Option<(u64, u64)> = None; // (squash-from, new pc)
        for idx in 0..self.rob.len() {
            let e = &self.rob[idx];
            let Stage::Exec { done_at } = e.stage else { continue };
            if now < done_at {
                continue;
            }
            let seq = e.seq;
            let entry = &mut self.rob[idx];
            entry.stage = Stage::Done;
            if let Some(b) = entry.branch.clone() {
                let actual_taken = b.actual_taken.expect("resolved at execute");
                let wrong = if entry.inst.is_cond_branch() {
                    actual_taken != b.pred_taken
                } else {
                    b.actual_target != b.pred_target
                };
                if wrong && mispredict.is_none() {
                    if entry.inst.is_cond_branch() {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.jump_mispredicts += 1;
                    }
                    mispredict = Some((seq + 1, b.actual_target));
                }
            }
        }
        if let Some((from, target)) = mispredict {
            self.squash_from(now, from, target);
        }
    }

    // ------------------------------------------------------------- commit

    fn begin_purge_sequence(&mut self, now: u64, resume: Option<(u64, PrivLevel)>) {
        // Scrub the zero-cost-to-reset front-end structures immediately;
        // the timed sweeps (L1s, L2 TLB sets, predictor tables) are
        // charged by the Flushing phase.
        self.btb.reset();
        self.tournament.reset();
        self.ras.reset();
        self.itlb.flush_all();
        self.dtlb.flush_all();
        self.l2_tlb.flush_all();
        self.tcache.flush();
        self.committed_ghist = 0;
        self.purge = PurgePhase::DrainMem;
        self.purge_resume = resume;
        let _ = now;
    }

    fn tick_purge(&mut self, now: u64, mem: &mut MemSystem) {
        match self.purge {
            PurgePhase::Idle => {}
            PurgePhase::DrainMem => {
                self.stats.flush_stall_cycles += 1;
                // Wait for zombie traffic and the store buffer.
                self.tick_store_buffer(now, mem);
                if mem.core_quiescent(self.id) && self.sb.is_empty() && self.walker_active.is_none()
                {
                    mem.start_flush(self.id);
                    self.purge = PurgePhase::Flushing {
                        until: now + self.cfg.purge_cycles as u64,
                    };
                }
            }
            PurgePhase::Flushing { until } => {
                self.stats.flush_stall_cycles += 1;
                if now >= until && !mem.flush_active(self.id) {
                    self.purge = PurgePhase::Idle;
                    if let Some((pc, lvl)) = self.purge_resume.take() {
                        self.fetch_pc = pc;
                        self.pc = pc;
                        self.priv_level = lvl;
                    }
                    self.fetch_state = FetchState::Idle;
                    self.fetch_stall_until = now + REDIRECT_PENALTY;
                }
            }
        }
    }

    /// Takes a trap: squashes everything and redirects (possibly after a
    /// flush, under the FLUSH variant).
    fn take_trap(&mut self, now: u64, cause: TrapCause, epc: u64, tval: u64) {
        self.stats.traps += 1;
        let (lvl, handler) = self.csrs.take_trap(cause, epc, tval, self.priv_level);
        self.squash_from(now, self.head_seq(), handler);
        self.pc = handler;
        if self.sec.flush_on_trap {
            self.begin_purge_sequence(now, Some((handler, lvl)));
        } else {
            self.priv_level = lvl;
        }
    }

    fn tick_commit(&mut self, now: u64, mem: &mut MemSystem) {
        // Asynchronous interrupts preempt at the commit boundary.
        if let Some(irq) = self.csrs.pending_interrupt(self.priv_level) {
            let epc = self.rob.front().map(|e| e.pc).unwrap_or(self.fetch_pc);
            self.take_trap(now, TrapCause::Interrupt(irq), epc, 0);
            return;
        }
        let mut committed = 0;
        while committed < self.cfg.commit_width {
            let Some(head) = self.rob.front() else { break };
            if !head.is_done() {
                break;
            }
            let seq = head.seq;
            let pc = head.pc;
            let inst = head.inst;
            // Exceptions (including poisoned fetches and region faults).
            if let Some((e, tval)) = head.exception {
                if e == Exception::DramRegionFault {
                    self.stats.region_faults += 1;
                }
                self.take_trap(now, TrapCause::Exception(e), pc, tval);
                return;
            }
            // System instructions execute here, serialized.
            if head.stage == Stage::AtCommit {
                if !self.commit_system(now, mem, seq) {
                    return; // stalled (fence/wfi) or redirected (trap)
                }
                committed += 1;
                continue;
            }
            debug_assert_eq!(head.stage, Stage::Done);
            // Stores: write memory and enter the store buffer.
            if inst.is_store() {
                let m = self.rob.front().expect("head").mem.clone().expect("mem");
                let paddr = m.paddr.expect("resolved");
                let line = paddr & !63;
                let have_slot = self.sb.iter().any(|s| s.line == line && !s.issued)
                    || self.sb.len() < self.cfg.sb_entries;
                if !have_slot {
                    break; // store buffer full: stall commit
                }
                mem.phys.write_bytes(
                    PhysAddr::new(paddr),
                    m.store_data.expect("data"),
                    m.bytes as usize,
                );
                if !self.sb.iter().any(|s| s.line == line && !s.issued) {
                    let token = TOKEN_SB | (self.next_sb_token & TOKEN_MASK);
                    self.next_sb_token += 1;
                    self.sb.push(SbEntry { line, issued: false, token, done: false });
                }
                self.sq_used -= 1;
                self.stats.stores += 1;
            }
            if inst.is_load() {
                self.lq_used -= 1;
                self.stats.loads += 1;
            }
            // Branch training.
            if let Some(b) = self.rob.front().expect("head").branch.clone() {
                let taken = b.actual_taken.unwrap_or(b.pred_taken);
                if inst.is_cond_branch() {
                    self.stats.committed_branches += 1;
                    if let Some(p) = b.tournament {
                        self.tournament.update(pc, p, taken);
                    }
                    self.committed_ghist = (self.committed_ghist << 1) | taken as u16;
                    if taken {
                        self.btb.update(pc, b.actual_target);
                    }
                } else if matches!(inst, Inst::Jalr { .. }) {
                    self.btb.update(pc, b.actual_target);
                }
            }
            // Register writeback.
            let entry = self.rob.pop_front().expect("head");
            if let Some(d) = entry.dest {
                self.regs[d.index() as usize] = entry.result;
                if self.rat[d.index() as usize] == Some(seq) {
                    self.rat[d.index() as usize] = None;
                }
            }
            self.pc = entry
                .branch
                .as_ref()
                .and_then(|b| b.actual_taken.map(|t| if t { b.actual_target } else { pc + 4 }))
                .unwrap_or(pc + 4);
            self.stats.committed_instructions += 1;
            self.csrs.instret += 1;
            committed += 1;
        }
    }

    /// Executes a system instruction at the head of the ROB. Returns true
    /// if it retired (the caller continues committing).
    fn commit_system(&mut self, now: u64, mem: &mut MemSystem, seq: u64) -> bool {
        let idx = self.rob_index(seq).expect("head");
        let inst = self.rob[idx].inst;
        let pc = self.rob[idx].pc;
        let retire_simple = |core: &mut Core| {
            let entry = core.rob.pop_front().expect("head");
            if let Some(d) = entry.dest {
                core.regs[d.index() as usize] = entry.result;
                if core.rat[d.index() as usize] == Some(entry.seq) {
                    core.rat[d.index() as usize] = None;
                }
            }
            core.pc = entry.pc + 4;
            core.stats.committed_instructions += 1;
            core.csrs.instret += 1;
        };
        match inst {
            Inst::Ecall => {
                let e = Exception::ecall_from(self.priv_level);
                // The ecall itself retires; EPC is the ecall's own PC (the
                // handler returns past it via epc+4, as the toy kernel and
                // monitor do).
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.rob.pop_front();
                self.take_trap(now, TrapCause::Exception(e), pc, 0);
                false
            }
            Inst::Ebreak => {
                if self.priv_level == PrivLevel::Machine {
                    self.halted = true;
                    self.rob.pop_front();
                    self.stats.committed_instructions += 1;
                    return false;
                }
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.rob.pop_front();
                self.take_trap(now, TrapCause::Exception(Exception::Breakpoint), pc, pc);
                false
            }
            Inst::Sret => {
                if self.priv_level < PrivLevel::Supervisor {
                    self.rob.pop_front();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.trap_returns += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.rob.pop_front();
                let (lvl, epc) = self.csrs.sret();
                self.squash_from(now, self.head_seq(), epc);
                self.pc = epc;
                if self.sec.flush_on_trap {
                    self.begin_purge_sequence(now, Some((epc, lvl)));
                } else {
                    self.priv_level = lvl;
                }
                false
            }
            Inst::Mret => {
                if self.priv_level < PrivLevel::Machine {
                    self.rob.pop_front();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.trap_returns += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.rob.pop_front();
                let (lvl, epc) = self.csrs.mret();
                self.squash_from(now, self.head_seq(), epc);
                self.pc = epc;
                if self.sec.flush_on_trap {
                    self.begin_purge_sequence(now, Some((epc, lvl)));
                } else {
                    self.priv_level = lvl;
                }
                false
            }
            Inst::Wfi => {
                if self.csrs.pending_interrupt(self.priv_level).is_some()
                    || self.csrs.mip & self.csrs.mie != 0
                {
                    retire_simple(self);
                    true
                } else {
                    false // stall at commit until an interrupt pends
                }
            }
            Inst::Fence => {
                self.tick_store_buffer(now, mem);
                if self.sb.is_empty() {
                    retire_simple(self);
                    true
                } else {
                    false
                }
            }
            Inst::FenceI => {
                self.decode_cache.clear();
                retire_simple(self);
                // Refetch everything younger.
                let next = pc + 4;
                self.squash_from(now, self.head_seq(), next);
                true
            }
            Inst::SfenceVma => {
                self.itlb.flush_all();
                self.dtlb.flush_all();
                self.l2_tlb.flush_all();
                self.tcache.flush();
                retire_simple(self);
                true
            }
            Inst::Csr { op, rd, rs1, csr } => {
                let old = match self.csrs.read(csr, self.priv_level) {
                    Ok(v) => v,
                    Err(_) => {
                        self.rob.pop_front();
                        self.take_trap(now, Exception::IllegalInst.into(), pc, csr as u64);
                        return false;
                    }
                };
                let arg = self.regs[rs1.index() as usize];
                let new = match op {
                    mi6_isa::CsrOp::Rw => Some(arg),
                    mi6_isa::CsrOp::Rs => (!rs1.is_zero()).then_some(old | arg),
                    mi6_isa::CsrOp::Rc => (!rs1.is_zero()).then_some(old & !arg),
                };
                if let Some(v) = new {
                    if let Err(_e) = self.csrs.write(csr, v, self.priv_level) {
                        self.rob.pop_front();
                        self.take_trap(now, Exception::IllegalInst.into(), pc, csr as u64);
                        return false;
                    }
                }
                let idx = self.rob_index(seq).expect("head");
                self.rob[idx].result = old;
                if rd.is_zero() {
                    self.rob[idx].dest = None;
                }
                retire_simple(self);
                true
            }
            Inst::Purge => {
                if self.priv_level != PrivLevel::Machine {
                    self.rob.pop_front();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.purges += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.rob.pop_front();
                let next = pc + 4;
                self.squash_from(now, self.head_seq(), next);
                self.pc = next;
                self.begin_purge_sequence(now, Some((next, self.priv_level)));
                false
            }
            other => unreachable!("not a system instruction: {other}"),
        }
    }

    // -------------------------------------------------------- store buffer

    fn tick_store_buffer(&mut self, now: u64, mem: &mut MemSystem) {
        // Issue the oldest unissued entry.
        if let Some(entry) = self.sb.iter_mut().find(|s| !s.issued) {
            let token = entry.token;
            let line = entry.line;
            match mem.access(now, self.id, Port::Data, token, PhysAddr::new(line), true) {
                L1Access::Hit { ready_at } => {
                    entry.issued = true;
                    entry.done = true;
                    let _ = ready_at;
                }
                L1Access::Miss => {
                    entry.issued = true;
                }
                L1Access::Blocked => {}
            }
        }
        // Retire completed entries.
        let completions = &mut self.data_completions;
        for entry in self.sb.iter_mut() {
            if entry.issued && !entry.done {
                if completions.remove(&entry.token).is_some() {
                    entry.done = true;
                }
            }
        }
        self.sb.retain(|s| !s.done);
    }

    // ---------------------------------------------------------------- tick

    /// Begins a purge sequence directly (the security monitor's path:
    /// architecturally this is the monitor executing `purge`, but the
    /// monitor model drives the machine from outside). The core stalls
    /// for the full purge duration and resumes at `resume_pc` in
    /// `resume_priv`.
    pub fn start_purge(&mut self, now: u64, resume_pc: u64, resume_priv: PrivLevel) {
        self.squash_from(now, self.head_seq(), resume_pc);
        self.stats.purges += 1;
        self.begin_purge_sequence(now, Some((resume_pc, resume_priv)));
    }

    /// A one-line diagnostic snapshot of pipeline state (for debugging
    /// stuck simulations from tests and examples).
    pub fn debug_state(&self) -> String {
        let head = self.rob.front().map(|e| {
            format!(
                "seq={} pc={:#x} `{}` stage={:?} mem={:?} exc={:?}",
                e.seq,
                e.pc,
                e.inst,
                e.stage,
                e.mem.as_ref().map(|m| (m.phase, m.paddr)),
                e.exception
            )
        });
        format!(
            "rob={} head=[{}] iq={:?} lq={} sq={} sb={} fetchq={} fetch={:?} purge={:?} walker_active={} walkq={}",
            self.rob.len(),
            head.unwrap_or_default(),
            [self.iqs[0].len(), self.iqs[1].len(), self.iqs[2].len(), self.iqs[3].len()],
            self.lq_used,
            self.sq_used,
            self.sb.len(),
            self.fetch_queue.len(),
            self.fetch_state,
            self.purge,
            self.walker_active.is_some(),
            self.walker_queue.len(),
        )
    }

    /// Advances the core one cycle. Call before `mem.tick(now)`.
    pub fn tick(&mut self, now: u64, mem: &mut MemSystem) {
        if self.halted {
            return;
        }
        self.stats.cycles += 1;
        self.csrs.cycle = now;
        // Timer interrupts (simplified CLINT: compare CSRs against `now`).
        self.csrs
            .set_pending(mi6_isa::Interrupt::MachineTimer, now >= self.csrs.mtimecmp);
        self.csrs.set_pending(
            mi6_isa::Interrupt::SupervisorTimer,
            now >= self.csrs.stimecmp,
        );
        // Collect completions from both ports, dropping zombies.
        for c in mem.take_completions(self.id, Port::Data) {
            if !self.zombies.remove(&c.token) {
                self.data_completions.insert(c.token, c.ready_at);
            }
        }
        for c in mem.take_completions(self.id, Port::IFetch) {
            if !self.zombies.remove(&c.token) {
                self.ifetch_completions.insert(c.token, c.ready_at);
            }
        }
        if self.purge != PurgePhase::Idle {
            self.tick_purge(now, mem);
            return;
        }
        self.tick_commit(now, mem);
        if self.purge != PurgePhase::Idle || self.halted {
            return;
        }
        self.tick_writeback(now);
        self.advance_mem_ops(now, mem);
        self.tick_walker(now, mem);
        self.tick_issue(now);
        self.tick_rename(now);
        self.tick_fetch(now, mem);
        self.tick_store_buffer(now, mem);
    }
}
