//! Checkpoint serialization of the whole core pipeline.
//!
//! Everything in [`Core`] that can differ between two machines mid-run is
//! written: the architectural state (registers, PC, privilege, CSRs), the
//! front end (predictors, fetch state machine, fetch queue, decode
//! cache), the backend (ROB, RAT, issue queues, LQ/SQ occupancy, store
//! buffer), the translation machinery (TLBs, translation cache, walker),
//! the token bookkeeping (zombies, pending completions), the purge state
//! machine, and the statistics. The structural configuration (`cfg`,
//! `sec`, `id`) is *not* serialized — state is restored into a core built
//! with a matching (or, for forks, compatible) configuration; the machine
//! header's fingerprint enforces that.
//!
//! Hash-ordered containers (`decode_cache`, `zombies`, the completion
//! maps) are written in sorted key order so identical states always
//! produce identical bytes.

use super::*;
use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for Src {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            Src::Ready(v) => {
                w.u8(0);
                w.u64(v);
            }
            Src::Wait { seq, reg } => {
                w.u8(1);
                w.u64(seq);
                reg.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Src::Ready(r.u64()?),
            1 => Src::Wait {
                seq: r.u64()?,
                reg: Reg::load(r)?,
            },
            other => {
                return Err(SnapError::BadValue {
                    what: format!("Src tag {other}"),
                })
            }
        })
    }
}

impl SnapState for MemPhase {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            MemPhase::AddrGen { done_at } => {
                w.u8(0);
                w.u64(done_at);
            }
            MemPhase::Translate => w.u8(1),
            MemPhase::TlbLatency { ready_at } => {
                w.u8(2);
                w.u64(ready_at);
            }
            MemPhase::WaitWalk => w.u8(3),
            MemPhase::ReadyToAccess => w.u8(4),
            MemPhase::WaitMem => w.u8(5),
            MemPhase::WaitValue { ready_at } => {
                w.u8(6);
                w.u64(ready_at);
            }
            MemPhase::Done => w.u8(7),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MemPhase::AddrGen { done_at: r.u64()? },
            1 => MemPhase::Translate,
            2 => MemPhase::TlbLatency { ready_at: r.u64()? },
            3 => MemPhase::WaitWalk,
            4 => MemPhase::ReadyToAccess,
            5 => MemPhase::WaitMem,
            6 => MemPhase::WaitValue { ready_at: r.u64()? },
            7 => MemPhase::Done,
            other => {
                return Err(SnapError::BadValue {
                    what: format!("MemPhase tag {other}"),
                })
            }
        })
    }
}

impl SnapState for MemState {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.vaddr);
        self.paddr.save(w);
        w.u64(self.bytes);
        w.bool(self.is_store);
        self.store_data.save(w);
        self.phase.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MemState {
            vaddr: r.u64()?,
            paddr: SnapState::load(r)?,
            bytes: r.u64()?,
            is_store: r.bool()?,
            store_data: SnapState::load(r)?,
            phase: MemPhase::load(r)?,
        })
    }
}

impl SnapState for BranchState {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(self.pred_taken);
        w.u64(self.pred_target);
        self.tournament.save(w);
        self.actual_taken.save(w);
        w.u64(self.actual_target);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(BranchState {
            pred_taken: r.bool()?,
            pred_target: r.u64()?,
            tournament: SnapState::load(r)?,
            actual_taken: SnapState::load(r)?,
            actual_target: r.u64()?,
        })
    }
}

impl SnapState for Stage {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            Stage::InIq => w.u8(0),
            Stage::Exec { done_at } => {
                w.u8(1);
                w.u64(done_at);
            }
            Stage::MemOp => w.u8(2),
            Stage::AtCommit => w.u8(3),
            Stage::Done => w.u8(4),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Stage::InIq,
            1 => Stage::Exec { done_at: r.u64()? },
            2 => Stage::MemOp,
            3 => Stage::AtCommit,
            4 => Stage::Done,
            other => {
                return Err(SnapError::BadValue {
                    what: format!("Stage tag {other}"),
                })
            }
        })
    }
}

impl SnapState for RobEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.seq);
        w.u64(self.pc);
        self.inst.save(w);
        self.stage.save(w);
        self.srcs.save(w);
        self.dest.save(w);
        self.prev_map.save(w);
        w.u64(self.result);
        self.branch.save(w);
        self.mem.save(w);
        self.exception.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(RobEntry {
            seq: r.u64()?,
            pc: r.u64()?,
            inst: Inst::load(r)?,
            stage: Stage::load(r)?,
            srcs: SnapState::load(r)?,
            dest: SnapState::load(r)?,
            prev_map: SnapState::load(r)?,
            result: r.u64()?,
            branch: SnapState::load(r)?,
            mem: SnapState::load(r)?,
            exception: SnapState::load(r)?,
        })
    }
}

/// The ROB serializes in its logical entry form — a length then each
/// entry's fields in [`RobEntry::save`] order, exactly the bytes the old
/// `VecDeque<RobEntry>` field produced — so the struct-of-arrays ring
/// layout is invisible on disk (no `FORMAT_VERSION` bump; the arrays are
/// re-split entry by entry on load). The ring has a fixed configured
/// capacity, so loading is in-place rather than via `SnapState::load`.
impl Rob {
    fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.len());
        for i in 0..self.len() {
            self.entry(i).save(w);
        }
    }

    fn load_into(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        w_check(n <= self.capacity(), "ROB occupancy")?;
        self.clear();
        for _ in 0..n {
            self.push_back(RobEntry::load(r)?);
        }
        Ok(())
    }
}

impl SnapState for WalkClient {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            WalkClient::Fetch => w.u8(0),
            WalkClient::Rob(seq) => {
                w.u8(1);
                w.u64(seq);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WalkClient::Fetch,
            1 => WalkClient::Rob(r.u64()?),
            other => {
                return Err(SnapError::BadValue {
                    what: format!("WalkClient tag {other}"),
                })
            }
        })
    }
}

impl SnapState for WalkReq {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.vpn);
        self.kind.save(w);
        self.client.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(WalkReq {
            vpn: r.u64()?,
            kind: AccessKind::load(r)?,
            client: WalkClient::load(r)?,
        })
    }
}

impl SnapState for WalkPending {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            WalkPending::Issue => w.u8(0),
            WalkPending::Token(t) => {
                w.u8(1);
                w.u64(t);
            }
            WalkPending::ReadyAt(c) => {
                w.u8(2);
                w.u64(c);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WalkPending::Issue,
            1 => WalkPending::Token(r.u64()?),
            2 => WalkPending::ReadyAt(r.u64()?),
            other => {
                return Err(SnapError::BadValue {
                    what: format!("WalkPending tag {other}"),
                })
            }
        })
    }
}

impl SnapState for ActiveWalk {
    fn save(&self, w: &mut SnapWriter) {
        self.req.save(w);
        w.usize(self.level);
        w.u64(self.table);
        self.pending.save(w);
        w.u64(self.pte_addr);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(ActiveWalk {
            req: WalkReq::load(r)?,
            level: r.usize()?,
            table: r.u64()?,
            pending: WalkPending::load(r)?,
            pte_addr: r.u64()?,
        })
    }
}

impl SnapState for WalkResult {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            WalkResult::Ok => w.u8(0),
            WalkResult::Fault(e) => {
                w.u8(1);
                e.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => WalkResult::Ok,
            1 => WalkResult::Fault(Exception::load(r)?),
            other => {
                return Err(SnapError::BadValue {
                    what: format!("WalkResult tag {other}"),
                })
            }
        })
    }
}

impl SnapState for FetchState {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            FetchState::Idle => w.u8(0),
            FetchState::WaitWalk => w.u8(1),
            FetchState::TlbDelay {
                ready_at,
                paddr,
                region_ok,
            } => {
                w.u8(2);
                w.u64(ready_at);
                w.u64(paddr);
                w.bool(region_ok);
            }
            FetchState::WaitICache { token, paddr } => {
                w.u8(3);
                w.u64(token);
                w.u64(paddr);
            }
            FetchState::Deliver { ready_at, paddr } => {
                w.u8(4);
                w.u64(ready_at);
                w.u64(paddr);
            }
            FetchState::Stalled => w.u8(5),
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => FetchState::Idle,
            1 => FetchState::WaitWalk,
            2 => FetchState::TlbDelay {
                ready_at: r.u64()?,
                paddr: r.u64()?,
                region_ok: r.bool()?,
            },
            3 => FetchState::WaitICache {
                token: r.u64()?,
                paddr: r.u64()?,
            },
            4 => FetchState::Deliver {
                ready_at: r.u64()?,
                paddr: r.u64()?,
            },
            5 => FetchState::Stalled,
            other => {
                return Err(SnapError::BadValue {
                    what: format!("FetchState tag {other}"),
                })
            }
        })
    }
}

impl SnapState for FetchedInst {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.pc);
        self.inst.save(w);
        self.pred.save(w);
        self.poison.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FetchedInst {
            pc: r.u64()?,
            inst: Inst::load(r)?,
            pred: SnapState::load(r)?,
            poison: SnapState::load(r)?,
            // Observability-only, never serialized: restored entries
            // trace a fetch stamp of 0 ("unknown"), keeping the snapshot
            // format unchanged.
            fetched_at: 0,
        })
    }
}

impl SnapState for PurgePhase {
    fn save(&self, w: &mut SnapWriter) {
        match *self {
            PurgePhase::Idle => w.u8(0),
            PurgePhase::DrainMem => w.u8(1),
            PurgePhase::Flushing { until } => {
                w.u8(2);
                w.u64(until);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => PurgePhase::Idle,
            1 => PurgePhase::DrainMem,
            2 => PurgePhase::Flushing { until: r.u64()? },
            other => {
                return Err(SnapError::BadValue {
                    what: format!("PurgePhase tag {other}"),
                })
            }
        })
    }
}

impl SnapState for SbEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.line);
        w.bool(self.issued);
        w.u64(self.token);
        w.bool(self.done);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(SbEntry {
            line: r.u64()?,
            issued: r.bool()?,
            token: r.u64()?,
            done: r.bool()?,
        })
    }
}

/// Serializes a hash map as sorted `(key, value)` pairs.
fn save_sorted_map<V: SnapState + Clone, S: std::hash::BuildHasher>(
    map: &HashMap<u64, V, S>,
    w: &mut SnapWriter,
) {
    let mut entries: Vec<(u64, V)> = map.iter().map(|(k, v)| (*k, v.clone())).collect();
    entries.sort_unstable_by_key(|(k, _)| *k);
    entries.save(w);
}

fn load_map<V: SnapState, S: std::hash::BuildHasher + Default>(
    r: &mut SnapReader<'_>,
) -> Result<HashMap<u64, V, S>, SnapError> {
    let entries: Vec<(u64, V)> = SnapState::load(r)?;
    Ok(entries.into_iter().collect())
}

impl Core {
    /// Whether this core has no business in flight with the memory system:
    /// no I-cache or D-cache request outstanding, no walker access on the
    /// data port, no store-buffer entry waiting on the L1, no undelivered
    /// completions, and no purge sweep running. A snapshot taken here (with
    /// the hierarchy also quiescent) can be forked across variants.
    pub fn mem_quiescent(&self) -> bool {
        !matches!(self.fetch_state, FetchState::WaitICache { .. })
            && self
                .rob
                .mems()
                .all(|m| !matches!(m.as_ref().map(|m| m.phase), Some(MemPhase::WaitMem)))
            && !matches!(
                self.walker_active.as_ref().map(|aw| aw.pending),
                Some(WalkPending::Token(_))
            )
            && self.sb.iter().all(|s| !s.issued || s.done)
            && self.data_completions.is_empty()
            && self.ifetch_completions.is_empty()
            && self.purge == PurgePhase::Idle
    }

    /// Holds the front end back from *starting* new fetches (in-flight
    /// ones finish normally) — the machine-level quiescence drain calls
    /// this every cycle so streaming workloads, which otherwise always
    /// have a miss in flight, reach a memory-quiescent snapshot point.
    pub fn drain_stall_fetch(&mut self, now: u64) {
        if self.fetch_state == FetchState::Idle {
            self.fetch_stall_until = self.fetch_stall_until.max(now + 2);
        }
    }

    /// Serializes every mutable field of the core. The structural
    /// configuration is not written — restore targets a core built with a
    /// compatible configuration (enforced by the machine fingerprint).
    pub fn save_state(&self, w: &mut SnapWriter) {
        // Architectural state.
        self.regs.save(w);
        w.u64(self.pc);
        self.priv_level.save(w);
        self.csrs.save(w);
        w.bool(self.halted);
        // Front end.
        self.btb.save(w);
        self.tournament.save(w);
        self.ras.save(w);
        w.u64(self.fetch_pc);
        self.fetch_state.save(w);
        self.fetch_queue.save(w);
        w.u64(self.fetch_stall_until);
        w.u64(self.next_fetch_token);
        self.itlb.save(w);
        // The decode cache serializes as sorted (paddr, Inst) pairs —
        // the same byte sequence `save_sorted_map` produced when it was
        // a HashMap, so the snapshot format is unchanged.
        self.decode_cache.sorted_entries().save(w);
        // Backend.
        self.rob.save_state(w);
        w.u64(self.next_seq);
        self.rat.save(w);
        self.iqs.save(w);
        w.u64(self.muldiv_busy_until);
        w.usize(self.lq_used);
        w.usize(self.sq_used);
        self.sb.save(w);
        w.u64(self.next_sb_token);
        w.u16(self.committed_ghist);
        // Translation.
        self.dtlb.save(w);
        self.l2_tlb.save(w);
        self.tcache.save(w);
        self.walker_queue.save(w);
        self.walker_active.save(w);
        self.walk_results.save(w);
        w.u64(self.next_ptw_token);
        // Token bookkeeping.
        let mut zombies: Vec<u64> = self.zombies.iter().copied().collect();
        zombies.sort_unstable();
        zombies.save(w);
        save_sorted_map(&self.data_completions, w);
        save_sorted_map(&self.ifetch_completions, w);
        // Purge.
        self.purge.save(w);
        self.purge_resume.save(w);
        // Counters.
        self.stats.save(w);
    }

    /// Restores state saved by [`Core::save_state`] into this core.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError`] on corrupt input or when a serialized
    /// structure does not fit this core's configuration.
    pub fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.regs = SnapState::load(r)?;
        self.pc = r.u64()?;
        self.priv_level = PrivLevel::load(r)?;
        self.csrs = CsrFile::load(r)?;
        self.halted = r.bool()?;
        self.btb = SnapState::load(r)?;
        self.tournament = SnapState::load(r)?;
        self.ras = SnapState::load(r)?;
        w_check(self.btb.occupancy() <= self.cfg.btb_entries, "BTB size")?;
        self.fetch_pc = r.u64()?;
        self.fetch_state = FetchState::load(r)?;
        self.fetch_queue = SnapState::load(r)?;
        self.fetch_stall_until = r.u64()?;
        self.next_fetch_token = r.u64()?;
        self.itlb = SnapState::load(r)?;
        self.decode_cache.fill_from(SnapState::load(r)?);
        self.rob.load_into(r)?;
        w_check(self.rob.len() <= self.cfg.rob_entries, "ROB occupancy")?;
        self.next_seq = r.u64()?;
        self.rat = SnapState::load(r)?;
        self.iqs = SnapState::load(r)?;
        self.muldiv_busy_until = r.u64()?;
        self.lq_used = r.usize()?;
        self.sq_used = r.usize()?;
        self.sb = SnapState::load(r)?;
        self.next_sb_token = r.u64()?;
        self.committed_ghist = r.u16()?;
        self.dtlb = SnapState::load(r)?;
        self.l2_tlb = SnapState::load(r)?;
        self.tcache = SnapState::load(r)?;
        self.walker_queue = SnapState::load(r)?;
        self.walker_active = SnapState::load(r)?;
        self.walk_results = SnapState::load(r)?;
        self.next_ptw_token = r.u64()?;
        let zombies: Vec<u64> = SnapState::load(r)?;
        self.zombies = zombies.into_iter().collect();
        self.data_completions = load_map(r)?;
        self.ifetch_completions = load_map(r)?;
        self.purge = PurgePhase::load(r)?;
        self.purge_resume = SnapState::load(r)?;
        self.stats = CoreStats::load(r)?;
        // The LSQ index is derived state: the snapshot format carries no
        // trace of it — rebuild it from the deserialized ROB (with the
        // completion map and walk results deciding which ops are parked).
        self.lsq = LsqIndex::rebuild(&self.rob, &self.data_completions, &self.walk_results);
        // So are the issue wakeup matrix and the per-pipe ready sets.
        self.rebuild_wakeup();
        // Observability state is runtime-only: the restored in-flight ops
        // were never seen by the tracer, so its hooks must ignore them
        // (guaranteed by forgetting all live records), and the CPI stack
        // restarts from zero (its own cycle counter keeps the sum
        // invariant exact relative to the restore point).
        if let Some(t) = &mut self.tracer {
            t.reset_in_flight();
        }
        self.cpi = CpiStack::default();
        self.data_levels = TokenMap::default();
        Ok(())
    }
}

fn w_check(ok: bool, what: &str) -> Result<(), SnapError> {
    if ok {
        Ok(())
    } else {
        Err(SnapError::ConfigMismatch { what: what.into() })
    }
}
