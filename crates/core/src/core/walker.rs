//! Address translation: the two-level TLB lookup path and the hardware
//! page-table walker, whose accesses go through the data port and are
//! therefore region-checked (paper Section 5.3).

use super::*;

impl Core {
    /// Delivers a finished walk to its client. A ROB client has been
    /// *parked* off the mem-op worklist since it entered `WaitWalk`, so
    /// delivery re-inserts it; `advance_mem_ops` consumes the result next
    /// cycle (the walker runs after the mem-op sweep), exactly as it did
    /// when parked ops stayed on the worklist polling.
    fn deliver_walk_result(&mut self, client: WalkClient, result: WalkResult) {
        if let WalkClient::Rob(seq) = client {
            self.lsq.memop_insert(seq);
        }
        self.walk_results.push((client, result));
    }

    pub(super) fn cancel_walk(&mut self, client: WalkClient) {
        self.walker_queue.retain(|r| r.client != client);
        if let Some(active) = &mut self.walker_active {
            if active.req.client == client {
                // Let the memory access finish but drop the result (or
                // drop it immediately if it already arrived).
                if let WalkPending::Token(t) = active.pending {
                    if self.data_completions.remove(&t).is_none() {
                        self.zombies.insert(t);
                    }
                }
                self.walker_active = None;
            }
        }
        self.walk_results.retain(|(c, _)| *c != client);
    }

    // ---------------------------------------------------------------- TLB

    /// Attempts a translation through the TLB hierarchy.
    ///
    /// Returns:
    /// - `Ok(Hit { .. })` on a TLB hit,
    /// - `Ok(Walking)` if a page-table walk is pending for this client,
    /// - `Ok(Busy)` if the walker could not accept the request (D-TLB
    ///   outstanding-miss limit) — the requester retries next cycle,
    /// - `Err(exception)` on a permission fault detected at TLB-hit time.
    pub(super) fn try_translate(
        &mut self,
        vaddr: u64,
        kind: AccessKind,
        client: WalkClient,
    ) -> Result<TranslateOutcome, Exception> {
        let va = VirtAddr::new(vaddr);
        let vpn = va.raw() >> PAGE_SHIFT;
        let user = self.priv_level == PrivLevel::User;
        let l1 = match kind {
            AccessKind::Fetch => &mut self.itlb,
            _ => &mut self.dtlb,
        };
        let fault = |kind: AccessKind| match kind {
            AccessKind::Fetch => Exception::InstPageFault,
            AccessKind::Load => Exception::LoadPageFault,
            AccessKind::Store => Exception::StorePageFault,
        };
        if let Some(entry) = l1.lookup(vpn) {
            if !kind.permitted(entry.pte, user) {
                return Err(fault(kind));
            }
            return Ok(TranslateOutcome::Hit {
                paddr: entry.translate(va).raw(),
                region_ok: entry.region_ok,
                extra: 0,
            });
        }
        if let Some(entry) = self.l2_tlb.lookup(vpn) {
            if !kind.permitted(entry.pte, user) {
                return Err(fault(kind));
            }
            let l1 = match kind {
                AccessKind::Fetch => &mut self.itlb,
                _ => &mut self.dtlb,
            };
            l1.insert(entry);
            return Ok(TranslateOutcome::Hit {
                paddr: entry.translate(va).raw(),
                region_ok: entry.region_ok,
                extra: L2_TLB_LATENCY,
            });
        }
        // A walk already pending for this client?
        let pending = self.walker_queue.iter().any(|r| r.client == client)
            || self
                .walker_active
                .as_ref()
                .is_some_and(|a| a.req.client == client);
        if pending {
            return Ok(TranslateOutcome::Walking);
        }
        // The D-TLB supports at most `dtlb_max_misses` outstanding misses
        // (Figure 4); beyond that the requester must retry.
        let data_walks = self
            .walker_queue
            .iter()
            .filter(|r| r.kind != AccessKind::Fetch)
            .count()
            + self
                .walker_active
                .as_ref()
                .is_some_and(|a| a.req.kind != AccessKind::Fetch) as usize;
        if kind != AccessKind::Fetch && data_walks >= self.cfg.dtlb_max_misses {
            return Ok(TranslateOutcome::Busy);
        }
        self.walker_queue.push_back(WalkReq { vpn, kind, client });
        Ok(TranslateOutcome::Walking)
    }

    /// Advances the page-table walker by one cycle.
    pub(super) fn tick_walker(&mut self, now: u64, mem: &mut MemSystem) {
        if self.walker_active.is_none() {
            let Some(req) = self.walker_queue.pop_front() else {
                return;
            };
            // Start from the deepest translation-cache hit.
            let root = (self.csrs.satp & ((1 << 44) - 1)) << PAGE_SHIFT;
            let (level, table) = if let Some(t) = self.tcache.lookup(1, req.vpn >> 9) {
                (0, t.raw())
            } else if let Some(t) = self.tcache.lookup(2, req.vpn >> 18) {
                (1, t.raw())
            } else {
                (LEVELS - 1, root)
            };
            self.walker_active = Some(ActiveWalk {
                req,
                level,
                table,
                pending: WalkPending::Issue,
                pte_addr: 0,
            });
        }
        let Some(mut walk) = self.walker_active.take() else {
            return;
        };
        match walk.pending {
            WalkPending::Issue => {
                let idx = (walk.req.vpn >> (9 * walk.level)) & 0x1ff;
                let pte_addr = walk.table + idx * 8;
                walk.pte_addr = pte_addr;
                // Region check on the walk access itself (Section 5.3):
                // a violating PTW access is suppressed, never emitted.
                if !self.region_allowed(mem, pte_addr) {
                    self.stats.region_suppressed += 1;
                    self.deliver_walk_result(
                        walk.req.client,
                        WalkResult::Fault(Exception::DramRegionFault),
                    );
                    return; // walker freed
                }
                let token = TOKEN_PTW | (self.next_ptw_token & TOKEN_MASK);
                self.next_ptw_token += 1;
                match mem.access(
                    now,
                    self.id,
                    Port::Data,
                    token,
                    PhysAddr::new(pte_addr),
                    false,
                ) {
                    L1Access::Hit { ready_at } => {
                        walk.pending = WalkPending::ReadyAt(ready_at);
                        self.walker_active = Some(walk);
                    }
                    L1Access::Miss => {
                        walk.pending = WalkPending::Token(token);
                        self.walker_active = Some(walk);
                    }
                    L1Access::Blocked => {
                        walk.pending = WalkPending::Issue;
                        self.walker_active = Some(walk);
                    }
                }
            }
            WalkPending::Token(token) => {
                if let Some(&ready_at) = self.data_completions.get(&token) {
                    self.data_completions.remove(&token);
                    walk.pending = WalkPending::ReadyAt(ready_at);
                }
                self.walker_active = Some(walk);
            }
            WalkPending::ReadyAt(ready_at) => {
                if now < ready_at {
                    self.walker_active = Some(walk);
                    return;
                }
                let pte = PageTableEntry(mem.phys.read_u64(PhysAddr::new(walk.pte_addr)));
                let fault = || match walk.req.kind {
                    AccessKind::Fetch => Exception::InstPageFault,
                    AccessKind::Load => Exception::LoadPageFault,
                    AccessKind::Store => Exception::StorePageFault,
                };
                if !pte.valid() {
                    self.deliver_walk_result(walk.req.client, WalkResult::Fault(fault()));
                    self.stats.page_walks += 1;
                    return;
                }
                if pte.is_leaf() {
                    let leaf_base = pte.ppn() << PAGE_SHIFT;
                    let span = leaf_span(walk.level);
                    let region_ok = {
                        // One check suffices: no page straddles a region.
                        let probe = leaf_base & !(span - 1);
                        self.region_allowed(mem, probe)
                    };
                    let entry = TlbEntry {
                        vpn: walk.req.vpn & !((1u64 << (9 * walk.level)) - 1),
                        level: walk.level,
                        pte,
                        region_ok,
                    };
                    self.l2_tlb.insert(entry);
                    match walk.req.kind {
                        AccessKind::Fetch => self.itlb.insert(entry),
                        _ => self.dtlb.insert(entry),
                    }
                    self.deliver_walk_result(walk.req.client, WalkResult::Ok);
                    self.stats.page_walks += 1;
                } else {
                    let next_table = pte.ppn() << PAGE_SHIFT;
                    // Record the intermediate step in the translation
                    // cache: the table consulted at level-1 is determined
                    // by the vpn bits above it.
                    if walk.level >= 1 {
                        self.tcache.insert(
                            walk.level,
                            walk.req.vpn >> (9 * walk.level),
                            PhysAddr::new(next_table),
                        );
                    }
                    walk.level -= 1;
                    walk.table = next_table;
                    walk.pending = WalkPending::Issue;
                    self.walker_active = Some(walk);
                }
            }
        }
    }

    pub(super) fn take_walk_result(&mut self, client: WalkClient) -> Option<WalkResult> {
        let idx = self.walk_results.iter().position(|(c, _)| *c == client)?;
        Some(self.walk_results.remove(idx).1)
    }
}
