//! Rename, issue, and writeback: ROB insertion with RAT renaming and
//! the serialization gates (system instructions, NONSPEC), oldest-first
//! issue from the four issue queues, and branch resolution.

use super::*;

impl Core {
    // ------------------------------------------------------------- rename

    pub(super) fn tick_rename(&mut self, now: u64) {
        let mut renamed = 0;
        while renamed < self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                // Stall attribution counts whole blocked cycles (first
                // rename slot blocked with work in hand), not lost slots.
                if renamed == 0 && !self.fetch_queue.is_empty() {
                    self.cpi.rename_rob_full += 1;
                }
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            let inst = front.inst;
            let poisoned = front.poison.is_some();
            // Serialization: system instructions and (under the
            // non-speculative gate) memory instructions rename only into
            // an empty ROB.
            let serialize =
                !poisoned && (inst.is_system() || (self.nonspec_gate() && inst.is_mem()));
            if serialize && (!self.rob.is_empty() || renamed > 0) {
                if self.nonspec_gate() && inst.is_mem() {
                    self.stats.nonspec_stall_cycles += 1;
                }
                break;
            }
            // Structural slots.
            let pipe = if poisoned {
                None
            } else {
                match inst {
                    _ if inst.is_mem() => Some(Pipe::Mem),
                    _ if inst.is_muldiv_fp() => Some(Pipe::MulDiv),
                    Inst::Jal { .. } => None,
                    _ if inst.is_system() => None,
                    _ => {
                        // Pick the shorter ALU queue.
                        if self.iqs[0].len() <= self.iqs[1].len() {
                            Some(Pipe::Alu0)
                        } else {
                            Some(Pipe::Alu1)
                        }
                    }
                }
            };
            if let Some(p) = pipe {
                let iq = &self.iqs[p as usize];
                if iq.len() >= self.cfg.iq_entries {
                    if renamed == 0 {
                        self.cpi.rename_iq_full += 1;
                    }
                    break;
                }
            }
            if inst.is_load() && self.lq_used >= self.cfg.lq_entries {
                if renamed == 0 {
                    self.cpi.rename_lq_full += 1;
                }
                break;
            }
            if inst.is_store() && self.sq_used >= self.cfg.sq_entries {
                if renamed == 0 {
                    self.cpi.rename_sq_full += 1;
                }
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.start(
                    seq,
                    fetched.pc,
                    fetched.inst.to_string(),
                    fetched.fetched_at,
                    now,
                );
            }
            // Sources.
            let (s1, s2) = fetched.inst.sources();
            let mk_src = |r: Option<Reg>, core: &Core| -> Option<Src> {
                let r = r?;
                if r.is_zero() {
                    return Some(Src::Ready(0));
                }
                Some(match core.rat[r.index() as usize] {
                    Some(pseq) => Src::Wait { seq: pseq, reg: r },
                    None => Src::Ready(core.regs[r.index() as usize]),
                })
            };
            let srcs = [mk_src(s1, self), mk_src(s2, self)];
            // Destination renaming.
            let dest = fetched.inst.dest();
            let mut prev_map = None;
            if let Some(d) = dest {
                prev_map = self.rat[d.index() as usize];
                self.rat[d.index() as usize] = Some(seq);
            }
            let stage = if poisoned {
                Stage::Done
            } else if fetched.inst.is_system() {
                Stage::AtCommit
            } else if matches!(fetched.inst, Inst::Jal { .. }) {
                Stage::Done
            } else {
                Stage::InIq
            };
            let mem_state = fetched.inst.is_mem().then(|| {
                let bytes = match fetched.inst {
                    Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
                    _ => unreachable!(),
                };
                if fetched.inst.is_store() {
                    self.sq_used += 1;
                } else {
                    self.lq_used += 1;
                }
                MemState {
                    vaddr: 0,
                    paddr: None,
                    bytes,
                    is_store: fetched.inst.is_store(),
                    store_data: None,
                    // A poisoned mem op is born Stage::Done and never
                    // does address generation; born MemPhase::Done too,
                    // keeping the Done⇒Done invariant the LSQ index
                    // relies on to never track dead ops.
                    phase: if poisoned {
                        MemPhase::Done
                    } else {
                        MemPhase::AddrGen { done_at: 0 }
                    },
                }
            });
            let result = if matches!(fetched.inst, Inst::Jal { .. }) {
                fetched.pc.wrapping_add(4)
            } else {
                0
            };
            let entry = RobEntry {
                seq,
                pc: fetched.pc,
                inst: fetched.inst,
                stage,
                srcs,
                dest,
                prev_map,
                result,
                branch: fetched.pred,
                mem: mem_state,
                exception: fetched.poison,
            };
            if let Some(p) = pipe {
                self.iqs[p as usize].push(seq);
            }
            self.rob.push_back(entry);
            // Wakeup registration: resolve each source against the ROB
            // once, here, instead of re-polling every cycle. A producer
            // already `Done` is memoized immediately (exactly what
            // `poll_srcs` would do on first poll); an outstanding one gets
            // a consumer record in its wake list. An op with no
            // outstanding producers is born ready.
            if let Some(p) = pipe {
                let cidx = self.rob.len() - 1;
                debug_assert!(self.wake_lists[self.rob.phys(cidx)].is_empty());
                let mut outstanding = 0;
                for slot in 0..2 {
                    let Some(Src::Wait { seq: pseq, reg }) = self.rob.srcs(cidx)[slot] else {
                        continue;
                    };
                    match self.rob_index(pseq) {
                        // A squash can restore a RAT mapping to a producer
                        // that has since retired: its value lives in the
                        // register file (the `producer_value` fallback).
                        None => {
                            let v = self.regs[reg.index() as usize];
                            self.rob.srcs_mut(cidx)[slot] = Some(Src::Ready(v));
                        }
                        Some(pidx) if self.rob.stage(pidx) == Stage::Done => {
                            let v = self.rob.result(pidx);
                            self.rob.srcs_mut(cidx)[slot] = Some(Src::Ready(v));
                        }
                        Some(pidx) => {
                            self.wake_lists[self.rob.phys(pidx)].push((seq, slot as u8, p));
                            outstanding += 1;
                        }
                    }
                }
                if outstanding == 0 {
                    Self::ready_insert(&mut self.ready_iq[p as usize], seq);
                }
            }
            renamed += 1;
        }
    }

    // ----------------------------------------------------------- wakeup

    /// Sorted-insert into a ready set, skipping duplicates (both sources
    /// of one consumer can resolve off the same broadcast).
    pub(super) fn ready_insert(list: &mut Vec<u64>, seq: u64) {
        if let Err(pos) = list.binary_search(&seq) {
            list.insert(pos, seq);
        }
    }

    /// The producer at `idx` just finished (stage `Done`, result final):
    /// resolve every consumer registered against its slot. Consumers
    /// whose last outstanding source this was enter their pipe's ready
    /// set.
    pub(super) fn wake_consumers(&mut self, idx: usize) {
        let ph = self.rob.phys(idx);
        if self.wake_lists[ph].is_empty() {
            return;
        }
        let mut ws = std::mem::take(&mut self.wake_lists[ph]);
        let value = self.rob.result(idx);
        self.drain_waiters(&mut ws, value);
        self.wake_lists[ph] = ws; // keep the allocation for the next tenant
    }

    /// Resolves each registered consumer with the producer's `value`.
    /// Records of squashed consumers are skipped (seqs are never reused,
    /// so a stale record can only miss, never alias a live entry).
    pub(super) fn drain_waiters(&mut self, ws: &mut Vec<Waiter>, value: u64) {
        for &(cseq, slot, pipe) in ws.iter() {
            let Some(cidx) = self.rob_index(cseq) else {
                continue;
            };
            if self.rob.stage(cidx) != Stage::InIq {
                continue;
            }
            self.rob.srcs_mut(cidx)[slot as usize] = Some(Src::Ready(value));
            if self.srcs_ready(cidx).is_some() {
                Self::ready_insert(&mut self.ready_iq[pipe as usize], cseq);
            }
        }
        ws.clear();
    }

    /// Rebuilds the wakeup matrix and ready sets from the (restored) ROB
    /// and issue queues — both are derived state the snapshot never
    /// carries. Sources already resolvable (producer `Done` in the ROB,
    /// or retired with the value in the register file) make the entry
    /// ready; each genuinely outstanding source registers a consumer
    /// record.
    pub(super) fn rebuild_wakeup(&mut self) {
        for l in self.wake_lists.iter_mut() {
            l.clear();
        }
        for rq in &mut self.ready_iq {
            rq.clear();
        }
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            for k in 0..self.iqs[pipe as usize].len() {
                let cseq = self.iqs[pipe as usize][k];
                let cidx = self.rob_index(cseq).expect("IQ entry in ROB");
                if self.srcs_ready(cidx).is_some() {
                    Self::ready_insert(&mut self.ready_iq[pipe as usize], cseq);
                    continue;
                }
                for slot in 0..2 {
                    let Some(Src::Wait { seq: pseq, .. }) = self.rob.srcs(cidx)[slot] else {
                        continue;
                    };
                    if let Some(pidx) = self.rob_index(pseq) {
                        if self.rob.stage(pidx) != Stage::Done {
                            self.wake_lists[self.rob.phys(pidx)].push((cseq, slot as u8, pipe));
                        }
                    }
                }
            }
        }
    }

    /// Validates the ready-set invariant against a fresh poll of every
    /// issue queue (debug builds; mirrors `assert_lsq_matches`).
    #[cfg(any(debug_assertions, test))]
    pub(super) fn assert_wakeup_matches(&self) {
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            for &seq in &self.iqs[pipe as usize] {
                let idx = self.rob_index(seq).expect("IQ entry in ROB");
                let ready = self.srcs_ready(idx).is_some();
                let in_set = self.ready_iq[pipe as usize].binary_search(&seq).is_ok();
                assert_eq!(
                    ready, in_set,
                    "seq {seq} ({pipe:?}): polled readiness {ready} but ready-set membership {in_set}"
                );
            }
            for &seq in &self.ready_iq[pipe as usize] {
                assert!(
                    self.iqs[pipe as usize].binary_search(&seq).is_ok(),
                    "ready set holds seq {seq} not in its {pipe:?} IQ"
                );
            }
        }
    }

    // -------------------------------------------------------------- issue

    pub(super) fn tick_issue(&mut self, now: u64) {
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            if pipe == Pipe::MulDiv && now < self.muldiv_busy_until {
                continue;
            }
            // Oldest-first: the ready set is ascending by seq and holds
            // exactly the queue entries whose sources are resolved, so
            // its head IS the op the old oldest-first readiness scan
            // would pick.
            let Some(&seq) = self.ready_iq[pipe as usize].first() else {
                continue;
            };
            self.ready_iq[pipe as usize].remove(0);
            let q = &mut self.iqs[pipe as usize];
            let k = q.binary_search(&seq).expect("ready op in its IQ");
            q.remove(k);
            let idx = self.rob_index(seq).expect("chosen entry exists");
            if let Some(t) = self.tracer.as_deref_mut() {
                t.issue(seq, now);
            }
            let (a, b) = self.poll_srcs(idx).expect("ready");
            let inst = self.rob.inst(idx);
            let pc = self.rob.pc(idx);
            match pipe {
                Pipe::Alu0 | Pipe::Alu1 => {
                    let done_at = now + 1;
                    match inst {
                        Inst::Branch { cond, .. } => {
                            let taken = cond.eval(a, b);
                            let b_state = self.rob.branch_mut(idx).as_mut().expect("branch state");
                            b_state.actual_taken = Some(taken);
                            b_state.actual_target = if taken {
                                b_state.pred_target
                            } else {
                                pc.wrapping_add(4)
                            };
                            self.rob.set_stage(idx, Stage::Exec { done_at });
                        }
                        Inst::Jalr { off, .. } => {
                            let target = a.wrapping_add(off as i64 as u64) & !1;
                            let b_state = self.rob.branch_mut(idx).as_mut().expect("jalr state");
                            b_state.actual_taken = Some(true);
                            b_state.actual_target = target;
                            self.rob.set_result(idx, pc.wrapping_add(4));
                            self.rob.set_stage(idx, Stage::Exec { done_at });
                        }
                        _ => {
                            self.rob.set_result(idx, exec::eval(&inst, a, b, pc));
                            self.rob.set_stage(idx, Stage::Exec { done_at });
                        }
                    }
                }
                Pipe::MulDiv => {
                    let lat = match inst {
                        Inst::Div { .. }
                        | Inst::Divu { .. }
                        | Inst::Rem { .. }
                        | Inst::Remu { .. } => self.cfg.div_latency,
                        Inst::Fdiv { .. } => self.cfg.fdiv_latency,
                        Inst::Fadd { .. } | Inst::Fmul { .. } => self.cfg.fp_latency,
                        _ => self.cfg.mul_latency,
                    };
                    let pipelined = matches!(
                        inst,
                        Inst::Mul { .. }
                            | Inst::Mulh { .. }
                            | Inst::Fadd { .. }
                            | Inst::Fmul { .. }
                    );
                    self.rob.set_result(idx, exec::eval(&inst, a, b, pc));
                    self.rob.set_stage(
                        idx,
                        Stage::Exec {
                            done_at: now + lat as u64,
                        },
                    );
                    self.muldiv_busy_until = if pipelined { now + 1 } else { now + lat as u64 };
                }
                Pipe::Mem => {
                    let vaddr = exec::effective_address(&inst, a);
                    let m = self.rob.mem_mut(idx).expect("mem state");
                    m.vaddr = vaddr;
                    if m.is_store {
                        m.store_data = Some(b);
                    }
                    m.phase = MemPhase::AddrGen { done_at: now + 1 };
                    self.rob.set_stage(idx, Stage::MemOp);
                    self.lsq.memop_insert(seq);
                }
            }
            if !matches!(pipe, Pipe::Mem) {
                // Every non-mem arm above entered `Stage::Exec`: index the
                // op so `tick_writeback` finds it without a ROB scan.
                self.lsq.exec_insert(seq);
            }
        }
    }

    // ---------------------------------------------------------- writeback

    /// Completes executing instructions and resolves branches.
    ///
    /// Visits only the exec worklist — the ascending-seq index of
    /// `Stage::Exec` entries maintained by `tick_issue` and `squash_from`
    /// — instead of scanning the whole ROB. Ascending seq order preserves
    /// the oldest-mispredict-wins rule of the original scan.
    pub(super) fn tick_writeback(&mut self, now: u64) {
        let mut mispredict: Option<(u64, u64)> = None; // (squash-from, new pc)
        let mut seqs = std::mem::take(&mut self.lsq.exec_scratch);
        seqs.clear();
        seqs.extend_from_slice(self.lsq.execs());
        for &seq in &seqs {
            let idx = self.rob_index(seq).expect("exec worklist entry in ROB");
            let Stage::Exec { done_at } = self.rob.stage(idx) else {
                debug_assert!(false, "exec worklist seq {seq} not in Stage::Exec");
                continue;
            };
            if now < done_at {
                continue;
            }
            self.rob.set_stage(idx, Stage::Done);
            self.wake_consumers(idx);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.complete(seq, now);
            }
            let branch = self.rob.branch(idx);
            let is_cond = self.rob.inst(idx).is_cond_branch();
            self.lsq.exec_remove(seq);
            if let Some(b) = branch {
                let actual_taken = b.actual_taken.expect("resolved at execute");
                let wrong = if is_cond {
                    actual_taken != b.pred_taken
                } else {
                    b.actual_target != b.pred_target
                };
                if wrong && mispredict.is_none() {
                    if is_cond {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.jump_mispredicts += 1;
                    }
                    mispredict = Some((seq + 1, b.actual_target));
                }
            }
        }
        self.lsq.exec_scratch = seqs;
        if let Some((from, target)) = mispredict {
            self.squash_from(now, from, target);
            self.cpi.note_squash(CpiCategory::SquashMispredict, from);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Exec-worklist maintenance under squashes: every path that removes a
    //! `Stage::Exec` entry from the ROB must also drop it from the
    //! worklist. `tests/golden_stats.rs` proves timing equivalence on real
    //! programs; these pin the index bookkeeping on fabricated squash
    //! shapes a fingerprint might not happen to exercise.

    use super::*;
    use mi6_isa::BranchCond;

    fn test_core() -> Core {
        Core::new(0, CoreConfig::paper(), SecurityConfig::insecure())
    }

    /// Pushes a fabricated op mid-execute, maintaining the exec worklist
    /// at the same point `tick_issue` does.
    fn push_exec_op(core: &mut Core, seq: u64, done_at: u64, branch: Option<BranchState>) {
        let inst = if branch.is_some() {
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                off: 16,
            }
        } else {
            Inst::addi(Reg::T0, Reg::T1, 1)
        };
        core.rob.push_back(RobEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst,
            stage: Stage::Exec { done_at },
            srcs: [None, None],
            dest: None,
            prev_map: None,
            result: 0,
            branch,
            mem: None,
            exception: None,
        });
        core.next_seq = seq + 1;
        core.lsq.exec_insert(seq);
        core.assert_lsq_matches();
    }

    fn resolved_branch(pred_taken: bool, actual_taken: bool) -> BranchState {
        BranchState {
            pred_taken,
            pred_target: 0x2000,
            tournament: None,
            actual_taken: Some(actual_taken),
            actual_target: 0x2000,
        }
    }

    #[test]
    fn squash_drops_younger_exec_entries_from_worklist() {
        let mut core = test_core();
        for seq in 0..4 {
            push_exec_op(&mut core, seq, 100, None);
        }
        core.squash_from(50, 2, 0x4000);
        assert_eq!(core.lsq.execs(), &[0, 1]);
        core.assert_lsq_matches();
    }

    #[test]
    fn mispredict_at_writeback_scrubs_squashed_exec_entries() {
        let mut core = test_core();
        // A mispredicted branch completing now, with younger ops still
        // mid-execute: the branch leaves the worklist at completion, the
        // younger entries leave it inside `squash_from`.
        push_exec_op(&mut core, 0, 10, Some(resolved_branch(false, true)));
        push_exec_op(&mut core, 1, 30, None);
        push_exec_op(&mut core, 2, 40, None);
        core.tick_writeback(10);
        assert!(core.lsq.execs().is_empty());
        assert_eq!(core.stats.branch_mispredicts, 1);
        assert_eq!(core.stats.squashed_instructions, 2);
        assert_eq!(core.rob.len(), 1);
        assert!(matches!(core.rob.stage(0), Stage::Done));
        core.assert_lsq_matches();
    }

    #[test]
    fn oldest_mispredict_wins_and_worklist_stays_consistent() {
        let mut core = test_core();
        // Two mispredicted branches resolving the same cycle: the older
        // one squashes the younger, which has already completed by then —
        // its worklist removal must not double-fire.
        push_exec_op(&mut core, 0, 10, Some(resolved_branch(false, true)));
        push_exec_op(&mut core, 1, 10, Some(resolved_branch(true, false)));
        core.tick_writeback(10);
        assert!(core.lsq.execs().is_empty());
        assert_eq!(core.stats.branch_mispredicts, 1);
        assert_eq!(core.rob.len(), 1);
        core.assert_lsq_matches();
    }

    #[test]
    fn purge_squash_clears_exec_worklist() {
        let mut core = test_core();
        push_exec_op(&mut core, 0, 100, None);
        push_exec_op(&mut core, 1, 120, None);
        core.start_purge(5, 0x8000, PrivLevel::Supervisor);
        assert!(core.lsq.execs().is_empty());
        assert!(core.rob.is_empty());
        core.assert_lsq_matches();
    }
}
