//! Rename, issue, and writeback: ROB insertion with RAT renaming and
//! the serialization gates (system instructions, NONSPEC), oldest-first
//! issue from the four issue queues, and branch resolution.

use super::*;

impl Core {
    // ------------------------------------------------------------- rename

    pub(super) fn tick_rename(&mut self, now: u64) {
        let mut renamed = 0;
        while renamed < self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            let inst = front.inst;
            let poisoned = front.poison.is_some();
            // Serialization: system instructions and (under the
            // non-speculative gate) memory instructions rename only into
            // an empty ROB.
            let serialize =
                !poisoned && (inst.is_system() || (self.nonspec_gate() && inst.is_mem()));
            if serialize && (!self.rob.is_empty() || renamed > 0) {
                if self.nonspec_gate() && inst.is_mem() {
                    self.stats.nonspec_stall_cycles += 1;
                }
                break;
            }
            // Structural slots.
            let pipe = if poisoned {
                None
            } else {
                match inst {
                    _ if inst.is_mem() => Some(Pipe::Mem),
                    _ if inst.is_muldiv_fp() => Some(Pipe::MulDiv),
                    Inst::Jal { .. } => None,
                    _ if inst.is_system() => None,
                    _ => {
                        // Pick the shorter ALU queue.
                        if self.iqs[0].len() <= self.iqs[1].len() {
                            Some(Pipe::Alu0)
                        } else {
                            Some(Pipe::Alu1)
                        }
                    }
                }
            };
            if let Some(p) = pipe {
                let iq = &self.iqs[p as usize];
                if iq.len() >= self.cfg.iq_entries {
                    break;
                }
            }
            if inst.is_load() && self.lq_used >= self.cfg.lq_entries {
                break;
            }
            if inst.is_store() && self.sq_used >= self.cfg.sq_entries {
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            // Sources.
            let (s1, s2) = fetched.inst.sources();
            let mk_src = |r: Option<Reg>, core: &Core| -> Option<Src> {
                let r = r?;
                if r.is_zero() {
                    return Some(Src::Ready(0));
                }
                Some(match core.rat[r.index() as usize] {
                    Some(pseq) => Src::Wait { seq: pseq, reg: r },
                    None => Src::Ready(core.regs[r.index() as usize]),
                })
            };
            let srcs = [mk_src(s1, self), mk_src(s2, self)];
            // Destination renaming.
            let dest = fetched.inst.dest();
            let mut prev_map = None;
            if let Some(d) = dest {
                prev_map = self.rat[d.index() as usize];
                self.rat[d.index() as usize] = Some(seq);
            }
            let stage = if poisoned {
                Stage::Done
            } else if fetched.inst.is_system() {
                Stage::AtCommit
            } else if matches!(fetched.inst, Inst::Jal { .. }) {
                Stage::Done
            } else {
                Stage::InIq
            };
            let mem_state = fetched.inst.is_mem().then(|| {
                let bytes = match fetched.inst {
                    Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
                    _ => unreachable!(),
                };
                if fetched.inst.is_store() {
                    self.sq_used += 1;
                } else {
                    self.lq_used += 1;
                }
                MemState {
                    vaddr: 0,
                    paddr: None,
                    bytes,
                    is_store: fetched.inst.is_store(),
                    store_data: None,
                    // A poisoned mem op is born Stage::Done and never
                    // does address generation; born MemPhase::Done too,
                    // keeping the Done⇒Done invariant the LSQ index
                    // relies on to never track dead ops.
                    phase: if poisoned {
                        MemPhase::Done
                    } else {
                        MemPhase::AddrGen { done_at: 0 }
                    },
                }
            });
            let result = if matches!(fetched.inst, Inst::Jal { .. }) {
                fetched.pc.wrapping_add(4)
            } else {
                0
            };
            let entry = RobEntry {
                seq,
                pc: fetched.pc,
                inst: fetched.inst,
                stage,
                srcs,
                dest,
                prev_map,
                result,
                branch: fetched.pred,
                mem: mem_state,
                exception: fetched.poison,
            };
            if let Some(p) = pipe {
                self.iqs[p as usize].push(seq);
            }
            self.rob.push_back(entry);
            renamed += 1;
            let _ = now;
        }
    }

    // -------------------------------------------------------------- issue

    pub(super) fn tick_issue(&mut self, now: u64) {
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            if pipe == Pipe::MulDiv && now < self.muldiv_busy_until {
                continue;
            }
            // Oldest-first: find the lowest seq whose sources are ready.
            // Issue queues are ascending by construction — rename pushes
            // strictly increasing seqs and squash `retain`s in place — so
            // in-order iteration needs no per-cycle clone-and-sort.
            debug_assert!(self.iqs[pipe as usize].is_sorted());
            let mut chosen: Option<u64> = None;
            for k in 0..self.iqs[pipe as usize].len() {
                let seq = self.iqs[pipe as usize][k];
                let Some(idx) = self.rob_index(seq) else {
                    continue;
                };
                if self.srcs_ready(&self.rob[idx]).is_some() {
                    chosen = Some(seq);
                    break;
                }
            }
            let Some(seq) = chosen else {
                continue;
            };
            self.iqs[pipe as usize].retain(|&s| s != seq);
            let idx = self.rob_index(seq).expect("chosen entry exists");
            let (a, b) = self.srcs_ready(&self.rob[idx]).expect("ready");
            let entry = &mut self.rob[idx];
            match pipe {
                Pipe::Alu0 | Pipe::Alu1 => {
                    let done_at = now + 1;
                    match entry.inst {
                        Inst::Branch { cond, .. } => {
                            let taken = cond.eval(a, b);
                            let b_state = entry.branch.as_mut().expect("branch state");
                            b_state.actual_taken = Some(taken);
                            b_state.actual_target = if taken {
                                b_state.pred_target
                            } else {
                                entry.pc.wrapping_add(4)
                            };
                            entry.stage = Stage::Exec { done_at };
                        }
                        Inst::Jalr { off, .. } => {
                            let target = a.wrapping_add(off as i64 as u64) & !1;
                            let b_state = entry.branch.as_mut().expect("jalr state");
                            b_state.actual_taken = Some(true);
                            b_state.actual_target = target;
                            entry.result = entry.pc.wrapping_add(4);
                            entry.stage = Stage::Exec { done_at };
                        }
                        _ => {
                            entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                            entry.stage = Stage::Exec { done_at };
                        }
                    }
                }
                Pipe::MulDiv => {
                    let lat = match entry.inst {
                        Inst::Div { .. }
                        | Inst::Divu { .. }
                        | Inst::Rem { .. }
                        | Inst::Remu { .. } => self.cfg.div_latency,
                        Inst::Fdiv { .. } => self.cfg.fdiv_latency,
                        Inst::Fadd { .. } | Inst::Fmul { .. } => self.cfg.fp_latency,
                        _ => self.cfg.mul_latency,
                    };
                    let pipelined = matches!(
                        entry.inst,
                        Inst::Mul { .. }
                            | Inst::Mulh { .. }
                            | Inst::Fadd { .. }
                            | Inst::Fmul { .. }
                    );
                    entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                    entry.stage = Stage::Exec {
                        done_at: now + lat as u64,
                    };
                    self.muldiv_busy_until = if pipelined { now + 1 } else { now + lat as u64 };
                }
                Pipe::Mem => {
                    let vaddr = exec::effective_address(&entry.inst, a);
                    let m = entry.mem.as_mut().expect("mem state");
                    m.vaddr = vaddr;
                    if m.is_store {
                        m.store_data = Some(b);
                    }
                    m.phase = MemPhase::AddrGen { done_at: now + 1 };
                    entry.stage = Stage::MemOp;
                    self.lsq.memop_insert(seq);
                }
            }
        }
    }

    // ---------------------------------------------------------- writeback

    /// Completes executing instructions and resolves branches.
    pub(super) fn tick_writeback(&mut self, now: u64) {
        // Find resolved branches / finished ALU ops.
        let mut mispredict: Option<(u64, u64)> = None; // (squash-from, new pc)
        for idx in 0..self.rob.len() {
            let e = &self.rob[idx];
            let Stage::Exec { done_at } = e.stage else {
                continue;
            };
            if now < done_at {
                continue;
            }
            let seq = e.seq;
            let entry = &mut self.rob[idx];
            entry.stage = Stage::Done;
            if let Some(b) = entry.branch {
                let actual_taken = b.actual_taken.expect("resolved at execute");
                let wrong = if entry.inst.is_cond_branch() {
                    actual_taken != b.pred_taken
                } else {
                    b.actual_target != b.pred_target
                };
                if wrong && mispredict.is_none() {
                    if entry.inst.is_cond_branch() {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.jump_mispredicts += 1;
                    }
                    mispredict = Some((seq + 1, b.actual_target));
                }
            }
        }
        if let Some((from, target)) = mispredict {
            self.squash_from(now, from, target);
        }
    }
}
