//! Rename, issue, and writeback: ROB insertion with RAT renaming and
//! the serialization gates (system instructions, NONSPEC), oldest-first
//! issue from the four issue queues, and branch resolution.

use super::*;

impl Core {
    // ------------------------------------------------------------- rename

    pub(super) fn tick_rename(&mut self, now: u64) {
        let mut renamed = 0;
        while renamed < self.cfg.fetch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                break;
            }
            let Some(front) = self.fetch_queue.front() else {
                break;
            };
            let inst = front.inst;
            let poisoned = front.poison.is_some();
            // Serialization: system instructions and (under the
            // non-speculative gate) memory instructions rename only into
            // an empty ROB.
            let serialize =
                !poisoned && (inst.is_system() || (self.nonspec_gate() && inst.is_mem()));
            if serialize && (!self.rob.is_empty() || renamed > 0) {
                if self.nonspec_gate() && inst.is_mem() {
                    self.stats.nonspec_stall_cycles += 1;
                }
                break;
            }
            // Structural slots.
            let pipe = if poisoned {
                None
            } else {
                match inst {
                    _ if inst.is_mem() => Some(Pipe::Mem),
                    _ if inst.is_muldiv_fp() => Some(Pipe::MulDiv),
                    Inst::Jal { .. } => None,
                    _ if inst.is_system() => None,
                    _ => {
                        // Pick the shorter ALU queue.
                        if self.iqs[0].len() <= self.iqs[1].len() {
                            Some(Pipe::Alu0)
                        } else {
                            Some(Pipe::Alu1)
                        }
                    }
                }
            };
            if let Some(p) = pipe {
                let iq = &self.iqs[p as usize];
                if iq.len() >= self.cfg.iq_entries {
                    break;
                }
            }
            if inst.is_load() && self.lq_used >= self.cfg.lq_entries {
                break;
            }
            if inst.is_store() && self.sq_used >= self.cfg.sq_entries {
                break;
            }
            let fetched = self.fetch_queue.pop_front().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            // Sources.
            let (s1, s2) = fetched.inst.sources();
            let mk_src = |r: Option<Reg>, core: &Core| -> Option<Src> {
                let r = r?;
                if r.is_zero() {
                    return Some(Src::Ready(0));
                }
                Some(match core.rat[r.index() as usize] {
                    Some(pseq) => Src::Wait { seq: pseq, reg: r },
                    None => Src::Ready(core.regs[r.index() as usize]),
                })
            };
            let srcs = [mk_src(s1, self), mk_src(s2, self)];
            // Destination renaming.
            let dest = fetched.inst.dest();
            let mut prev_map = None;
            if let Some(d) = dest {
                prev_map = self.rat[d.index() as usize];
                self.rat[d.index() as usize] = Some(seq);
            }
            let stage = if poisoned {
                Stage::Done
            } else if fetched.inst.is_system() {
                Stage::AtCommit
            } else if matches!(fetched.inst, Inst::Jal { .. }) {
                Stage::Done
            } else {
                Stage::InIq
            };
            let mem_state = fetched.inst.is_mem().then(|| {
                let bytes = match fetched.inst {
                    Inst::Load { width, .. } | Inst::Store { width, .. } => width.bytes(),
                    _ => unreachable!(),
                };
                if fetched.inst.is_store() {
                    self.sq_used += 1;
                } else {
                    self.lq_used += 1;
                }
                MemState {
                    vaddr: 0,
                    paddr: None,
                    bytes,
                    is_store: fetched.inst.is_store(),
                    store_data: None,
                    // A poisoned mem op is born Stage::Done and never
                    // does address generation; born MemPhase::Done too,
                    // keeping the Done⇒Done invariant the LSQ index
                    // relies on to never track dead ops.
                    phase: if poisoned {
                        MemPhase::Done
                    } else {
                        MemPhase::AddrGen { done_at: 0 }
                    },
                }
            });
            let result = if matches!(fetched.inst, Inst::Jal { .. }) {
                fetched.pc.wrapping_add(4)
            } else {
                0
            };
            let entry = RobEntry {
                seq,
                pc: fetched.pc,
                inst: fetched.inst,
                stage,
                srcs,
                dest,
                prev_map,
                result,
                branch: fetched.pred,
                mem: mem_state,
                exception: fetched.poison,
            };
            if let Some(p) = pipe {
                self.iqs[p as usize].push(seq);
            }
            self.rob.push_back(entry);
            renamed += 1;
            let _ = now;
        }
    }

    // -------------------------------------------------------------- issue

    pub(super) fn tick_issue(&mut self, now: u64) {
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            if pipe == Pipe::MulDiv && now < self.muldiv_busy_until {
                continue;
            }
            // Oldest-first: find the lowest seq whose sources are ready.
            // Issue queues are ascending by construction — rename pushes
            // strictly increasing seqs and squash `retain`s in place — so
            // in-order iteration needs no per-cycle clone-and-sort.
            debug_assert!(self.iqs[pipe as usize].is_sorted());
            let mut chosen: Option<(usize, u64)> = None;
            for k in 0..self.iqs[pipe as usize].len() {
                let seq = self.iqs[pipe as usize][k];
                let Some(idx) = self.rob_index(seq) else {
                    continue;
                };
                if self.poll_srcs(idx).is_some() {
                    chosen = Some((k, seq));
                    break;
                }
            }
            let Some((k, seq)) = chosen else {
                continue;
            };
            // The scan above already found the position — remove it
            // directly instead of re-walking the queue with `retain`.
            self.iqs[pipe as usize].remove(k);
            let idx = self.rob_index(seq).expect("chosen entry exists");
            let (a, b) = self.poll_srcs(idx).expect("ready");
            let entry = &mut self.rob[idx];
            match pipe {
                Pipe::Alu0 | Pipe::Alu1 => {
                    let done_at = now + 1;
                    match entry.inst {
                        Inst::Branch { cond, .. } => {
                            let taken = cond.eval(a, b);
                            let b_state = entry.branch.as_mut().expect("branch state");
                            b_state.actual_taken = Some(taken);
                            b_state.actual_target = if taken {
                                b_state.pred_target
                            } else {
                                entry.pc.wrapping_add(4)
                            };
                            entry.stage = Stage::Exec { done_at };
                        }
                        Inst::Jalr { off, .. } => {
                            let target = a.wrapping_add(off as i64 as u64) & !1;
                            let b_state = entry.branch.as_mut().expect("jalr state");
                            b_state.actual_taken = Some(true);
                            b_state.actual_target = target;
                            entry.result = entry.pc.wrapping_add(4);
                            entry.stage = Stage::Exec { done_at };
                        }
                        _ => {
                            entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                            entry.stage = Stage::Exec { done_at };
                        }
                    }
                }
                Pipe::MulDiv => {
                    let lat = match entry.inst {
                        Inst::Div { .. }
                        | Inst::Divu { .. }
                        | Inst::Rem { .. }
                        | Inst::Remu { .. } => self.cfg.div_latency,
                        Inst::Fdiv { .. } => self.cfg.fdiv_latency,
                        Inst::Fadd { .. } | Inst::Fmul { .. } => self.cfg.fp_latency,
                        _ => self.cfg.mul_latency,
                    };
                    let pipelined = matches!(
                        entry.inst,
                        Inst::Mul { .. }
                            | Inst::Mulh { .. }
                            | Inst::Fadd { .. }
                            | Inst::Fmul { .. }
                    );
                    entry.result = exec::eval(&entry.inst, a, b, entry.pc);
                    entry.stage = Stage::Exec {
                        done_at: now + lat as u64,
                    };
                    self.muldiv_busy_until = if pipelined { now + 1 } else { now + lat as u64 };
                }
                Pipe::Mem => {
                    let vaddr = exec::effective_address(&entry.inst, a);
                    let m = entry.mem.as_mut().expect("mem state");
                    m.vaddr = vaddr;
                    if m.is_store {
                        m.store_data = Some(b);
                    }
                    m.phase = MemPhase::AddrGen { done_at: now + 1 };
                    entry.stage = Stage::MemOp;
                    self.lsq.memop_insert(seq);
                }
            }
            if !matches!(pipe, Pipe::Mem) {
                // Every non-mem arm above entered `Stage::Exec`: index the
                // op so `tick_writeback` finds it without a ROB scan.
                self.lsq.exec_insert(seq);
            }
        }
    }

    // ---------------------------------------------------------- writeback

    /// Completes executing instructions and resolves branches.
    ///
    /// Visits only the exec worklist — the ascending-seq index of
    /// `Stage::Exec` entries maintained by `tick_issue` and `squash_from`
    /// — instead of scanning the whole ROB. Ascending seq order preserves
    /// the oldest-mispredict-wins rule of the original scan.
    pub(super) fn tick_writeback(&mut self, now: u64) {
        let mut mispredict: Option<(u64, u64)> = None; // (squash-from, new pc)
        let mut seqs = std::mem::take(&mut self.lsq.exec_scratch);
        seqs.clear();
        seqs.extend_from_slice(self.lsq.execs());
        for &seq in &seqs {
            let idx = self.rob_index(seq).expect("exec worklist entry in ROB");
            let entry = &mut self.rob[idx];
            let Stage::Exec { done_at } = entry.stage else {
                debug_assert!(false, "exec worklist seq {seq} not in Stage::Exec");
                continue;
            };
            if now < done_at {
                continue;
            }
            entry.stage = Stage::Done;
            let branch = entry.branch;
            let is_cond = entry.inst.is_cond_branch();
            self.lsq.exec_remove(seq);
            if let Some(b) = branch {
                let actual_taken = b.actual_taken.expect("resolved at execute");
                let wrong = if is_cond {
                    actual_taken != b.pred_taken
                } else {
                    b.actual_target != b.pred_target
                };
                if wrong && mispredict.is_none() {
                    if is_cond {
                        self.stats.branch_mispredicts += 1;
                    } else {
                        self.stats.jump_mispredicts += 1;
                    }
                    mispredict = Some((seq + 1, b.actual_target));
                }
            }
        }
        self.lsq.exec_scratch = seqs;
        if let Some((from, target)) = mispredict {
            self.squash_from(now, from, target);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Exec-worklist maintenance under squashes: every path that removes a
    //! `Stage::Exec` entry from the ROB must also drop it from the
    //! worklist. `tests/golden_stats.rs` proves timing equivalence on real
    //! programs; these pin the index bookkeeping on fabricated squash
    //! shapes a fingerprint might not happen to exercise.

    use super::*;
    use mi6_isa::BranchCond;

    fn test_core() -> Core {
        Core::new(0, CoreConfig::paper(), SecurityConfig::insecure())
    }

    /// Pushes a fabricated op mid-execute, maintaining the exec worklist
    /// at the same point `tick_issue` does.
    fn push_exec_op(core: &mut Core, seq: u64, done_at: u64, branch: Option<BranchState>) {
        let inst = if branch.is_some() {
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::T0,
                rs2: Reg::T1,
                off: 16,
            }
        } else {
            Inst::addi(Reg::T0, Reg::T1, 1)
        };
        core.rob.push_back(RobEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst,
            stage: Stage::Exec { done_at },
            srcs: [None, None],
            dest: None,
            prev_map: None,
            result: 0,
            branch,
            mem: None,
            exception: None,
        });
        core.next_seq = seq + 1;
        core.lsq.exec_insert(seq);
        core.lsq.assert_matches(&core.rob);
    }

    fn resolved_branch(pred_taken: bool, actual_taken: bool) -> BranchState {
        BranchState {
            pred_taken,
            pred_target: 0x2000,
            tournament: None,
            actual_taken: Some(actual_taken),
            actual_target: 0x2000,
        }
    }

    #[test]
    fn squash_drops_younger_exec_entries_from_worklist() {
        let mut core = test_core();
        for seq in 0..4 {
            push_exec_op(&mut core, seq, 100, None);
        }
        core.squash_from(50, 2, 0x4000);
        assert_eq!(core.lsq.execs(), &[0, 1]);
        core.lsq.assert_matches(&core.rob);
    }

    #[test]
    fn mispredict_at_writeback_scrubs_squashed_exec_entries() {
        let mut core = test_core();
        // A mispredicted branch completing now, with younger ops still
        // mid-execute: the branch leaves the worklist at completion, the
        // younger entries leave it inside `squash_from`.
        push_exec_op(&mut core, 0, 10, Some(resolved_branch(false, true)));
        push_exec_op(&mut core, 1, 30, None);
        push_exec_op(&mut core, 2, 40, None);
        core.tick_writeback(10);
        assert!(core.lsq.execs().is_empty());
        assert_eq!(core.stats.branch_mispredicts, 1);
        assert_eq!(core.stats.squashed_instructions, 2);
        assert_eq!(core.rob.len(), 1);
        assert!(matches!(core.rob[0].stage, Stage::Done));
        core.lsq.assert_matches(&core.rob);
    }

    #[test]
    fn oldest_mispredict_wins_and_worklist_stays_consistent() {
        let mut core = test_core();
        // Two mispredicted branches resolving the same cycle: the older
        // one squashes the younger, which has already completed by then —
        // its worklist removal must not double-fire.
        push_exec_op(&mut core, 0, 10, Some(resolved_branch(false, true)));
        push_exec_op(&mut core, 1, 10, Some(resolved_branch(true, false)));
        core.tick_writeback(10);
        assert!(core.lsq.execs().is_empty());
        assert_eq!(core.stats.branch_mispredicts, 1);
        assert_eq!(core.rob.len(), 1);
        core.lsq.assert_matches(&core.rob);
    }

    #[test]
    fn purge_squash_clears_exec_worklist() {
        let mut core = test_core();
        push_exec_op(&mut core, 0, 100, None);
        push_exec_op(&mut core, 1, 120, None);
        core.start_purge(5, 0x8000, PrivLevel::Supervisor);
        assert!(core.lsq.execs().is_empty());
        assert!(core.rob.is_empty());
        core.lsq.assert_matches(&core.rob);
    }
}
