//! The cycle-level speculative out-of-order core.
//!
//! Models the RiscyOO pipeline of Figure 4: a 2-wide front end with BTB,
//! tournament predictor, and RAS; ROB-based register renaming (the RAT maps
//! architectural registers to in-flight producers); four issue pipelines
//! (2 ALU, 1 MEM, 1 FP/MUL/DIV) with 16-entry issue queues; a 24-entry load
//! queue, 14-entry store queue, and 4-entry store buffer; L1/L2 TLBs with a
//! translation cache and a hardware page-table walker whose accesses go
//! through the data port (and are therefore region-checked, Section 5.3).
//!
//! MI6 behaviours (all toggled by [`SecurityConfig`]):
//! - **purge** (Section 6.1): scrubs BTB, tournament predictor, RAS, both
//!   TLBs, the translation cache, and the L1 caches; the core stalls for
//!   [`CoreConfig::purge_cycles`] while the sweeps run.
//! - **flush-on-trap** (FLUSH variant, Section 7.1): the same scrub on
//!   every trap entry and trap return.
//! - **non-speculative mode** (NONSPEC, Section 7.5): a memory instruction
//!   renames only when the ROB is empty.
//! - **machine-mode speculation guard** (Section 6.2): in machine mode,
//!   fetch is restricted to the monitor's physical window and memory
//!   instructions are serialized as in NONSPEC.
//! - **DRAM-region checks** (Section 5.3): every physical access —
//!   speculative fetch, load, store, or page-walk — outside the `mregions`
//!   bitvector is suppressed, and faults only when it commits.

use crate::branch::{Btb, Prediction, Ras, Tournament};
use crate::config::{CoreConfig, SecurityConfig};
use crate::cpi::{CpiCategory, CpiStack};
use crate::exec;
use crate::stats::CoreStats;
use crate::tlb::{Tlb, TlbEntry, TranslationCache};
use mi6_isa::csr::CsrFile;
use mi6_isa::paging::{leaf_span, AccessKind, LEVELS};
use mi6_isa::trap::{Exception, TrapCause};
use mi6_isa::{Inst, PageTableEntry, PhysAddr, PrivLevel, Reg, VirtAddr, PAGE_SHIFT};
use mi6_mem::{L1Access, MemStallReason, MemSystem, Port, RegionBitvec, ServeLevel};
use std::collections::{HashMap, HashSet, VecDeque};

mod commit;
mod decode_cache;
mod fetch;
mod lsq;
mod lsq_index;
mod rename;
mod rob;
mod snapshot;
mod walker;

use decode_cache::DecodeCache;
use lsq_index::{line_of, LsqIndex};
use rob::Rob;

/// Tag bits distinguishing token owners on the two memory ports.
const TOKEN_TAG_SHIFT: u32 = 62;
const TOKEN_LOAD: u64 = 0 << TOKEN_TAG_SHIFT;
const TOKEN_FETCH: u64 = 1 << TOKEN_TAG_SHIFT;
const TOKEN_PTW: u64 = 2 << TOKEN_TAG_SHIFT;
const TOKEN_SB: u64 = 3 << TOKEN_TAG_SHIFT;
const TOKEN_MASK: u64 = (1 << TOKEN_TAG_SHIFT) - 1;

/// Multiply-shift hasher for memory-access tokens (a tag in the top bits
/// plus a low sequence number). The token maps sit on the per-completion
/// hot path, where SipHash is pure overhead; Fibonacci hashing spreads
/// these keys just as well.
#[derive(Clone, Default)]
struct TokenHasher(u64);

impl std::hash::Hasher for TokenHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("token keys hash via write_u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type TokenMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<TokenHasher>>;
type TokenSet = HashSet<u64, std::hash::BuildHasherDefault<TokenHasher>>;

/// Extra latency charged for an L2 TLB hit after an L1 TLB miss.
const L2_TLB_LATENCY: u64 = 4;
/// Front-end refill delay after a redirect (squash or trap).
const REDIRECT_PENALTY: u64 = 2;

/// A source operand: either already a value, or waiting on a producer.
#[derive(Clone, Copy, Debug)]
enum Src {
    Ready(u64),
    Wait { seq: u64, reg: Reg },
}

/// Which issue pipeline an instruction uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pipe {
    Alu0,
    Alu1,
    Mem,
    MulDiv,
}

/// A registered wakeup: when the producer completes, resolve source
/// `slot` of consumer `seq` (waiting in `pipe`'s issue queue).
type Waiter = (u64, u8, Pipe);

/// Progress of a memory instruction after it leaves the MEM issue queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemPhase {
    /// Address generation in flight.
    AddrGen { done_at: u64 },
    /// Attempting translation (TLB lookup) this cycle.
    Translate,
    /// L2 TLB hit: waiting out the extra latency.
    TlbLatency { ready_at: u64 },
    /// Page-table walk outstanding.
    WaitWalk,
    /// Translated; loads try forwarding or issue to L1D, stores are done.
    ReadyToAccess,
    /// L1D request outstanding (loads only).
    WaitMem,
    /// Value arrives at `ready_at` (forwarding or L1 hit).
    WaitValue { ready_at: u64 },
    /// Finished.
    Done,
}

#[derive(Clone, Copy, Debug)]
struct MemState {
    vaddr: u64,
    paddr: Option<u64>,
    bytes: u64,
    is_store: bool,
    store_data: Option<u64>,
    phase: MemPhase,
}

#[derive(Clone, Copy, Debug)]
struct BranchState {
    pred_taken: bool,
    pred_target: u64,
    tournament: Option<Prediction>,
    /// Set when the branch resolves at execute.
    actual_taken: Option<bool>,
    actual_target: u64,
}

/// Where an instruction is in the backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Waiting in an issue queue.
    InIq,
    /// Executing; result valid at `done_at`.
    Exec { done_at: u64 },
    /// A memory instruction past issue (see [`MemPhase`]).
    MemOp,
    /// Executes at commit (system instructions).
    AtCommit,
    /// Finished; eligible for commit.
    Done,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    pc: u64,
    inst: Inst,
    stage: Stage,
    srcs: [Option<Src>; 2],
    dest: Option<Reg>,
    /// Previous RAT mapping of `dest`, for squash undo.
    prev_map: Option<u64>,
    result: u64,
    branch: Option<BranchState>,
    mem: Option<MemState>,
    exception: Option<(Exception, u64)>,
}

/// A pending or active page-table walk.
#[derive(Clone, Copy, Debug)]
struct WalkReq {
    vpn: u64,
    kind: AccessKind,
    client: WalkClient,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkClient {
    Fetch,
    Rob(u64),
}

#[derive(Clone, Debug)]
struct ActiveWalk {
    req: WalkReq,
    level: usize,
    table: u64,
    /// Outstanding L1D token, or a ready time for an L1 hit.
    pending: WalkPending,
    pte_addr: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WalkPending {
    Issue,
    Token(u64),
    ReadyAt(u64),
}

/// Outcome of a completed walk, delivered to the client.
#[derive(Clone, Copy, Debug)]
enum WalkResult {
    Ok,
    Fault(Exception),
}

/// Outcome of a TLB lookup attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TranslateOutcome {
    /// Translation available.
    Hit {
        paddr: u64,
        region_ok: bool,
        /// Extra cycles charged (L2 TLB hit latency).
        extra: u64,
    },
    /// A page-table walk is in flight for this requester.
    Walking,
    /// The walker cannot accept another miss; retry next cycle.
    Busy,
}

/// State of the front end's current fetch.
#[derive(Clone, Debug, PartialEq)]
enum FetchState {
    /// Ready to translate and issue.
    Idle,
    /// ITLB walk outstanding.
    WaitWalk,
    /// L2 TLB latency, then issue the I-cache access.
    TlbDelay {
        ready_at: u64,
        paddr: u64,
        region_ok: bool,
    },
    /// I-cache access outstanding (miss).
    WaitICache { token: u64, paddr: u64 },
    /// I-cache hit: deliver at `ready_at`.
    Deliver { ready_at: u64, paddr: u64 },
    /// A poisoned instruction was delivered; wait for redirect.
    Stalled,
}

#[derive(Clone, Debug)]
struct FetchedInst {
    pc: u64,
    inst: Inst,
    pred: Option<BranchState>,
    poison: Option<(Exception, u64)>,
    /// Cycle the front end delivered this instruction (the tracer's
    /// fetch stamp). Observability-only: never serialized — restored
    /// fetch-queue entries read 0 — and never read by timing logic.
    fetched_at: u64,
}

/// Purge / flush-on-trap sequencing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PurgePhase {
    /// No purge in progress.
    Idle,
    /// Waiting for in-flight memory traffic and the store buffer to drain.
    DrainMem,
    /// Sweeps running; done at the given cycle.
    Flushing { until: u64 },
}

#[derive(Clone, Copy, Debug)]
struct SbEntry {
    line: u64,
    issued: bool,
    token: u64,
    done: bool,
}

/// The out-of-order core.
#[derive(Debug)]
pub struct Core {
    /// Core index (selects the memory-system ports).
    pub id: usize,
    cfg: CoreConfig,
    sec: SecurityConfig,
    /// Committed architectural registers.
    pub regs: [u64; 32],
    /// Committed PC of the next instruction to commit (trap EPC source).
    pub pc: u64,
    /// Current privilege level.
    pub priv_level: PrivLevel,
    /// Control and status registers.
    pub csrs: CsrFile,
    /// True once the core retired an `ebreak` in machine mode — the
    /// simulation halt convention.
    pub halted: bool,

    // Front end.
    btb: Btb,
    tournament: Tournament,
    ras: Ras,
    fetch_pc: u64,
    fetch_state: FetchState,
    fetch_queue: VecDeque<FetchedInst>,
    fetch_stall_until: u64,
    next_fetch_token: u64,
    itlb: Tlb,
    decode_cache: DecodeCache,

    // Backend.
    rob: Rob,
    next_seq: u64,
    rat: [Option<u64>; 32],
    iqs: [Vec<u64>; 4],
    /// Event-driven issue wakeup (derived state, never serialized —
    /// rebuilt on restore). `wake_lists[rob.phys(pidx)]` holds the
    /// consumers registered against that producer; `ready_iq[pipe]` is
    /// the ascending-seq set of IQ entries whose sources are all
    /// resolved. Invariant: an `InIq` entry is in its pipe's ready set
    /// iff `srcs_ready` would return `Some` — `tick_issue` and
    /// `next_event` read the sets instead of polling the queues.
    wake_lists: Box<[Vec<Waiter>]>,
    ready_iq: [Vec<u64>; 4],
    muldiv_busy_until: u64,
    lq_used: usize,
    sq_used: usize,
    sb: Vec<SbEntry>,
    next_sb_token: u64,
    committed_ghist: u16,
    /// Derived per-line store/load index and mem-op worklist (mirrors the
    /// ROB; never serialized — rebuilt on restore).
    lsq: LsqIndex,

    // Data-side translation.
    dtlb: Tlb,
    l2_tlb: Tlb,
    tcache: TranslationCache,
    walker_queue: VecDeque<WalkReq>,
    walker_active: Option<ActiveWalk>,
    walk_results: Vec<(WalkClient, WalkResult)>,
    next_ptw_token: u64,

    // Tokens owned by squashed instructions; completions are dropped.
    zombies: TokenSet,
    // Completions that arrived this cycle, keyed by token.
    data_completions: TokenMap<u64>,
    ifetch_completions: TokenMap<u64>,
    // Serve level of each in-flight load completion, keyed by seq.
    // Runtime-only CPI-stack side data: never serialized, cleared on
    // restore alongside `cpi`.
    data_levels: TokenMap<CpiCategory>,

    purge: PurgePhase,
    /// Pending trap redirect after purge completes (handler pc, priv).
    purge_resume: Option<(u64, PrivLevel)>,

    /// Exported statistics.
    pub stats: CoreStats,

    /// Lap-profiler accumulator (host wall time per sub-tick; only
    /// written under `--features lap-profile`). Runtime-only: never
    /// serialized, no effect on simulated timing.
    pub lap: crate::lap::LapProfile,

    /// Instruction lifecycle tracer, attached by the SoC when tracing is
    /// on (`None` = off; every hook gates on that, so the disabled cost
    /// is one pointer test). Runtime-only: never serialized, no effect
    /// on simulated timing.
    pub tracer: Option<Box<mi6_obs::Tracer>>,
    /// CPI-stack commit-slot attribution plus structural-pressure
    /// counters. Runtime-only: never serialized, reset on restore.
    pub cpi: CpiStack,
}

impl Core {
    /// Creates a core in reset: PC 0, machine mode, empty pipeline.
    pub fn new(id: usize, cfg: CoreConfig, sec: SecurityConfig) -> Core {
        let rob = Rob::new(cfg.rob_entries);
        let wake_lists = vec![Vec::new(); rob.capacity()].into_boxed_slice();
        Core {
            id,
            cfg,
            sec,
            regs: [0; 32],
            pc: 0,
            priv_level: PrivLevel::Machine,
            csrs: CsrFile::new(),
            halted: false,
            btb: Btb::new(cfg.btb_entries),
            tournament: Tournament::new(),
            ras: Ras::new(cfg.ras_entries),
            fetch_pc: 0,
            fetch_state: FetchState::Idle,
            fetch_queue: VecDeque::new(),
            fetch_stall_until: 0,
            next_fetch_token: 0,
            itlb: Tlb::new(cfg.l1_tlb_entries, 1),
            decode_cache: DecodeCache::new(),
            rob,
            next_seq: 0,
            rat: [None; 32],
            iqs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            wake_lists,
            ready_iq: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            muldiv_busy_until: 0,
            lq_used: 0,
            sq_used: 0,
            sb: Vec::new(),
            next_sb_token: 0,
            committed_ghist: 0,
            lsq: LsqIndex::default(),
            dtlb: Tlb::new(cfg.l1_tlb_entries, 1),
            l2_tlb: Tlb::new(cfg.l2_tlb_entries, cfg.l2_tlb_entries / cfg.l2_tlb_ways),
            tcache: TranslationCache::new(cfg.tcache_entries),
            walker_queue: VecDeque::new(),
            walker_active: None,
            walk_results: Vec::new(),
            next_ptw_token: 0,
            zombies: TokenSet::default(),
            data_completions: TokenMap::default(),
            ifetch_completions: TokenMap::default(),
            data_levels: TokenMap::default(),
            purge: PurgePhase::Idle,
            purge_resume: None,
            stats: CoreStats::default(),
            lap: crate::lap::LapProfile::default(),
            tracer: None,
            cpi: CpiStack::default(),
        }
    }

    /// Resets the program counter and privilege level (boot or test setup).
    pub fn reset_to(&mut self, pc: u64, priv_level: PrivLevel) {
        self.pc = pc;
        self.fetch_pc = pc;
        self.priv_level = priv_level;
        self.fetch_state = FetchState::Idle;
    }

    /// The security configuration in force.
    pub fn security(&self) -> &SecurityConfig {
        &self.sec
    }

    /// The structural configuration in force.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Whether the pipeline holds no in-flight instructions.
    pub fn pipeline_empty(&self) -> bool {
        self.rob.is_empty() && self.fetch_queue.is_empty()
    }

    /// Instantaneous backend occupancies for the metrics sampler:
    /// `(rob, iq_total, lq, sq, sb)`.
    pub fn occupancy(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.rob.len(),
            self.iqs.iter().map(Vec::len).sum(),
            self.lq_used,
            self.sq_used,
            self.sb.len(),
        )
    }

    /// Whether a purge/flush sequence is in progress.
    pub fn purging(&self) -> bool {
        self.purge != PurgePhase::Idle
    }

    fn region_bitvec(&self) -> RegionBitvec {
        RegionBitvec(self.csrs.mregions)
    }

    fn region_allowed(&self, mem: &MemSystem, paddr: u64) -> bool {
        // The security monitor (machine mode) has access to all physical
        // addresses (Section 4.1); its isolation comes from the fetch
        // window and the speculation guard, not the region bitvector.
        if !self.sec.region_checks || self.priv_level == PrivLevel::Machine {
            return true;
        }
        let map = mem.region_map();
        if paddr >= mem.phys.size() {
            return false;
        }
        self.region_bitvec()
            .allows(map.region_of(PhysAddr::new(paddr)))
    }

    fn bare_translation(&self) -> bool {
        self.priv_level == PrivLevel::Machine || self.csrs.satp == 0
    }

    fn nonspec_gate(&self) -> bool {
        self.sec.nonspec_all_modes
            || (self.sec.machine_mode_guard && self.priv_level == PrivLevel::Machine)
    }

    // ---------------------------------------------------------------- tick

    /// Begins a purge sequence directly (the security monitor's path:
    /// architecturally this is the monitor executing `purge`, but the
    /// monitor model drives the machine from outside). The core stalls
    /// for the full purge duration and resumes at `resume_pc` in
    /// `resume_priv`.
    pub fn start_purge(&mut self, now: u64, resume_pc: u64, resume_priv: PrivLevel) {
        let from = self.head_seq();
        self.squash_from(now, from, resume_pc);
        self.cpi.note_squash(CpiCategory::Flush, from);
        self.stats.purges += 1;
        self.begin_purge_sequence(now, Some((resume_pc, resume_priv)));
    }

    /// A one-line diagnostic snapshot of pipeline state (for debugging
    /// stuck simulations from tests and examples).
    pub fn debug_state(&self) -> String {
        let head = (!self.rob.is_empty()).then(|| {
            format!(
                "seq={} pc={:#x} `{}` stage={:?} mem={:?} exc={:?}",
                self.rob.seq(0),
                self.rob.pc(0),
                self.rob.inst(0),
                self.rob.stage(0),
                self.rob.mem(0).map(|m| (m.phase, m.paddr)),
                self.rob.exception(0)
            )
        });
        format!(
            "rob={} head=[{}] iq={:?} lq={} sq={} sb={} fetchq={} fetch={:?} purge={:?} walker_active={} walkq={}",
            self.rob.len(),
            head.unwrap_or_default(),
            [self.iqs[0].len(), self.iqs[1].len(), self.iqs[2].len(), self.iqs[3].len()],
            self.lq_used,
            self.sq_used,
            self.sb.len(),
            self.fetch_queue.len(),
            self.fetch_state,
            self.purge,
            self.walker_active.is_some(),
            self.walker_queue.len(),
        )
    }

    /// Advances the core one cycle. Call before `mem.tick(now)`.
    pub fn tick(&mut self, now: u64, mem: &mut MemSystem) {
        if self.halted {
            return;
        }
        // Lap profiler: under `--features lap-profile`, `lap!(slot)`
        // charges the host time since the previous mark to `slot`. Marks
        // sit after every sub-stage (gated or not), so a gated-off stage
        // is charged only its emptiness check. Compiles to nothing by
        // default.
        #[cfg(feature = "lap-profile")]
        let mut lap_last = std::time::Instant::now();
        macro_rules! lap {
            ($slot:expr) => {
                #[cfg(feature = "lap-profile")]
                {
                    let t = std::time::Instant::now();
                    self.lap.nanos[$slot] += t.duration_since(lap_last).as_nanos() as u64;
                    // The last mark's write is dead by construction.
                    #[allow(unused_assignments)]
                    {
                        lap_last = t;
                    }
                }
            };
        }
        #[cfg(feature = "lap-profile")]
        use crate::lap::slot;
        self.stats.cycles += 1;
        self.csrs.cycle = now;
        // Timer interrupts (simplified CLINT: compare CSRs against `now`).
        self.csrs
            .set_pending(mi6_isa::Interrupt::MachineTimer, now >= self.csrs.mtimecmp);
        self.csrs.set_pending(
            mi6_isa::Interrupt::SupervisorTimer,
            now >= self.csrs.stimecmp,
        );
        // Collect completions from both ports, dropping zombies.
        for c in mem.take_completions(self.id, Port::Data) {
            if !self.zombies.remove(&c.token) {
                self.data_completions.insert(c.token, c.ready_at);
                // A load completion wakes its parked op: the token embeds
                // the seq, so re-insertion is a key lookup. The WaitMem
                // arm of `advance_mem_ops` consumes the completion later
                // this same tick — exactly when it did before parking.
                if c.token & !TOKEN_MASK == TOKEN_LOAD {
                    self.lsq.memop_insert(c.token & TOKEN_MASK);
                    // Remember where the fill came from so the CPI stack
                    // can split miss cycles by serve level.
                    let cat = match c.level {
                        ServeLevel::L1 => CpiCategory::MemL1,
                        ServeLevel::Llc => CpiCategory::MemLlc,
                        ServeLevel::Dram => CpiCategory::MemDram,
                    };
                    self.data_levels.insert(c.token & TOKEN_MASK, cat);
                }
            }
        }
        for c in mem.take_completions(self.id, Port::IFetch) {
            if !self.zombies.remove(&c.token) {
                self.ifetch_completions.insert(c.token, c.ready_at);
            }
        }
        lap!(slot::COLLECT);
        if self.purge != PurgePhase::Idle {
            // Every commit slot of a purge/flush drain cycle is the
            // flush mechanism's cost.
            self.cpi.cycles += 1;
            self.cpi
                .charge(CpiCategory::Flush, self.cfg.commit_width as u64);
            self.tick_purge(now, mem);
            lap!(slot::PURGE);
            return;
        }
        self.tick_commit(now, mem);
        lap!(slot::COMMIT);
        if self.purge != PurgePhase::Idle || self.halted {
            return;
        }
        // Per-stage dirty gating: each sub-tick below is a no-op when its
        // worklist/queue is empty (no stat counted, no state touched — the
        // same emptiness facts `next_event` relies on), so skip the call
        // entirely. Unlike the whole-machine idle-skip this fires every
        // cycle, trimming the per-cycle cost to the stages that actually
        // hold work. `tick_fetch` is never gated: it owns a multi-state
        // machine (stall counters, redirect timing) with no cheap
        // emptiness test.
        if !self.lsq.execs().is_empty() {
            self.tick_writeback(now);
        }
        lap!(slot::WRITEBACK);
        if !self.lsq.memops().is_empty() {
            self.advance_mem_ops(now, mem);
        }
        lap!(slot::MEM_OPS);
        if self.walker_active.is_some() || !self.walker_queue.is_empty() {
            self.tick_walker(now, mem);
        }
        lap!(slot::WALKER);
        if self.ready_iq.iter().any(|rq| !rq.is_empty()) {
            self.tick_issue(now);
        }
        lap!(slot::ISSUE);
        if !self.fetch_queue.is_empty() {
            self.tick_rename(now);
        }
        lap!(slot::RENAME);
        self.tick_fetch(now, mem);
        lap!(slot::FETCH);
        if !self.sb.is_empty() {
            self.tick_store_buffer(now, mem);
        }
        lap!(slot::STORE_BUFFER);
        #[cfg(debug_assertions)]
        self.debug_check_lsq();
    }

    /// The earliest future cycle at which this core could do any work, or
    /// `None` when it might act at `now` itself (tick normally).
    /// `Some(u64::MAX)` means inert until external input (a memory
    /// completion) arrives — the memory system bounds those separately.
    ///
    /// Used by the event-driven idle-skip in `Machine::run_to_completion`.
    /// The contract mirrors [`Core::tick`] sub-tick by sub-tick: every
    /// state that acts (or counts a stall statistic) on its own clock
    /// returns `None`; every purely time-gated state contributes its wake
    /// cycle; states waiting on the memory hierarchy contribute nothing.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.halted {
            return Some(u64::MAX);
        }
        // Purge sequencing polls the hierarchy and counts
        // `flush_stall_cycles` every cycle: never skip through it.
        if self.purge != PurgePhase::Idle {
            return None;
        }
        // Parked completions are consumed by their waiters (loads, fetch,
        // walker, store buffer) as soon as they look.
        if !self.data_completions.is_empty() || !self.ifetch_completions.is_empty() {
            return None;
        }
        // The walker acts every cycle while a walk is queued or active,
        // and delivered results are consumed the next cycle.
        if self.walker_active.is_some()
            || !self.walker_queue.is_empty()
            || !self.walk_results.is_empty()
        {
            return None;
        }
        // Commit: a pending enabled interrupt traps this cycle; a done
        // head retires (or raises its exception, or is a stalled `wfi`
        // polling for wake-up) this cycle. The stored `mip` is only
        // refreshed inside the tick, so evaluate against the timer pending
        // bits as this cycle's tick would recompute them — otherwise a
        // skip landing exactly on `mtimecmp` would sail past the trap.
        let mut mip = self.csrs.mip;
        for (cmp, irq) in [
            (self.csrs.mtimecmp, mi6_isa::Interrupt::MachineTimer),
            (self.csrs.stimecmp, mi6_isa::Interrupt::SupervisorTimer),
        ] {
            if now >= cmp {
                mip |= 1 << irq.code();
            } else {
                mip &= !(1 << irq.code());
            }
        }
        if self
            .csrs
            .pending_interrupt_with(self.priv_level, mip)
            .is_some()
        {
            return None;
        }
        if !self.rob.is_empty() && self.rob.is_done(0) {
            return None;
        }
        let mut next = u64::MAX;
        // Timer pending bits flip exactly when `now` reaches the compare
        // CSRs (which only move at commit, and commits end a skip). A
        // compare already in the past has already set its bit.
        if self.csrs.mtimecmp > now {
            next = next.min(self.csrs.mtimecmp);
        }
        if self.csrs.stimecmp > now {
            next = next.min(self.csrs.stimecmp);
        }
        // Writeback: only exec-worklist entries can complete.
        for &seq in self.lsq.execs() {
            let idx = self.rob_index(seq).expect("exec worklist entry in ROB");
            let Stage::Exec { done_at } = self.rob.stage(idx) else {
                return None;
            };
            if done_at <= now {
                return None;
            }
            next = next.min(done_at);
        }
        // Memory ops: each phase either acts on its own clock (`None`),
        // waits out a known latency (candidate), or waits on the memory
        // hierarchy (no constraint from this core).
        for &seq in self.lsq.memops() {
            let idx = self.rob_index(seq).expect("mem-op worklist entry in ROB");
            match self.rob.mem(idx).expect("mem state").phase {
                MemPhase::AddrGen { done_at } => {
                    if done_at <= now {
                        return None;
                    }
                    next = next.min(done_at);
                }
                MemPhase::TlbLatency { ready_at } | MemPhase::WaitValue { ready_at } => {
                    if ready_at <= now {
                        return None;
                    }
                    next = next.min(ready_at);
                }
                // Translate retries the TLB, ReadyToAccess retries
                // forwarding / the L1 port, WaitWalk polls the walker (its
                // live states already returned `None` above), and Done
                // should never be on the worklist — all conservatively
                // "might act now".
                MemPhase::Translate
                | MemPhase::ReadyToAccess
                | MemPhase::WaitWalk
                | MemPhase::Done => return None,
                MemPhase::WaitMem => {}
            }
        }
        // Issue: an entry with ready sources issues this cycle — except on
        // a busy (unpipelined) mul/div unit, where the issue happens when
        // the unit frees. The ready sets hold exactly the IQ entries whose
        // sources are resolved, so this is a per-pipe emptiness test, not
        // an IQ scan.
        for pipe in [Pipe::Alu0, Pipe::Alu1, Pipe::MulDiv, Pipe::Mem] {
            if self.ready_iq[pipe as usize].is_empty() {
                continue;
            }
            if pipe == Pipe::MulDiv && now < self.muldiv_busy_until {
                next = next.min(self.muldiv_busy_until);
            } else {
                return None;
            }
        }
        // Rename: replicate `tick_rename`'s first-iteration gates on the
        // fetch-queue head. A head that would rename acts now; a NONSPEC
        // serialize stall counts a statistic per cycle, so it must tick
        // for real; every other blocked shape is passive until a commit,
        // issue, or fetch event (all accounted above/below).
        if self.rob.len() < self.cfg.rob_entries {
            if let Some(front) = self.fetch_queue.front() {
                let inst = front.inst;
                let poisoned = front.poison.is_some();
                let serialize =
                    !poisoned && (inst.is_system() || (self.nonspec_gate() && inst.is_mem()));
                if serialize && !self.rob.is_empty() {
                    if self.nonspec_gate() && inst.is_mem() {
                        return None;
                    }
                } else {
                    let pipe = if poisoned {
                        None
                    } else {
                        match inst {
                            _ if inst.is_mem() => Some(Pipe::Mem),
                            _ if inst.is_muldiv_fp() => Some(Pipe::MulDiv),
                            Inst::Jal { .. } => None,
                            _ if inst.is_system() => None,
                            _ if self.iqs[0].len() <= self.iqs[1].len() => Some(Pipe::Alu0),
                            _ => Some(Pipe::Alu1),
                        }
                    };
                    let iq_full =
                        pipe.is_some_and(|p| self.iqs[p as usize].len() >= self.cfg.iq_entries);
                    let lq_full = inst.is_load() && self.lq_used >= self.cfg.lq_entries;
                    let sq_full = inst.is_store() && self.sq_used >= self.cfg.sq_entries;
                    if !iq_full && !lq_full && !sq_full {
                        return None;
                    }
                }
            }
        }
        // Fetch: time-gated states contribute their wake cycle; Idle acts
        // now (translation attempt); Stalled waits for a squash and
        // WaitICache/WaitWalk wait on completions/the walker (both `None`
        // above when live).
        if self.fetch_stall_until > now {
            next = next.min(self.fetch_stall_until);
        } else if self.fetch_queue.len() + self.cfg.fetch_width <= self.cfg.fetch_queue {
            match &self.fetch_state {
                FetchState::Idle => return None,
                FetchState::TlbDelay { ready_at, .. } | FetchState::Deliver { ready_at, .. } => {
                    if *ready_at <= now {
                        return None;
                    }
                    next = next.min(*ready_at);
                }
                FetchState::Stalled | FetchState::WaitWalk | FetchState::WaitICache { .. } => {}
            }
        }
        // Store buffer: the head unissued entry retries the L1D port every
        // cycle; issued entries wait on completions (bounded above).
        if self.sb.iter().any(|s| !s.issued) {
            return None;
        }
        Some(next)
    }

    /// Accounts `skipped` cycles of event-driven fast-forward that lands
    /// at cycle `target`. The only per-cycle state a provably inert,
    /// non-halted core mutates is its cycle counters: `stats.cycles`
    /// accumulates, and `csrs.cycle` is settled to `target - 1` — exactly
    /// the value a core that ticked through every cycle would hold after
    /// its tick at `target - 1`. Execution never observes the difference
    /// (`csrs.cycle` is rewritten from `now` at the top of every real
    /// tick, before any instruction runs), but checkpoints written at the
    /// landing cycle must be byte-identical to a tick-every-cycle twin's.
    pub fn note_skipped_cycles(&mut self, skipped: u64, target: u64) {
        if !self.halted {
            self.stats.cycles += skipped;
            self.csrs.cycle = target - 1;
            // Fast-forwarded cycles are explicit idle slots in the CPI
            // stack, keeping the sum invariant exact under idle-skip.
            self.cpi.cycles += skipped;
            self.cpi
                .charge(CpiCategory::Idle, skipped * self.cfg.commit_width as u64);
        }
    }
}
