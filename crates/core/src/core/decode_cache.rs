//! The decode cache: pre-decoded instructions keyed by physical address.
//!
//! Fetch decodes every delivered instruction once and caches the result —
//! decoding is untimed (the modeled pipeline charges fetch latency
//! elsewhere), so the cache is purely a host-side memoization. It used to
//! be a `HashMap<u64, Inst>`, which put a SipHash probe on the per-
//! instruction fetch path; this direct-mapped probe array replaces the
//! hash with a shift-and-mask. Collisions simply evict (the next fetch of
//! the evicted address re-decodes), which is timing-invisible by
//! construction.
//!
//! The snapshot format is unchanged: serialization still writes sorted
//! `(paddr, Inst)` pairs exactly as `save_sorted_map` did for the
//! `HashMap`, and restore re-inserts each pair. Distinct live entries
//! always occupy distinct slots, so a save/restore round trip is
//! lossless.

use mi6_isa::Inst;

/// Number of direct-mapped slots. Covers 16 KiB of code with no
/// collisions (4-byte instructions); must stay a power of two.
const SLOTS: usize = 4096;

#[derive(Debug)]
pub(super) struct DecodeCache {
    /// `Some((paddr, inst))` when the slot holds a decoded instruction.
    slots: Vec<Option<(u64, Inst)>>,
}

impl DecodeCache {
    pub(super) fn new() -> DecodeCache {
        DecodeCache {
            slots: vec![None; SLOTS],
        }
    }

    /// The slot for `paddr` (instructions are 4-byte aligned, so the low
    /// two bits carry no information).
    fn index(paddr: u64) -> usize {
        (paddr >> 2) as usize & (SLOTS - 1)
    }

    pub(super) fn get(&self, paddr: u64) -> Option<Inst> {
        match self.slots[Self::index(paddr)] {
            Some((tag, inst)) if tag == paddr => Some(inst),
            _ => None,
        }
    }

    pub(super) fn insert(&mut self, paddr: u64, inst: Inst) {
        self.slots[Self::index(paddr)] = Some((paddr, inst));
    }

    /// Invalidates everything (FenceI).
    pub(super) fn clear(&mut self) {
        self.slots.fill(None);
    }

    /// The live entries sorted by address — the exact sequence
    /// `save_sorted_map` serialized when this was a `HashMap`.
    pub(super) fn sorted_entries(&self) -> Vec<(u64, Inst)> {
        let mut entries: Vec<(u64, Inst)> = self.slots.iter().filter_map(|s| *s).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// Rebuilds the cache from serialized entries.
    pub(super) fn fill_from(&mut self, entries: Vec<(u64, Inst)>) {
        self.clear();
        for (paddr, inst) in entries {
            self.insert(paddr, inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_evicts_and_roundtrips() {
        let mut c = DecodeCache::new();
        c.insert(0x1000, Inst::NOP);
        assert_eq!(c.get(0x1000), Some(Inst::NOP));
        // Same slot, different tag: evicts.
        let alias = 0x1000 + (SLOTS as u64 * 4);
        assert_eq!(DecodeCache::index(alias), DecodeCache::index(0x1000));
        c.insert(alias, Inst::NOP);
        assert_eq!(c.get(0x1000), None);
        assert_eq!(c.get(alias), Some(Inst::NOP));
        // Round trip through the serialized form.
        c.insert(0x2000, Inst::NOP);
        let entries = c.sorted_entries();
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let mut d = DecodeCache::new();
        d.fill_from(entries);
        assert_eq!(d.sorted_entries(), c.sorted_entries());
    }
}
