//! The incrementally maintained LSQ index.
//!
//! The simulator hot loop used to re-scan the whole ROB for every memory
//! op every cycle: `older_store_blocks`, the forwarding scan, the
//! `load_value` store overlay, and the memory-order-violation scan were
//! all O(ROB) per op per cycle, and `advance_mem_ops` walked the full ROB
//! just to find its work (cloning a fresh seq vector as it went). This
//! module replaces those scans with three small structures:
//!
//! - **`stores`**: the in-flight stores whose address has resolved
//!   (`MemState::paddr` is `Some`), as ascending-seq `(seq, line)` pairs.
//! - **`loads`**: the loads that have *issued* (phase `WaitMem`,
//!   `WaitValue`, or `Done`) with a resolved address — exactly the set
//!   the violation scan must consider when a store's address resolves.
//! - **`memops`**: ascending seqs of the *actionable* ROB entries in
//!   `Stage::MemOp` — the per-cycle worklist of `advance_mem_ops` (plus
//!   a reusable scratch buffer so the per-cycle iteration allocates
//!   nothing). Ops waiting on the memory hierarchy are **parked**: a
//!   load in `WaitMem` leaves the worklist until its L1 completion
//!   arrives (the token embeds the seq, so the tick completion sweep
//!   re-inserts by key), and an op in `WaitWalk` leaves it until the
//!   walker delivers its result. The worklist is therefore proportional
//!   to ops with something to do this cycle, not ops in flight.
//!
//! Queries filter by physical cache line: memory ops are size-aligned
//! (misaligned accesses fault at address generation) and at most 8 bytes
//! wide, so an op never spans a 64-byte line — every store that can
//! overlap a load lives on the load's own line, and a line-filtered pass
//! is exhaustive. The pairs are stored flat rather than in a line-keyed
//! hash map deliberately: the store queue holds at most `sq_entries`
//! (14) resolved stores, so the whole index fits in two or three cache
//! lines and a filtered pass is cheaper than one SipHash probe — the
//! same reason the hardware SQ is a CAM, not a hash table. The map is
//! conceptually per-line; only its encoding is flat.
//!
//! Maintenance points: store address resolution and load issue (insert),
//! commit and squash (remove), mem-op issue and completion/fault (the
//! worklist). The index is **derived** state: it mirrors the ROB, is
//! never serialized, and [`LsqIndex::rebuild`] reconstructs it from the
//! deserialized ROB inside `Core::restore_state` — the `mi6-snapshot`
//! format is untouched. Debug builds periodically compare the live index
//! against a from-scratch rebuild (see `Core::debug_check_lsq`).

use super::*;

/// The 64-byte cache line containing `paddr` (the query filter).
pub(super) fn line_of(paddr: u64) -> u64 {
    paddr & !63
}

/// One indexed memory op: its ROB seq and the cache line it touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) struct LsqEntry {
    pub(super) seq: u64,
    pub(super) line: u64,
}

/// Inserts into an ascending-seq list.
fn sorted_insert(v: &mut Vec<LsqEntry>, seq: u64, line: u64) {
    match v.binary_search_by_key(&seq, |e| e.seq) {
        Err(i) => v.insert(i, LsqEntry { seq, line }),
        Ok(_) => debug_assert!(false, "seq {seq} already indexed"),
    }
}

/// Removes from an ascending-seq list; returns the removed entry.
fn sorted_remove(v: &mut Vec<LsqEntry>, seq: u64) -> Option<LsqEntry> {
    match v.binary_search_by_key(&seq, |e| e.seq) {
        Ok(i) => Some(v.remove(i)),
        Err(_) => None,
    }
}

#[derive(Debug, Default)]
pub(super) struct LsqIndex {
    /// In-flight stores with resolved addresses, ascending seq.
    stores: Vec<LsqEntry>,
    /// Issued loads with resolved addresses, ascending seq.
    loads: Vec<LsqEntry>,
    /// Ascending seqs of ROB entries in `Stage::MemOp`.
    memops: Vec<u64>,
    /// Ascending seqs of ROB entries in `Stage::Exec` — the per-cycle
    /// worklist of `tick_writeback`, maintained exactly like `memops`
    /// (insert at issue, remove at completion or squash).
    execs: Vec<u64>,
    /// Reused each cycle by `advance_mem_ops` (kept here so its capacity
    /// survives between cycles; otherwise unused).
    pub(super) scratch: Vec<u64>,
    /// Reused each cycle by `tick_writeback` (which runs before
    /// `advance_mem_ops`, but gets its own buffer so the two sweeps never
    /// alias).
    pub(super) exec_scratch: Vec<u64>,
}

impl LsqIndex {
    /// The resolved in-flight stores, oldest first (filter by `line`).
    pub(super) fn stores(&self) -> &[LsqEntry] {
        &self.stores
    }

    /// The issued loads, oldest first (filter by `line`).
    pub(super) fn loads(&self) -> &[LsqEntry] {
        &self.loads
    }

    /// Indexes a store whose address just resolved.
    pub(super) fn insert_store(&mut self, line: u64, seq: u64) {
        sorted_insert(&mut self.stores, seq, line);
    }

    /// Drops a store leaving the ROB (commit or squash). The store must
    /// be indexed — a resolved address is the membership condition.
    pub(super) fn remove_store(&mut self, line: u64, seq: u64) {
        let removed = sorted_remove(&mut self.stores, seq);
        debug_assert_eq!(
            removed,
            Some(LsqEntry { seq, line }),
            "store seq {seq} missing from the index"
        );
        let _ = (removed, line);
    }

    /// Indexes a load at issue (forwarded, L1 hit, or L1 miss).
    pub(super) fn insert_load(&mut self, line: u64, seq: u64) {
        sorted_insert(&mut self.loads, seq, line);
    }

    /// Drops a load leaving the ROB. Tolerates absence: a load with a
    /// resolved address that never issued (blocked on an older store or
    /// on the L1 port) is not indexed.
    pub(super) fn remove_load(&mut self, line: u64, seq: u64) {
        let removed = sorted_remove(&mut self.loads, seq);
        debug_assert!(
            removed.is_none() || removed == Some(LsqEntry { seq, line }),
            "load seq {seq} indexed under the wrong line"
        );
        let _ = (removed, line);
    }

    /// Drops a mem op leaving the ROB (commit or squash) from the
    /// store/load index. The membership rule lives here, in one place:
    /// indexed iff the address resolved (stores must be present; loads
    /// tolerate absence — a resolved load that never issued is not
    /// indexed).
    pub(super) fn remove_op(&mut self, m: &MemState, seq: u64) {
        if let Some(p) = m.paddr {
            if m.is_store {
                self.remove_store(line_of(p), seq);
            } else {
                self.remove_load(line_of(p), seq);
            }
        }
    }

    /// The current actionable `Stage::MemOp` worklist, oldest first
    /// (parked `WaitMem`/`WaitWalk` ops excluded).
    pub(super) fn memops(&self) -> &[u64] {
        &self.memops
    }

    /// Adds a memory op entering `Stage::MemOp` (issue), or re-entering
    /// the worklist when its wake (L1 completion, walk result) arrives.
    pub(super) fn memop_insert(&mut self, seq: u64) {
        match self.memops.binary_search(&seq) {
            Err(i) => self.memops.insert(i, seq),
            Ok(_) => debug_assert!(false, "mem-op seq {seq} already queued"),
        }
    }

    /// Drops a memory op leaving `Stage::MemOp` (completion, fault, or
    /// squash) or parking in `WaitMem`/`WaitWalk`.
    pub(super) fn memop_remove(&mut self, seq: u64) {
        match self.memops.binary_search(&seq) {
            Ok(i) => {
                self.memops.remove(i);
            }
            Err(_) => debug_assert!(false, "mem-op seq {seq} missing from worklist"),
        }
    }

    /// The current `Stage::Exec` worklist, oldest first.
    pub(super) fn execs(&self) -> &[u64] {
        &self.execs
    }

    /// Adds an op entering `Stage::Exec` (issue).
    pub(super) fn exec_insert(&mut self, seq: u64) {
        match self.execs.binary_search(&seq) {
            Err(i) => self.execs.insert(i, seq),
            Ok(_) => debug_assert!(false, "exec seq {seq} already queued"),
        }
    }

    /// Drops an op leaving `Stage::Exec` (writeback completion or squash).
    pub(super) fn exec_remove(&mut self, seq: u64) {
        match self.execs.binary_search(&seq) {
            Ok(i) => {
                self.execs.remove(i);
            }
            Err(_) => debug_assert!(false, "exec seq {seq} missing from worklist"),
        }
    }

    /// Whether a ROB entry's load belongs in the load index: issued with
    /// a resolved address (faulted loads never resolve one).
    fn load_indexed(m: &MemState) -> bool {
        m.paddr.is_some()
            && matches!(
                m.phase,
                MemPhase::WaitMem | MemPhase::WaitValue { .. } | MemPhase::Done
            )
    }

    /// Whether a `Stage::MemOp` entry belongs on the worklist: parked
    /// ops (`WaitMem` with the L1 answer still in flight, `WaitWalk`
    /// with no delivered walk result) are excluded; an op whose wake has
    /// arrived but not yet been consumed is back on it.
    fn memop_awake(
        seq: u64,
        phase: MemPhase,
        completions: &TokenMap<u64>,
        walk_results: &[(WalkClient, WalkResult)],
    ) -> bool {
        match phase {
            MemPhase::WaitMem => completions.contains_key(&(TOKEN_LOAD | (seq & TOKEN_MASK))),
            MemPhase::WaitWalk => walk_results.iter().any(|(c, _)| *c == WalkClient::Rob(seq)),
            _ => true,
        }
    }

    /// Reconstructs the index from a ROB — how `Core::restore_state`
    /// derives it after deserialization instead of reading it from the
    /// snapshot (the on-disk format carries no index). The completion
    /// map and delivered walk results decide which `Stage::MemOp`
    /// entries are parked (see [`LsqIndex::memop_awake`]).
    pub(super) fn rebuild(
        rob: &Rob,
        completions: &TokenMap<u64>,
        walk_results: &[(WalkClient, WalkResult)],
    ) -> LsqIndex {
        let mut index = LsqIndex::default();
        // ROB order is ascending seq order, so plain pushes stay sorted.
        for i in 0..rob.len() {
            let seq = rob.seq(i);
            if rob.stage(i) == Stage::MemOp
                && Self::memop_awake(
                    seq,
                    rob.mem(i).expect("mem op has mem state").phase,
                    completions,
                    walk_results,
                )
            {
                index.memops.push(seq);
            }
            if matches!(rob.stage(i), Stage::Exec { .. }) {
                index.execs.push(seq);
            }
            let Some(m) = rob.mem(i) else { continue };
            if m.is_store {
                if let Some(p) = m.paddr {
                    index.stores.push(LsqEntry {
                        seq,
                        line: line_of(p),
                    });
                }
            } else if Self::load_indexed(m) {
                index.loads.push(LsqEntry {
                    seq,
                    line: line_of(m.paddr.expect("indexed load resolved")),
                });
            }
        }
        index
    }

    /// Panics unless the index is exactly what [`LsqIndex::rebuild`]
    /// would derive from `rob` (debug builds only; see
    /// `Core::debug_check_lsq`).
    #[cfg(any(debug_assertions, test))]
    pub(super) fn assert_matches(
        &self,
        rob: &Rob,
        completions: &TokenMap<u64>,
        walk_results: &[(WalkClient, WalkResult)],
    ) {
        let fresh = LsqIndex::rebuild(rob, completions, walk_results);
        assert_eq!(self.stores, fresh.stores, "store index diverged from ROB");
        assert_eq!(self.loads, fresh.loads, "load index diverged from ROB");
        assert_eq!(self.memops, fresh.memops, "mem-op worklist diverged");
        assert_eq!(self.execs, fresh.execs, "exec worklist diverged");
    }
}

impl Core {
    /// Debug-build invariants of the LSQ index and the mem-op lifecycle:
    /// a mem op in `Stage::Done` is always in `MemPhase::Done` (so the
    /// index never tracks dead ops), and — periodically, because it costs
    /// a full rebuild — the incremental index matches a from-scratch one.
    #[cfg(any(debug_assertions, test))]
    pub(super) fn debug_check_lsq(&self) {
        for i in 0..self.rob.len() {
            if let Some(m) = self.rob.mem(i) {
                debug_assert!(
                    self.rob.stage(i) != Stage::Done || m.phase == MemPhase::Done,
                    "mem op seq {} pc {:#x} is Stage::Done but {:?}",
                    self.rob.seq(i),
                    self.rob.pc(i),
                    m.phase
                );
            }
        }
        if self.stats.cycles.is_multiple_of(1024) {
            self.assert_lsq_matches();
        }
        self.assert_wakeup_matches();
    }

    /// [`LsqIndex::assert_matches`] with this core's parking context
    /// (completion map and delivered walk results) supplied.
    #[cfg(any(debug_assertions, test))]
    pub(super) fn assert_lsq_matches(&self) {
        self.lsq
            .assert_matches(&self.rob, &self.data_completions, &self.walk_results);
    }
}
