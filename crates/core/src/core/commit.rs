//! Commit: in-order retirement, exceptions and interrupts, system
//! instructions (traps, returns, CSRs, fences, `purge`), and the
//! purge/flush-on-trap sequencing (paper Sections 6.1 and 7.1).

use super::*;

/// Why the commit loop stopped before filling every slot this cycle.
enum CommitBlock {
    /// All `commit_width` slots retired.
    Full,
    /// ROB empty (frontend bubble or post-squash refill).
    Empty,
    /// Head blocked for a known reason.
    Head(CpiCategory),
    /// Head load waiting on memory, serve level not yet known.
    WaitMem(u64),
}

impl Core {
    // ------------------------------------------------------------- commit

    /// Pops the ROB head at retirement: writes the destination register,
    /// clears the RAT mapping, and wakes any consumer still registered
    /// against the head's slot (system ops produce their result only
    /// here; `Done` heads usually broadcast earlier, at completion).
    fn retire_pop(&mut self) -> RobEntry {
        let ph = self.rob.phys(0);
        let mut ws = std::mem::take(&mut self.wake_lists[ph]);
        let entry = self.rob.pop_front().expect("head");
        if let Some(t) = self.tracer.as_deref_mut() {
            // `csrs.cycle` is rewritten from `now` at the top of every
            // tick, so it is the current cycle on every commit path.
            t.retire(entry.seq, self.csrs.cycle);
        }
        if let Some(d) = entry.dest {
            self.regs[d.index() as usize] = entry.result;
            if self.rat[d.index() as usize] == Some(entry.seq) {
                self.rat[d.index() as usize] = None;
            }
        }
        self.drain_waiters(&mut ws, entry.result);
        self.wake_lists[ph] = ws;
        entry
    }

    /// Pops the ROB head on a redirect path (trap, `mret`/`sret`,
    /// `purge`): every registered consumer is younger and about to be
    /// squashed, so the slot's wake list is simply discarded.
    fn pop_head_discard_wakes(&mut self) {
        if let Some(t) = self.tracer.as_deref_mut() {
            let seq = self.rob.seq(0);
            t.retire(seq, self.csrs.cycle);
        }
        self.wake_lists[self.rob.phys(0)].clear();
        self.rob.pop_front();
    }

    pub(super) fn begin_purge_sequence(&mut self, now: u64, resume: Option<(u64, PrivLevel)>) {
        // Scrub the zero-cost-to-reset front-end structures immediately;
        // the timed sweeps (L1s, L2 TLB sets, predictor tables) are
        // charged by the Flushing phase.
        self.btb.reset();
        self.tournament.reset();
        self.ras.reset();
        self.itlb.flush_all();
        self.dtlb.flush_all();
        self.l2_tlb.flush_all();
        self.tcache.flush();
        self.committed_ghist = 0;
        self.purge = PurgePhase::DrainMem;
        self.purge_resume = resume;
        let _ = now;
    }

    pub(super) fn tick_purge(&mut self, now: u64, mem: &mut MemSystem) {
        match self.purge {
            PurgePhase::Idle => {}
            PurgePhase::DrainMem => {
                self.stats.flush_stall_cycles += 1;
                // Wait for zombie traffic and the store buffer.
                self.tick_store_buffer(now, mem);
                if mem.core_quiescent(self.id) && self.sb.is_empty() && self.walker_active.is_none()
                {
                    mem.start_flush(self.id);
                    self.purge = PurgePhase::Flushing {
                        until: now + self.cfg.purge_cycles as u64,
                    };
                }
            }
            PurgePhase::Flushing { until } => {
                self.stats.flush_stall_cycles += 1;
                if now >= until && !mem.flush_active(self.id) {
                    self.purge = PurgePhase::Idle;
                    if let Some((pc, lvl)) = self.purge_resume.take() {
                        self.fetch_pc = pc;
                        self.pc = pc;
                        self.priv_level = lvl;
                    }
                    self.fetch_state = FetchState::Idle;
                    self.fetch_stall_until = now + REDIRECT_PENALTY;
                }
            }
        }
    }

    /// Takes a trap: squashes everything and redirects (possibly after a
    /// flush, under the FLUSH variant).
    pub(super) fn take_trap(&mut self, now: u64, cause: TrapCause, epc: u64, tval: u64) {
        self.stats.traps += 1;
        let (lvl, handler) = self.csrs.take_trap(cause, epc, tval, self.priv_level);
        let from = self.head_seq();
        self.squash_from(now, from, handler);
        self.cpi.note_squash(CpiCategory::SquashTrap, from);
        self.pc = handler;
        if self.sec.flush_on_trap {
            self.begin_purge_sequence(now, Some((handler, lvl)));
        } else {
            self.priv_level = lvl;
        }
    }

    /// Commits up to `commit_width` instructions, then charges the
    /// cycle's commit slots: one `Base` slot per retirement, and every
    /// leftover slot to the oldest blocking reason reported by
    /// [`Core::tick_commit_inner`] (the top-down CPI-stack rule).
    pub(super) fn tick_commit(&mut self, now: u64, mem: &mut MemSystem) {
        let width = self.cfg.commit_width as u64;
        let (committed, block) = self.tick_commit_inner(now, mem);
        self.cpi.cycles += 1;
        self.cpi.charge(CpiCategory::Base, committed);
        let leftover = width - committed;
        if leftover == 0 {
            return;
        }
        match block {
            CommitBlock::Full => {}
            CommitBlock::Empty => {
                let reason = self.cpi.empty_reason();
                self.cpi.charge(reason, leftover);
            }
            CommitBlock::Head(cat) => self.cpi.charge(cat, leftover),
            CommitBlock::WaitMem(seq) => self.cpi.charge_wait_mem(seq, leftover),
        }
    }

    /// The blocking reason for the ROB head that `is_done` rejected.
    fn head_block_reason(&self, now: u64, mem: &MemSystem) -> CommitBlock {
        match self.rob.stage(0) {
            Stage::InIq | Stage::Exec { .. } => CommitBlock::Head(CpiCategory::Exec),
            Stage::MemOp => {
                let seq = self.rob.seq(0);
                let m = self.rob.mem(0).expect("mem op");
                match m.phase {
                    // Address generation is plain ALU work.
                    MemPhase::AddrGen { .. } => CommitBlock::Head(CpiCategory::Exec),
                    MemPhase::Translate | MemPhase::TlbLatency { .. } | MemPhase::WaitWalk => {
                        CommitBlock::Head(CpiCategory::Tlb)
                    }
                    MemPhase::ReadyToAccess => CommitBlock::Head(CpiCategory::MemL1),
                    MemPhase::WaitMem => match mem.mem_stall_reason(now, self.id) {
                        Some(MemStallReason::MshrQuotaDeny) => {
                            CommitBlock::Head(CpiCategory::MshrQuotaDeny)
                        }
                        Some(MemStallReason::ArbDeny) => CommitBlock::Head(CpiCategory::ArbDeny),
                        // Serve level unknown until the fill arrives:
                        // park the slots in MemPending against the seq.
                        None => CommitBlock::WaitMem(seq),
                    },
                    MemPhase::WaitValue { .. } => CommitBlock::Head(
                        self.cpi.resolved_level(seq).unwrap_or(CpiCategory::MemL1),
                    ),
                    MemPhase::Done => CommitBlock::Head(CpiCategory::Exec),
                }
            }
            // `is_done` admits AtCommit/Done heads, so only a stale
            // stage can land here; charge it as execution latency.
            Stage::AtCommit | Stage::Done => CommitBlock::Head(CpiCategory::Exec),
        }
    }

    /// The pre-existing commit loop, unchanged in behaviour; returns how
    /// many slots retired and why the rest could not.
    fn tick_commit_inner(&mut self, now: u64, mem: &mut MemSystem) -> (u64, CommitBlock) {
        // Asynchronous interrupts preempt at the commit boundary.
        if let Some(irq) = self.csrs.pending_interrupt(self.priv_level) {
            let epc = if self.rob.is_empty() {
                self.fetch_pc
            } else {
                self.rob.pc(0)
            };
            self.take_trap(now, TrapCause::Interrupt(irq), epc, 0);
            return (0, CommitBlock::Empty);
        }
        let mut committed: u64 = 0;
        while committed < self.cfg.commit_width as u64 {
            if self.rob.is_empty() {
                return (committed, CommitBlock::Empty);
            }
            if !self.rob.is_done(0) {
                return (committed, self.head_block_reason(now, mem));
            }
            let seq = self.rob.seq(0);
            let pc = self.rob.pc(0);
            let inst = self.rob.inst(0);
            // Exceptions (including poisoned fetches and region faults).
            if let Some((e, tval)) = self.rob.exception(0) {
                if e == Exception::DramRegionFault {
                    self.stats.region_faults += 1;
                }
                self.take_trap(now, TrapCause::Exception(e), pc, tval);
                return (committed, CommitBlock::Empty);
            }
            // System instructions execute here, serialized.
            if self.rob.stage(0) == Stage::AtCommit {
                if !self.commit_system(now, mem, seq) {
                    // Stalled (fence/wfi) or redirected (trap): a redirect
                    // empties the ROB and charges its squash shadow; a
                    // stalled fence is store-buffer drain, anything else
                    // (wfi, halted ebreak) is serialized execution.
                    let block = if self.rob.is_empty() {
                        CommitBlock::Empty
                    } else if matches!(self.rob.inst(0), Inst::Fence) {
                        CommitBlock::Head(CpiCategory::SbFull)
                    } else {
                        CommitBlock::Head(CpiCategory::Exec)
                    };
                    return (committed, block);
                }
                committed += 1;
                self.cpi.clear_shadow(seq);
                continue;
            }
            debug_assert_eq!(self.rob.stage(0), Stage::Done);
            // Stores: write memory and enter the store buffer.
            if inst.is_store() {
                let m = *self.rob.mem(0).expect("mem");
                let paddr = m.paddr.expect("resolved");
                let line = line_of(paddr);
                let merges = self.sb.iter().any(|s| s.line == line && !s.issued);
                if !merges && self.sb.len() >= self.cfg.sb_entries {
                    if committed == 0 {
                        self.cpi.commit_sb_full += 1;
                    }
                    // Store buffer full: stall commit.
                    return (committed, CommitBlock::Head(CpiCategory::SbFull));
                }
                mem.phys.write_bytes(
                    PhysAddr::new(paddr),
                    m.store_data.expect("data"),
                    m.bytes as usize,
                );
                if !merges {
                    let token = TOKEN_SB | (self.next_sb_token & TOKEN_MASK);
                    self.next_sb_token += 1;
                    self.sb.push(SbEntry {
                        line,
                        issued: false,
                        token,
                        done: false,
                    });
                }
                self.sq_used -= 1;
                self.stats.stores += 1;
            }
            if inst.is_load() {
                self.lq_used -= 1;
                self.stats.loads += 1;
            }
            // Branch training.
            if let Some(b) = self.rob.branch(0) {
                let taken = b.actual_taken.unwrap_or(b.pred_taken);
                if inst.is_cond_branch() {
                    self.stats.committed_branches += 1;
                    if let Some(p) = b.tournament {
                        self.tournament.update(pc, p, taken);
                    }
                    self.committed_ghist = (self.committed_ghist << 1) | taken as u16;
                    if taken {
                        self.btb.update(pc, b.actual_target);
                    }
                } else if matches!(inst, Inst::Jalr { .. }) {
                    self.btb.update(pc, b.actual_target);
                }
            }
            // Register writeback (and wakeup of any consumer registered
            // before this producer reached `Done`).
            let entry = self.retire_pop();
            // Retirement is the LSQ index removal point for mem ops.
            if let Some(m) = &entry.mem {
                self.lsq.remove_op(m, seq);
            }
            self.pc = entry
                .branch
                .as_ref()
                .and_then(|b| {
                    b.actual_taken
                        .map(|t| if t { b.actual_target } else { pc + 4 })
                })
                .unwrap_or(pc + 4);
            self.stats.committed_instructions += 1;
            self.csrs.instret += 1;
            committed += 1;
            self.cpi.clear_shadow(seq);
        }
        (committed, CommitBlock::Full)
    }

    /// Executes a system instruction at the head of the ROB. Returns true
    /// if it retired (the caller continues committing).
    pub(super) fn commit_system(&mut self, now: u64, mem: &mut MemSystem, seq: u64) -> bool {
        let idx = self.rob_index(seq).expect("head");
        let inst = self.rob.inst(idx);
        let pc = self.rob.pc(idx);
        let retire_simple = |core: &mut Core| {
            let entry = core.retire_pop();
            core.pc = entry.pc + 4;
            core.stats.committed_instructions += 1;
            core.csrs.instret += 1;
        };
        match inst {
            Inst::Ecall => {
                let e = Exception::ecall_from(self.priv_level);
                // The ecall itself retires; EPC is the ecall's own PC (the
                // handler returns past it via epc+4, as the toy kernel and
                // monitor do).
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.pop_head_discard_wakes();
                self.take_trap(now, TrapCause::Exception(e), pc, 0);
                false
            }
            Inst::Ebreak => {
                if self.priv_level == PrivLevel::Machine {
                    self.halted = true;
                    self.pop_head_discard_wakes();
                    self.stats.committed_instructions += 1;
                    return false;
                }
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.pop_head_discard_wakes();
                self.take_trap(now, TrapCause::Exception(Exception::Breakpoint), pc, pc);
                false
            }
            Inst::Sret => {
                if self.priv_level < PrivLevel::Supervisor {
                    self.pop_head_discard_wakes();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.trap_returns += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.pop_head_discard_wakes();
                let (lvl, epc) = self.csrs.sret();
                let from = self.head_seq();
                self.squash_from(now, from, epc);
                self.cpi.note_squash(CpiCategory::SquashTrap, from);
                self.pc = epc;
                if self.sec.flush_on_trap {
                    self.begin_purge_sequence(now, Some((epc, lvl)));
                } else {
                    self.priv_level = lvl;
                }
                false
            }
            Inst::Mret => {
                if self.priv_level < PrivLevel::Machine {
                    self.pop_head_discard_wakes();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.trap_returns += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.pop_head_discard_wakes();
                let (lvl, epc) = self.csrs.mret();
                let from = self.head_seq();
                self.squash_from(now, from, epc);
                self.cpi.note_squash(CpiCategory::SquashTrap, from);
                self.pc = epc;
                if self.sec.flush_on_trap {
                    self.begin_purge_sequence(now, Some((epc, lvl)));
                } else {
                    self.priv_level = lvl;
                }
                false
            }
            Inst::Wfi => {
                if self.csrs.pending_interrupt(self.priv_level).is_some()
                    || self.csrs.mip & self.csrs.mie != 0
                {
                    retire_simple(self);
                    true
                } else {
                    false // stall at commit until an interrupt pends
                }
            }
            Inst::Fence => {
                self.tick_store_buffer(now, mem);
                if self.sb.is_empty() {
                    retire_simple(self);
                    true
                } else {
                    false
                }
            }
            Inst::FenceI => {
                self.decode_cache.clear();
                retire_simple(self);
                // Refetch everything younger.
                let next = pc + 4;
                self.squash_from(now, self.head_seq(), next);
                true
            }
            Inst::SfenceVma => {
                self.itlb.flush_all();
                self.dtlb.flush_all();
                self.l2_tlb.flush_all();
                self.tcache.flush();
                retire_simple(self);
                true
            }
            Inst::Csr { op, rd, rs1, csr } => {
                let old = match self.csrs.read(csr, self.priv_level) {
                    Ok(v) => v,
                    Err(_) => {
                        self.pop_head_discard_wakes();
                        self.take_trap(now, Exception::IllegalInst.into(), pc, csr as u64);
                        return false;
                    }
                };
                let arg = self.regs[rs1.index() as usize];
                let new = match op {
                    mi6_isa::CsrOp::Rw => Some(arg),
                    mi6_isa::CsrOp::Rs => (!rs1.is_zero()).then_some(old | arg),
                    mi6_isa::CsrOp::Rc => (!rs1.is_zero()).then_some(old & !arg),
                };
                if let Some(v) = new {
                    if let Err(_e) = self.csrs.write(csr, v, self.priv_level) {
                        self.pop_head_discard_wakes();
                        self.take_trap(now, Exception::IllegalInst.into(), pc, csr as u64);
                        return false;
                    }
                }
                let idx = self.rob_index(seq).expect("head");
                self.rob.set_result(idx, old);
                if rd.is_zero() {
                    self.rob.clear_dest(idx);
                }
                retire_simple(self);
                true
            }
            Inst::Purge => {
                if self.priv_level != PrivLevel::Machine {
                    self.pop_head_discard_wakes();
                    self.take_trap(now, Exception::IllegalInst.into(), pc, 0);
                    return false;
                }
                self.stats.purges += 1;
                self.stats.committed_instructions += 1;
                self.csrs.instret += 1;
                self.pop_head_discard_wakes();
                let next = pc + 4;
                let from = self.head_seq();
                self.squash_from(now, from, next);
                self.cpi.note_squash(CpiCategory::Flush, from);
                self.pc = next;
                self.begin_purge_sequence(now, Some((next, self.priv_level)));
                false
            }
            other => unreachable!("not a system instruction: {other}"),
        }
    }
}
