//! The struct-of-arrays reorder buffer, plus ROB bookkeeping: sequence
//! lookup, operand readiness, and the squash path (RAT undo, issue-queue
//! scrub, zombie tokens, speculative global-history rebuild).
//!
//! # Why a struct-of-arrays ring
//!
//! The per-cycle hot paths (`rob_index`, the stage checks in issue /
//! writeback / commit / `next_event`) probe one field of many ROB
//! entries. A `VecDeque<RobEntry>` strides a ~200-byte struct for every
//! such probe, so each one costs a fresh cache line of mostly-unwanted
//! payload. [`Rob`] splits the same logical entries into parallel flat
//! ring buffers sharing a single head/len pair:
//!
//! - **`seqs`** — the lookup key, dense so `Core::rob_index` can
//!   binary-search it at one key per cache line of 8;
//! - **`stages`** — the stage tags, dense for the same reason (they are
//!   the most-polled field: commit eligibility, issue/writeback guards,
//!   `next_event`);
//! - **`body`** — everything else (operands, result, mem-op state, pc,
//!   decoded instruction, rename undo, branch state, exception) as one
//!   per-entry record. These fields are touched only for the specific
//!   entry an event names — issue, wakeup, fault, commit — so keeping
//!   them together means rename's push and commit's pop scatter/gather
//!   across three arrays, not eight.
//!
//! Beyond cache density, the fixed ring gives every live entry a
//! **stable physical slot** ([`Rob::phys`]) for its whole lifetime —
//! head advances at commit without moving survivors. The wakeup matrix
//! (`Core::wake_lists`) leans on that: consumer registrations are
//! per-slot `Vec`s whose allocations are reused across generations of
//! tenants, with no hashing and no reallocation in steady state.
//!
//! The arrays move in lock step; [`RobEntry`] remains the logical form —
//! rename pushes one, commit/squash pop one, and the snapshot codec
//! serializes entries field-by-field in the exact byte order the old
//! `VecDeque<RobEntry>` produced, so the on-disk format is unchanged and
//! the SoA views are derived state rebuilt on restore.

use super::*;

/// Per-entry payload: every field except the two dense probe arrays
/// (`seqs`, `stages`). Touched only for the specific entry an event
/// names, never in a scan.
#[derive(Clone, Debug)]
pub(super) struct RobBody {
    srcs: [Option<Src>; 2],
    result: u64,
    mem: Option<MemState>,
    pc: u64,
    inst: Inst,
    dest: Option<Reg>,
    prev_map: Option<u64>,
    branch: Option<BranchState>,
    exception: Option<(Exception, u64)>,
}

/// The reorder buffer: parallel fixed-capacity ring buffers (see the
/// module docs). Capacity is the configured `rob_entries` rounded up to
/// a power of two; `(head + idx) & mask` maps a logical index to its
/// physical slot, and the mask keeps every access in bounds by
/// construction.
#[derive(Debug)]
pub(super) struct Rob {
    head: usize,
    len: usize,
    mask: usize,
    seqs: Box<[u64]>,
    stages: Box<[Stage]>,
    body: Box<[RobBody]>,
}

impl Rob {
    pub(super) fn new(rob_entries: usize) -> Rob {
        let cap = rob_entries.next_power_of_two().max(2);
        let filler = RobBody {
            srcs: [None, None],
            result: 0,
            mem: None,
            pc: 0,
            inst: Inst::addi(Reg::ZERO, Reg::ZERO, 0),
            dest: None,
            prev_map: None,
            branch: None,
            exception: None,
        };
        Rob {
            head: 0,
            len: 0,
            mask: cap - 1,
            seqs: vec![0; cap].into_boxed_slice(),
            stages: vec![Stage::Done; cap].into_boxed_slice(),
            body: vec![filler; cap].into_boxed_slice(),
        }
    }

    pub(super) fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The stable physical slot of logical index `idx` — fixed for an
    /// entry's whole lifetime (the wakeup matrix is keyed by it).
    #[inline]
    pub(super) fn phys(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len);
        (self.head + idx) & self.mask
    }

    pub(super) fn len(&self) -> usize {
        self.len
    }

    pub(super) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry (restore path; live pops go through
    /// `pop_front`/`pop_back`).
    pub(super) fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    pub(super) fn head_seq(&self) -> Option<u64> {
        (self.len > 0).then(|| self.seqs[self.head])
    }

    pub(super) fn back_seq(&self) -> Option<u64> {
        (self.len > 0).then(|| self.seqs[(self.head + self.len - 1) & self.mask])
    }

    /// The live seqs in ring order as (front, wrapped) slices, for
    /// binary search.
    pub(super) fn seq_slices(&self) -> (&[u64], &[u64]) {
        let cap = self.mask + 1;
        let end = self.head + self.len;
        if end <= cap {
            (&self.seqs[self.head..end], &[])
        } else {
            (&self.seqs[self.head..], &self.seqs[..end - cap])
        }
    }

    #[inline]
    pub(super) fn seq(&self, idx: usize) -> u64 {
        self.seqs[self.phys(idx)]
    }

    #[inline]
    pub(super) fn stage(&self, idx: usize) -> Stage {
        self.stages[self.phys(idx)]
    }

    #[inline]
    pub(super) fn set_stage(&mut self, idx: usize, stage: Stage) {
        self.stages[self.phys(idx)] = stage;
    }

    #[inline]
    pub(super) fn srcs(&self, idx: usize) -> &[Option<Src>; 2] {
        &self.body[self.phys(idx)].srcs
    }

    #[inline]
    pub(super) fn srcs_mut(&mut self, idx: usize) -> &mut [Option<Src>; 2] {
        let ph = self.phys(idx);
        &mut self.body[ph].srcs
    }

    #[inline]
    pub(super) fn result(&self, idx: usize) -> u64 {
        self.body[self.phys(idx)].result
    }

    #[inline]
    pub(super) fn set_result(&mut self, idx: usize, v: u64) {
        let ph = self.phys(idx);
        self.body[ph].result = v;
    }

    #[inline]
    pub(super) fn mem(&self, idx: usize) -> Option<&MemState> {
        self.body[self.phys(idx)].mem.as_ref()
    }

    #[inline]
    pub(super) fn mem_mut(&mut self, idx: usize) -> Option<&mut MemState> {
        let ph = self.phys(idx);
        self.body[ph].mem.as_mut()
    }

    /// The live `mem` fields in ROB order (quiescence scan).
    pub(super) fn mems(&self) -> impl Iterator<Item = &Option<MemState>> {
        let cap = self.mask + 1;
        let end = self.head + self.len;
        let (a, b) = if end <= cap {
            (&self.body[self.head..end], &self.body[..0])
        } else {
            (&self.body[self.head..], &self.body[..end - cap])
        };
        a.iter().map(|e| &e.mem).chain(b.iter().map(|e| &e.mem))
    }

    #[inline]
    pub(super) fn pc(&self, idx: usize) -> u64 {
        self.body[self.phys(idx)].pc
    }

    #[inline]
    pub(super) fn inst(&self, idx: usize) -> Inst {
        self.body[self.phys(idx)].inst
    }

    #[inline]
    pub(super) fn branch(&self, idx: usize) -> Option<BranchState> {
        self.body[self.phys(idx)].branch
    }

    #[inline]
    pub(super) fn branch_mut(&mut self, idx: usize) -> &mut Option<BranchState> {
        let ph = self.phys(idx);
        &mut self.body[ph].branch
    }

    #[inline]
    pub(super) fn exception(&self, idx: usize) -> Option<(Exception, u64)> {
        self.body[self.phys(idx)].exception
    }

    #[inline]
    pub(super) fn set_exception(&mut self, idx: usize, e: Option<(Exception, u64)>) {
        let ph = self.phys(idx);
        self.body[ph].exception = e;
    }

    #[inline]
    pub(super) fn clear_dest(&mut self, idx: usize) {
        let ph = self.phys(idx);
        self.body[ph].dest = None;
    }

    /// Commit-eligible: finished, or holding an exception to raise.
    #[inline]
    pub(super) fn is_done(&self, idx: usize) -> bool {
        let ph = self.phys(idx);
        matches!(self.stages[ph], Stage::Done | Stage::AtCommit)
            || self.body[ph].exception.is_some()
    }

    /// Gathers logical entry `idx` from the parallel arrays (snapshot
    /// serialization and pop paths).
    pub(super) fn entry(&self, idx: usize) -> RobEntry {
        let ph = self.phys(idx);
        let b = &self.body[ph];
        RobEntry {
            seq: self.seqs[ph],
            pc: b.pc,
            inst: b.inst,
            stage: self.stages[ph],
            srcs: b.srcs,
            dest: b.dest,
            prev_map: b.prev_map,
            result: b.result,
            branch: b.branch,
            mem: b.mem,
            exception: b.exception,
        }
    }

    pub(super) fn push_back(&mut self, e: RobEntry) {
        assert!(self.len <= self.mask, "ROB overflow");
        let ph = (self.head + self.len) & self.mask;
        self.len += 1;
        self.seqs[ph] = e.seq;
        self.stages[ph] = e.stage;
        self.body[ph] = RobBody {
            srcs: e.srcs,
            result: e.result,
            mem: e.mem,
            pc: e.pc,
            inst: e.inst,
            dest: e.dest,
            prev_map: e.prev_map,
            branch: e.branch,
            exception: e.exception,
        };
    }

    pub(super) fn pop_front(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.entry(0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(e)
    }

    pub(super) fn pop_back(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.entry(self.len - 1);
        self.len -= 1;
        Some(e)
    }
}

impl Core {
    // ---------------------------------------------------------------- ROB

    pub(super) fn head_seq(&self) -> u64 {
        self.rob.head_seq().unwrap_or(self.next_seq)
    }

    pub(super) fn rob_index(&self, seq: u64) -> Option<usize> {
        // Seqs are strictly increasing but NOT contiguous (a squash leaves
        // a gap before the next rename), so binary-search — after an O(1)
        // guess: between squashes seqs ARE contiguous, so `seq - head` is
        // exact almost always (this is the hottest lookup in the core).
        let head = self.rob.head_seq()?;
        if seq < head {
            return None;
        }
        let guess = (seq - head) as usize;
        if guess < self.rob.len() && self.rob.seq(guess) == seq {
            return Some(guess);
        }
        let (a, b) = self.rob.seq_slices();
        match a.binary_search(&seq) {
            Ok(i) => Some(i),
            Err(_) => b.binary_search(&seq).ok().map(|i| a.len() + i),
        }
    }

    pub(super) fn producer_value(&self, src: Src) -> Option<u64> {
        match src {
            Src::Ready(v) => Some(v),
            Src::Wait { seq, reg } => match self.rob_index(seq) {
                None => Some(self.regs[reg.index() as usize]),
                Some(idx) => (self.rob.stage(idx) == Stage::Done).then(|| self.rob.result(idx)),
            },
        }
    }

    pub(super) fn srcs_ready(&self, idx: usize) -> Option<(u64, u64)> {
        let srcs = *self.rob.srcs(idx);
        let a = match srcs[0] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        let b = match srcs[1] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        Some((a, b))
    }

    /// [`Core::srcs_ready`], but memoizing: each `Src::Wait` that resolves
    /// is rewritten to `Src::Ready` so later polls of the same entry skip
    /// the ROB walk. Sound because a producer's value is final once
    /// observable — a squash that removes the producer removes every
    /// younger entry, including this consumer — so this changes the
    /// in-memory representation only, never an issue decision.
    pub(super) fn poll_srcs(&mut self, idx: usize) -> Option<(u64, u64)> {
        let mut vals = [0u64; 2];
        for (i, val) in vals.iter_mut().enumerate() {
            let Some(src) = self.rob.srcs(idx)[i] else {
                continue;
            };
            if let Src::Ready(v) = src {
                *val = v;
                continue;
            }
            let v = self.producer_value(src)?;
            self.rob.srcs_mut(idx)[i] = Some(Src::Ready(v));
            *val = v;
        }
        Some((vals[0], vals[1]))
    }

    // ------------------------------------------------------------- squash

    /// Squashes all entries with `seq >= from_seq`; redirects fetch to
    /// `new_pc`.
    pub(super) fn squash_from(&mut self, now: u64, from_seq: u64, new_pc: u64) {
        // Issue queues and ready sets are ascending by seq, so every
        // squashed entry sits in one contiguous tail: one truncation per
        // list replaces a per-entry `retain` rescan.
        for iq in &mut self.iqs {
            let cut = iq.partition_point(|&s| s < from_seq);
            iq.truncate(cut);
        }
        for rq in &mut self.ready_iq {
            let cut = rq.partition_point(|&s| s < from_seq);
            rq.truncate(cut);
        }
        while let Some(back) = self.rob.back_seq() {
            if back < from_seq {
                break;
            }
            // A squashed producer's registered consumers are all younger,
            // hence squashed too: discard the slot's wake list so the next
            // tenant starts clean.
            self.wake_lists[self.rob.phys(self.rob.len() - 1)].clear();
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_instructions += 1;
            if let Some(t) = self.tracer.as_deref_mut() {
                t.squash(e.seq);
            }
            // Undo RAT.
            if let Some(d) = e.dest {
                if self.rat[d.index() as usize] == Some(e.seq) {
                    self.rat[d.index() as usize] = e.prev_map;
                }
            }
            // Drop the entry from the exec worklist if it was mid-execute.
            if matches!(e.stage, Stage::Exec { .. }) {
                self.lsq.exec_remove(e.seq);
            }
            // Release LQ/SQ slots, drop the entry from the LSQ index and
            // mem-op worklist, and orphan in-flight tokens.
            if let Some(m) = &e.mem {
                if m.is_store {
                    self.sq_used -= 1;
                } else {
                    self.lq_used -= 1;
                }
                self.lsq.remove_op(m, e.seq);
                if e.stage == Stage::MemOp {
                    // A parked op (WaitMem with the L1 answer still in
                    // flight, WaitWalk with no delivered result) is not on
                    // the worklist; one whose wake already arrived is. The
                    // wake check must happen BEFORE the completion/result
                    // is dropped below, or the membership test reads
                    // already-scrubbed state.
                    let awake = match m.phase {
                        MemPhase::WaitMem => {
                            // If the L1 already answered, drop the
                            // completion now; otherwise mark the token so
                            // the answer is dropped at arrival. (Leaving
                            // an already-arrived completion behind would
                            // leak it forever — nothing consumes it.)
                            let token = TOKEN_LOAD | (e.seq & TOKEN_MASK);
                            self.data_levels.remove(&(e.seq & TOKEN_MASK));
                            if self.data_completions.remove(&token).is_some() {
                                true
                            } else {
                                self.zombies.insert(token);
                                false
                            }
                        }
                        MemPhase::WaitWalk => {
                            let client = WalkClient::Rob(e.seq);
                            let woke = self.walk_results.iter().any(|(c, _)| *c == client);
                            self.cancel_walk(client);
                            woke
                        }
                        _ => true,
                    };
                    if awake {
                        self.lsq.memop_remove(e.seq);
                    }
                }
            }
        }
        // Flush the front end.
        self.fetch_queue.clear();
        match self.fetch_state.clone() {
            // If the I-cache already answered, drop the completion now;
            // otherwise mark the token so the answer is dropped at
            // arrival (an already-arrived completion would leak forever).
            FetchState::WaitICache { token, .. }
                if self.ifetch_completions.remove(&token).is_none() =>
            {
                self.zombies.insert(token);
            }
            FetchState::WaitWalk => self.cancel_walk(WalkClient::Fetch),
            _ => {}
        }
        self.fetch_state = FetchState::Idle;
        self.fetch_pc = new_pc;
        self.fetch_stall_until = now + REDIRECT_PENALTY;
        self.rebuild_ghist();
    }

    /// Recomputes the speculative global history from the committed
    /// history plus surviving in-flight branches (actual outcome where
    /// resolved, predicted otherwise).
    pub(super) fn rebuild_ghist(&mut self) {
        let mut g = self.committed_ghist;
        for i in 0..self.rob.len() {
            if let Some(b) = self.rob.branch(i) {
                if self.rob.inst(i).is_cond_branch() {
                    g = (g << 1) | b.actual_taken.unwrap_or(b.pred_taken) as u16;
                }
            }
        }
        self.tournament.ghist = g;
    }
}
