//! ROB bookkeeping: sequence-number lookup, operand readiness, and the
//! squash path (RAT undo, issue-queue scrub, zombie tokens, speculative
//! global-history rebuild).

use super::*;

impl Core {
    // ---------------------------------------------------------------- ROB

    pub(super) fn head_seq(&self) -> u64 {
        self.rob.front().map(|e| e.seq).unwrap_or(self.next_seq)
    }

    pub(super) fn rob_index(&self, seq: u64) -> Option<usize> {
        // Seqs are strictly increasing but NOT contiguous (a squash leaves
        // a gap before the next rename), so binary-search — after an O(1)
        // guess: between squashes seqs ARE contiguous, so `seq - head` is
        // exact almost always (this is the hottest lookup in the core).
        let head = self.rob.front()?.seq;
        if seq < head {
            return None;
        }
        let guess = (seq - head) as usize;
        if guess < self.rob.len() && self.rob[guess].seq == seq {
            return Some(guess);
        }
        let (a, b) = self.rob.as_slices();
        match a.binary_search_by_key(&seq, |e| e.seq) {
            Ok(i) => Some(i),
            Err(_) => b
                .binary_search_by_key(&seq, |e| e.seq)
                .ok()
                .map(|i| a.len() + i),
        }
    }

    pub(super) fn producer_value(&self, src: Src) -> Option<u64> {
        match src {
            Src::Ready(v) => Some(v),
            Src::Wait { seq, reg } => match self.rob_index(seq) {
                None => Some(self.regs[reg.index() as usize]),
                Some(idx) => {
                    let e = &self.rob[idx];
                    (e.stage == Stage::Done).then_some(e.result)
                }
            },
        }
    }

    pub(super) fn srcs_ready(&self, entry: &RobEntry) -> Option<(u64, u64)> {
        let a = match entry.srcs[0] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        let b = match entry.srcs[1] {
            None => 0,
            Some(s) => self.producer_value(s)?,
        };
        Some((a, b))
    }

    /// [`Core::srcs_ready`], but memoizing: each `Src::Wait` that resolves
    /// is rewritten to `Src::Ready` so later polls of the same entry skip
    /// the ROB walk. Sound because a producer's value is final once
    /// observable — a squash that removes the producer removes every
    /// younger entry, including this consumer — so this changes the
    /// in-memory representation only, never an issue decision.
    pub(super) fn poll_srcs(&mut self, idx: usize) -> Option<(u64, u64)> {
        let mut vals = [0u64; 2];
        for (i, slot) in vals.iter_mut().enumerate() {
            let Some(src) = self.rob[idx].srcs[i] else {
                continue;
            };
            if let Src::Ready(v) = src {
                *slot = v;
                continue;
            }
            let v = self.producer_value(src)?;
            self.rob[idx].srcs[i] = Some(Src::Ready(v));
            *slot = v;
        }
        Some((vals[0], vals[1]))
    }

    // ------------------------------------------------------------- squash

    /// Squashes all entries with `seq >= from_seq`; redirects fetch to
    /// `new_pc`.
    pub(super) fn squash_from(&mut self, now: u64, from_seq: u64, new_pc: u64) {
        // Issue queues are ascending by seq, so every squashed entry sits
        // in one contiguous tail: one truncation per queue replaces a
        // per-entry `retain` rescan.
        for iq in &mut self.iqs {
            let cut = iq.partition_point(|&s| s < from_seq);
            iq.truncate(cut);
        }
        while let Some(back) = self.rob.back() {
            if back.seq < from_seq {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.stats.squashed_instructions += 1;
            // Undo RAT.
            if let Some(d) = e.dest {
                if self.rat[d.index() as usize] == Some(e.seq) {
                    self.rat[d.index() as usize] = e.prev_map;
                }
            }
            // Drop the entry from the exec worklist if it was mid-execute.
            if matches!(e.stage, Stage::Exec { .. }) {
                self.lsq.exec_remove(e.seq);
            }
            // Release LQ/SQ slots, drop the entry from the LSQ index and
            // mem-op worklist, and orphan in-flight tokens.
            if let Some(m) = &e.mem {
                if m.is_store {
                    self.sq_used -= 1;
                } else {
                    self.lq_used -= 1;
                }
                self.lsq.remove_op(m, e.seq);
                if e.stage == Stage::MemOp {
                    self.lsq.memop_remove(e.seq);
                }
                if m.phase == MemPhase::WaitMem {
                    // If the L1 already answered, drop the completion now;
                    // otherwise mark the token so the answer is dropped at
                    // arrival. (Leaving an already-arrived completion
                    // behind would leak it forever — nothing consumes it.)
                    let token = TOKEN_LOAD | (e.seq & TOKEN_MASK);
                    if self.data_completions.remove(&token).is_none() {
                        self.zombies.insert(token);
                    }
                }
                if m.phase == MemPhase::WaitWalk {
                    self.cancel_walk(WalkClient::Rob(e.seq));
                }
            }
        }
        // Flush the front end.
        self.fetch_queue.clear();
        match self.fetch_state.clone() {
            // If the I-cache already answered, drop the completion now;
            // otherwise mark the token so the answer is dropped at
            // arrival (an already-arrived completion would leak forever).
            FetchState::WaitICache { token, .. }
                if self.ifetch_completions.remove(&token).is_none() =>
            {
                self.zombies.insert(token);
            }
            FetchState::WaitWalk => self.cancel_walk(WalkClient::Fetch),
            _ => {}
        }
        self.fetch_state = FetchState::Idle;
        self.fetch_pc = new_pc;
        self.fetch_stall_until = now + REDIRECT_PENALTY;
        self.rebuild_ghist();
    }

    /// Recomputes the speculative global history from the committed
    /// history plus surviving in-flight branches (actual outcome where
    /// resolved, predicted otherwise).
    pub(super) fn rebuild_ghist(&mut self) {
        let mut g = self.committed_ghist;
        for e in &self.rob {
            if let Some(b) = &e.branch {
                if e.inst.is_cond_branch() {
                    g = (g << 1) | b.actual_taken.unwrap_or(b.pred_taken) as u16;
                }
            }
        }
        self.tournament.ghist = g;
    }
}
