//! The load-store unit: memory-op address generation, translation and
//! region checks, store-queue forwarding, memory-order violation
//! detection, and the store buffer that drains committed stores to the
//! L1D.
//!
//! All forwarding/blocking/violation queries go through the per-line
//! [`LsqIndex`] (see `lsq_index.rs`) instead of scanning the ROB: memory
//! ops are size-aligned and at most 8 bytes, so an op never spans a
//! 64-byte line and one line lookup sees every possibly-overlapping op.
//! The query results are bit-for-bit identical to the old O(ROB) scans —
//! the golden fingerprints in `tests/golden_stats.rs` pin that.

use super::*;

impl Core {
    // ----------------------------------------------------- memory pipeline

    /// Reads the architectural value for a load, overlaying older
    /// uncommitted stores from the store queue (oldest first, so a
    /// younger store's bytes win).
    pub(super) fn load_value(&self, mem: &MemSystem, seq: u64, paddr: u64, bytes: u64) -> u64 {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate().take(bytes as usize) {
            *b = mem.phys.read_u8(PhysAddr::new(paddr + i as u64));
        }
        let line = line_of(paddr);
        for s in self.lsq.stores() {
            if s.seq >= seq {
                break;
            }
            if s.line != line {
                continue;
            }
            let sm = self.indexed_store(s.seq);
            let sp = sm.paddr.expect("indexed store resolved");
            let Some(data) = sm.store_data else { continue };
            for i in 0..bytes {
                let a = paddr + i;
                if a >= sp && a < sp + sm.bytes {
                    buf[i as usize] = (data >> (8 * (a - sp))) as u8;
                }
            }
        }
        u64::from_le_bytes(buf)
    }

    /// Whether an older store blocks this load from producing a value yet
    /// (overlapping store with unknown data), or may alias (unknown
    /// address — RiscyOO speculates past those; violations are caught when
    /// the store resolves).
    pub(super) fn older_store_blocks(&self, seq: u64, paddr: u64, bytes: u64) -> bool {
        let line = line_of(paddr);
        for s in self.lsq.stores() {
            if s.seq >= seq {
                break;
            }
            if s.line != line {
                continue;
            }
            let sm = self.indexed_store(s.seq);
            let sp = sm.paddr.expect("indexed store resolved");
            let overlap = paddr < sp + sm.bytes && sp < paddr + bytes;
            if overlap && sm.store_data.is_none() {
                return true;
            }
        }
        false
    }

    /// The `MemState` of an indexed store (index membership implies the
    /// seq is live in the ROB with a resolved address).
    fn indexed_store(&self, seq: u64) -> &MemState {
        let idx = self.rob_index(seq).expect("indexed store in ROB");
        self.rob.mem(idx).expect("indexed store has mem")
    }

    /// Completes a memory op with a fault: record the exception and mark
    /// the op `Stage::Done` *and* `MemPhase::Done` together (the Done⇒Done
    /// invariant is what guarantees the LSQ index never tracks dead ops),
    /// then drop it from the mem-op worklist.
    fn fault_mem_op(&mut self, idx: usize, e: Exception, tval: u64) {
        self.rob.set_exception(idx, Some((e, tval)));
        self.rob.set_stage(idx, Stage::Done);
        // Consumers see `Stage::Done` and issue with the (never-written)
        // result, exactly as the polled scheme allowed — the trap at
        // commit squashes them before the value matters.
        self.wake_consumers(idx);
        self.rob.mem_mut(idx).expect("mem").phase = MemPhase::Done;
        let seq = self.rob.seq(idx);
        self.lsq.memop_remove(seq);
        if let Some(t) = self.tracer.as_deref_mut() {
            let now = self.csrs.cycle;
            t.mem_phase(seq, "fault", now);
            t.complete(seq, now);
        }
    }

    pub(super) fn advance_mem_ops(&mut self, now: u64, mem: &mut MemSystem) {
        // Iterate a stable copy of the worklist (a violation squash can
        // shrink it mid-loop); the scratch buffer makes this allocation-
        // free after warm-up. Worklist order is ascending seq — the same
        // order the old full-ROB scan processed ops in.
        let mut seqs = std::mem::take(&mut self.lsq.scratch);
        seqs.clear();
        seqs.extend_from_slice(self.lsq.memops());
        for &seq in &seqs {
            let Some(idx) = self.rob_index(seq) else {
                continue; // squashed earlier this cycle
            };
            // Fast-path the pure time-waits before copying any entry
            // state: most ops spend most of their cycles in one of these,
            // where the only question is "is it time yet".
            match self.rob.mem(idx).expect("mem state").phase {
                MemPhase::AddrGen { done_at } if now < done_at => continue,
                MemPhase::TlbLatency { ready_at } if now < ready_at => continue,
                MemPhase::WaitValue { ready_at } if now < ready_at => continue,
                MemPhase::Done => continue,
                _ => {}
            }
            let m = *self.rob.mem(idx).expect("mem state");
            match m.phase {
                MemPhase::AddrGen { done_at } => {
                    if now >= done_at {
                        if !m.vaddr.is_multiple_of(m.bytes) {
                            let e = if m.is_store {
                                Exception::StoreMisaligned
                            } else {
                                Exception::LoadMisaligned
                            };
                            self.fault_mem_op(idx, e, m.vaddr);
                            continue;
                        }
                        self.rob.mem_mut(idx).expect("mem").phase = MemPhase::Translate;
                    }
                }
                MemPhase::Translate => {
                    let kind = if m.is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let (paddr, region_ok, extra) = if self.bare_translation() {
                        (m.vaddr, self.region_allowed(mem, m.vaddr), 0)
                    } else {
                        match self.try_translate(m.vaddr, kind, WalkClient::Rob(seq)) {
                            Err(e) => {
                                self.fault_mem_op(idx, e, m.vaddr);
                                continue;
                            }
                            Ok(TranslateOutcome::Walking) => {
                                self.rob.mem_mut(idx).expect("mem").phase = MemPhase::WaitWalk;
                                if let Some(t) = self.tracer.as_deref_mut() {
                                    t.mem_phase(seq, "walk", now);
                                }
                                // Park: the op leaves the worklist until
                                // the walker delivers its result.
                                self.lsq.memop_remove(seq);
                                continue;
                            }
                            Ok(TranslateOutcome::Busy) => continue, // retry in Translate
                            Ok(TranslateOutcome::Hit {
                                paddr,
                                region_ok,
                                extra,
                            }) => (paddr, region_ok, extra),
                        }
                    };
                    if !region_ok || paddr + m.bytes > mem.phys.size() {
                        // Suppressed: no memory traffic; fault if it
                        // reaches commit (Section 5.3).
                        if !region_ok {
                            self.stats.region_suppressed += 1;
                            self.fault_mem_op(idx, Exception::DramRegionFault, m.vaddr);
                        } else {
                            let e = if m.is_store {
                                Exception::StoreAccessFault
                            } else {
                                Exception::LoadAccessFault
                            };
                            self.fault_mem_op(idx, e, m.vaddr);
                        }
                        continue;
                    }
                    {
                        let ms = self.rob.mem_mut(idx).expect("mem");
                        ms.paddr = Some(paddr);
                        ms.phase = if extra > 0 {
                            MemPhase::TlbLatency {
                                ready_at: now + extra,
                            }
                        } else {
                            MemPhase::ReadyToAccess
                        };
                    }
                    if let Some(t) = self.tracer.as_deref_mut() {
                        t.mem_phase(seq, "xlat", now);
                    }
                    // Address resolution is the store-index insertion
                    // point (faulted ops above never resolve an address,
                    // so they are never indexed).
                    if m.is_store {
                        self.lsq.insert_store(line_of(paddr), seq);
                    }
                    if self.rob.mem(idx).expect("mem").phase == MemPhase::ReadyToAccess {
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::TlbLatency { ready_at } => {
                    if now >= ready_at {
                        self.rob.mem_mut(idx).expect("mem").phase = MemPhase::ReadyToAccess;
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::WaitWalk => {
                    if let Some(result) = self.take_walk_result(WalkClient::Rob(seq)) {
                        match result {
                            WalkResult::Ok => {
                                self.rob.mem_mut(idx).expect("mem").phase = MemPhase::Translate;
                            }
                            WalkResult::Fault(e) => {
                                self.fault_mem_op(idx, e, m.vaddr);
                            }
                        }
                    }
                }
                MemPhase::ReadyToAccess => {
                    self.mem_ready_to_access(now, mem, seq);
                }
                MemPhase::WaitMem => {
                    let token = TOKEN_LOAD | (seq & TOKEN_MASK);
                    if let Some(&ready_at) = self.data_completions.get(&token) {
                        self.data_completions.remove(&token);
                        let ms = self.rob.mem_mut(idx).expect("mem");
                        ms.phase = MemPhase::WaitValue { ready_at };
                        // The fill's serve level is known now: move any
                        // MemPending slots charged for this load to it.
                        let level = self
                            .data_levels
                            .remove(&(seq & TOKEN_MASK))
                            .unwrap_or(CpiCategory::MemLlc);
                        self.cpi.resolve_serve_level(seq, level);
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.mem_phase(seq, "mem", now);
                        }
                    }
                }
                MemPhase::WaitValue { ready_at } => {
                    if now >= ready_at {
                        let paddr = m.paddr.expect("translated");
                        let raw = self.load_value(mem, seq, paddr, m.bytes);
                        let inst = self.rob.inst(idx);
                        self.rob.set_result(idx, exec::extend_load(&inst, raw));
                        self.rob.set_stage(idx, Stage::Done);
                        self.wake_consumers(idx);
                        if let Some(t) = self.tracer.as_deref_mut() {
                            t.complete(seq, now);
                        }
                        self.rob.mem_mut(idx).expect("mem").phase = MemPhase::Done;
                        self.lsq.memop_remove(seq);
                    }
                }
                MemPhase::Done => {}
            }
        }
        self.lsq.scratch = seqs;
    }

    /// A memory op has its physical address: stores record it (and check
    /// for memory-order violations); loads forward or issue to the L1D.
    pub(super) fn mem_ready_to_access(&mut self, now: u64, mem: &mut MemSystem, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            return;
        };
        let m = *self.rob.mem(idx).expect("mem state");
        let paddr = m.paddr.expect("translated");
        let line = line_of(paddr);
        if m.is_store {
            // Store: address + data recorded; done (data written at
            // commit). First check younger loads that already executed to
            // an overlapping address — memory-order violation. The load
            // index holds exactly the issued, address-resolved loads; its
            // lists are ascending, so the first match is the *oldest*
            // violating load (squashing from it subsumes the rest).
            let mut violating: Option<(u64, u64)> = None; // (seq, pc)
            for l in self.lsq.loads() {
                if l.seq <= seq || l.line != line {
                    continue;
                }
                let lidx = self.rob_index(l.seq).expect("indexed load in ROB");
                let lm = self.rob.mem(lidx).expect("indexed load");
                let lp = lm.paddr.expect("indexed load resolved");
                let overlap = lp < paddr + m.bytes && paddr < lp + lm.bytes;
                if overlap {
                    violating = Some((l.seq, self.rob.pc(lidx)));
                    break;
                }
            }
            self.rob.set_stage(idx, Stage::Done);
            self.rob.mem_mut(idx).expect("mem").phase = MemPhase::Done;
            self.lsq.memop_remove(seq);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.complete(seq, now);
            }
            if let Some((lseq, lpc)) = violating {
                self.stats.mem_order_violations += 1;
                self.squash_from(now, lseq, lpc);
                self.cpi.note_squash(CpiCategory::SquashOrder, lseq);
            }
            return;
        }
        // Load.
        if self.older_store_blocks(seq, paddr, m.bytes) {
            return; // retry next cycle
        }
        // Full-cover forwarding from the youngest older store?
        let mut forwarded = false;
        for s in self.lsq.stores().iter().rev() {
            if s.seq >= seq || s.line != line {
                continue;
            }
            let sm = self.indexed_store(s.seq);
            let (Some(sp), Some(_)) = (sm.paddr, sm.store_data) else {
                continue;
            };
            let overlap = paddr < sp + sm.bytes && sp < paddr + m.bytes;
            if overlap {
                let covers = sp <= paddr && paddr + m.bytes <= sp + sm.bytes;
                if covers {
                    forwarded = true;
                }
                break; // youngest overlapping store decides
            }
        }
        if forwarded {
            let ms = self.rob.mem_mut(idx).expect("mem");
            ms.phase = MemPhase::WaitValue { ready_at: now + 1 };
            self.lsq.insert_load(line, seq);
            self.cpi.resolve_serve_level(seq, CpiCategory::MemL1);
            if let Some(t) = self.tracer.as_deref_mut() {
                t.mem_phase(seq, "fwd", now);
            }
            return;
        }
        let token = TOKEN_LOAD | (seq & TOKEN_MASK);
        match mem.access(now, self.id, Port::Data, token, PhysAddr::new(paddr), false) {
            L1Access::Hit { ready_at } => {
                let ms = self.rob.mem_mut(idx).expect("mem");
                ms.phase = MemPhase::WaitValue { ready_at };
                self.lsq.insert_load(line, seq);
                self.cpi.resolve_serve_level(seq, CpiCategory::MemL1);
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.mem_phase(seq, "l1", now);
                }
            }
            L1Access::Miss => {
                let ms = self.rob.mem_mut(idx).expect("mem");
                ms.phase = MemPhase::WaitMem;
                self.lsq.insert_load(line, seq);
                if let Some(t) = self.tracer.as_deref_mut() {
                    t.mem_phase(seq, "miss", now);
                }
                // Park: nothing to do until the L1 completion arrives
                // (the tick completion sweep re-inserts by token seq).
                self.lsq.memop_remove(seq);
            }
            L1Access::Blocked => {} // retry next cycle
        }
    }

    // -------------------------------------------------------- store buffer

    pub(super) fn tick_store_buffer(&mut self, now: u64, mem: &mut MemSystem) {
        // Issue the oldest unissued entry.
        if let Some(entry) = self.sb.iter_mut().find(|s| !s.issued) {
            let token = entry.token;
            let line = entry.line;
            match mem.access(now, self.id, Port::Data, token, PhysAddr::new(line), true) {
                L1Access::Hit { ready_at } => {
                    // The entry occupies the SB for the modeled L1 hit
                    // latency: park a completion and retire it at
                    // `ready_at`, exactly like a miss whose completion
                    // arrives from the hierarchy. (Marking it done
                    // immediately — as this code once did — let drained
                    // stores free their SB slot and satisfy fences
                    // without paying the hit latency; the golden
                    // fingerprints were updated with this fix.)
                    entry.issued = true;
                    self.data_completions.insert(token, ready_at);
                }
                L1Access::Miss => {
                    entry.issued = true;
                }
                L1Access::Blocked => {}
            }
        }
        // Retire entries whose data is in the L1 (`ready_at` reached; for
        // miss completions `ready_at` has always passed by delivery, so
        // the check only holds hits for their modeled latency).
        let completions = &mut self.data_completions;
        for entry in self.sb.iter_mut() {
            if entry.issued && !entry.done {
                if let Some(&ready_at) = completions.get(&entry.token) {
                    if now >= ready_at {
                        completions.remove(&entry.token);
                        entry.done = true;
                    }
                }
            }
        }
        self.sb.retain(|s| !s.done);
    }
}

#[cfg(test)]
mod tests {
    //! Forwarding / blocking / violation edge cases the LSQ index must
    //! preserve exactly, driven on fabricated ROB state (the integration
    //! proof of equivalence is `tests/golden_stats.rs`; these pin the
    //! corner cases a fingerprint might not happen to exercise).

    use super::*;
    use mi6_mem::MemConfig;

    fn test_core() -> (Core, MemSystem) {
        (
            Core::new(0, CoreConfig::paper(), SecurityConfig::insecure()),
            MemSystem::new(MemConfig::paper_base(), 1),
        )
    }

    /// Pushes a fabricated in-flight mem op, maintaining the LSQ index at
    /// the same points the pipeline does (address resolved ⇒ stores
    /// indexed; issued ⇒ loads indexed; `Stage::MemOp` ⇒ worklist).
    fn push_mem_op(
        core: &mut Core,
        seq: u64,
        is_store: bool,
        paddr: u64,
        bytes: u64,
        store_data: Option<u64>,
        phase: MemPhase,
    ) {
        let inst = if is_store {
            Inst::sd(Reg::T0, Reg::T1, 0)
        } else {
            Inst::ld(Reg::T0, Reg::T1, 0)
        };
        let stage = if phase == MemPhase::Done {
            Stage::Done
        } else {
            Stage::MemOp
        };
        core.rob.push_back(RobEntry {
            seq,
            pc: 0x1000 + seq * 4,
            inst,
            stage,
            srcs: [None, None],
            dest: None,
            prev_map: None,
            result: 0,
            branch: None,
            mem: Some(MemState {
                vaddr: paddr,
                paddr: Some(paddr),
                bytes,
                is_store,
                store_data,
                phase,
            }),
            exception: None,
        });
        core.next_seq = seq + 1;
        if is_store {
            core.sq_used += 1;
            core.lsq.insert_store(line_of(paddr), seq);
        } else {
            core.lq_used += 1;
            if matches!(
                phase,
                MemPhase::WaitMem | MemPhase::WaitValue { .. } | MemPhase::Done
            ) {
                core.lsq.insert_load(line_of(paddr), seq);
            }
        }
        if stage == Stage::MemOp {
            core.lsq.memop_insert(seq);
        }
        core.assert_lsq_matches();
    }

    fn load_phase(core: &Core, seq: u64) -> MemPhase {
        let idx = core.rob_index(seq).expect("in ROB");
        core.rob.mem(idx).expect("mem").phase
    }

    #[test]
    fn unknown_data_store_blocks_only_overlapping_loads() {
        let (mut core, _mem) = test_core();
        // An address-resolved store whose data is still unknown.
        push_mem_op(&mut core, 0, true, 0x100, 8, None, MemPhase::ReadyToAccess);
        // Overlap (full and partial) blocks...
        assert!(core.older_store_blocks(1, 0x100, 8));
        assert!(core.older_store_blocks(1, 0x104, 4));
        // ...same line but disjoint bytes does not...
        assert!(!core.older_store_blocks(1, 0x108, 8));
        // ...and the store never blocks an *older* load.
        assert!(!core.older_store_blocks(0, 0x100, 8));
        // Once the data resolves, nothing blocks.
        core.rob.mem_mut(0).unwrap().store_data = Some(7);
        assert!(!core.older_store_blocks(1, 0x100, 8));
    }

    #[test]
    fn partial_overlap_does_not_forward() {
        let (mut core, mut mem) = test_core();
        // Older store covers only the high half of the load's bytes.
        push_mem_op(
            &mut core,
            0,
            true,
            0x104,
            4,
            Some(0xABCD),
            MemPhase::ReadyToAccess,
        );
        push_mem_op(&mut core, 1, false, 0x100, 8, None, MemPhase::ReadyToAccess);
        core.mem_ready_to_access(10, &mut mem, 1);
        // Not forwarded: the load went to the (cold) L1 and missed.
        assert_eq!(load_phase(&core, 1), MemPhase::WaitMem);
        core.assert_lsq_matches();
    }

    #[test]
    fn youngest_overlapping_store_decides_forwarding() {
        let (mut core, mut mem) = test_core();
        // Oldest store fully covers the load; a younger store overlaps
        // only partially. The *youngest* overlapping store decides, so no
        // forward happens even though the older one could serve it.
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            8,
            Some(0x1111_1111_1111_1111),
            MemPhase::Done,
        );
        push_mem_op(
            &mut core,
            1,
            true,
            0x100,
            4,
            Some(0x2222_2222),
            MemPhase::Done,
        );
        push_mem_op(&mut core, 2, false, 0x100, 8, None, MemPhase::ReadyToAccess);
        core.mem_ready_to_access(10, &mut mem, 2);
        assert_eq!(load_phase(&core, 2), MemPhase::WaitMem);

        // Flip the ages: now the youngest overlapping store covers fully
        // and forwarding fires (one-cycle value delivery).
        let (mut core, mut mem) = test_core();
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            4,
            Some(0x2222_2222),
            MemPhase::Done,
        );
        push_mem_op(
            &mut core,
            1,
            true,
            0x100,
            8,
            Some(0x1111_1111_1111_1111),
            MemPhase::Done,
        );
        push_mem_op(&mut core, 2, false, 0x100, 8, None, MemPhase::ReadyToAccess);
        core.mem_ready_to_access(10, &mut mem, 2);
        assert_eq!(load_phase(&core, 2), MemPhase::WaitValue { ready_at: 11 });
        core.assert_lsq_matches();
    }

    #[test]
    fn load_value_overlays_stores_youngest_wins() {
        let (mut core, mem) = test_core();
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            8,
            Some(0x1111_1111_1111_1111),
            MemPhase::Done,
        );
        push_mem_op(
            &mut core,
            1,
            true,
            0x100,
            4,
            Some(0x2222_2222),
            MemPhase::Done,
        );
        // Low half from the younger store, high half from the older one;
        // memory itself (zeros) is fully shadowed.
        assert_eq!(core.load_value(&mem, 2, 0x100, 8), 0x1111_1111_2222_2222);
        // Only stores *older* than the reader overlay.
        assert_eq!(core.load_value(&mem, 1, 0x100, 8), 0x1111_1111_1111_1111);
        assert_eq!(core.load_value(&mem, 0, 0x100, 8), 0);
    }

    #[test]
    fn violation_squash_targets_oldest_violating_load() {
        let (mut core, mut mem) = test_core();
        // The store resolves its address after three younger loads went
        // ahead: two overlapping (seqs 1 and 2, both already issued) and
        // one overlapping but NOT yet issued (seq 3 — no violation: it
        // will re-check the store queue when it issues).
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            8,
            Some(9),
            MemPhase::ReadyToAccess,
        );
        push_mem_op(&mut core, 1, false, 0x100, 8, None, MemPhase::Done);
        push_mem_op(
            &mut core,
            2,
            false,
            0x104,
            4,
            None,
            MemPhase::WaitValue { ready_at: 20 },
        );
        push_mem_op(&mut core, 3, false, 0x100, 8, None, MemPhase::ReadyToAccess);
        core.mem_ready_to_access(10, &mut mem, 0);
        assert_eq!(core.stats.mem_order_violations, 1);
        // Squashed from the *oldest* violating load (seq 1), which also
        // removes every younger one; the store itself survives, done.
        assert_eq!(core.rob.len(), 1);
        assert_eq!(core.rob.seq(0), 0);
        assert_eq!(core.rob.stage(0), Stage::Done);
        assert_eq!(core.fetch_pc, 0x1000 + 4);
        assert_eq!(core.stats.squashed_instructions, 3);
        core.assert_lsq_matches();
        core.debug_check_lsq();
    }

    #[test]
    fn non_overlapping_issued_load_is_no_violation() {
        let (mut core, mut mem) = test_core();
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            8,
            Some(9),
            MemPhase::ReadyToAccess,
        );
        // Issued younger load on the same line, disjoint bytes.
        push_mem_op(&mut core, 1, false, 0x108, 8, None, MemPhase::Done);
        core.mem_ready_to_access(10, &mut mem, 0);
        assert_eq!(core.stats.mem_order_violations, 0);
        assert_eq!(core.rob.len(), 2);
        core.assert_lsq_matches();
    }

    #[test]
    fn snapshot_restore_rebuilds_parked_worklists() {
        use mi6_snapshot::{SnapReader, SnapWriter};
        let (mut core, mut mem) = test_core();
        // A data-ready store, a load that misses the (cold) L1 and parks
        // in WaitMem, and a load still in address generation.
        push_mem_op(
            &mut core,
            0,
            true,
            0x100,
            8,
            Some(1),
            MemPhase::ReadyToAccess,
        );
        push_mem_op(&mut core, 1, false, 0x400, 8, None, MemPhase::ReadyToAccess);
        core.mem_ready_to_access(10, &mut mem, 1);
        assert_eq!(load_phase(&core, 1), MemPhase::WaitMem);
        push_mem_op(
            &mut core,
            2,
            false,
            0x800,
            8,
            None,
            MemPhase::AddrGen { done_at: 20 },
        );
        core.assert_lsq_matches();
        let memops_before: Vec<u64> = core.lsq.memops().to_vec();
        assert!(
            !memops_before.contains(&1),
            "the missing load must be parked off the worklist"
        );
        assert!(memops_before.contains(&2));
        // The LSQ index (and its parked/awake split) is derived state:
        // never serialized, rebuilt on restore from the SoA ROB plus the
        // pending-completion context.
        let mut w = SnapWriter::new();
        core.save_state(&mut w);
        let bytes = w.finish();
        let (mut fresh, _mem2) = test_core();
        let mut r = SnapReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        fresh.assert_lsq_matches();
        assert_eq!(fresh.lsq.memops(), &memops_before[..]);
        assert_eq!(fresh.lsq.execs(), core.lsq.execs());
        // And the SoA arrays themselves round-tripped in lock step.
        assert_eq!(fresh.rob.len(), core.rob.len());
        for i in 0..core.rob.len() {
            assert_eq!(
                format!("{:?}", fresh.rob.entry(i)),
                format!("{:?}", core.rob.entry(i)),
                "ROB index {i}"
            );
        }
    }
}
