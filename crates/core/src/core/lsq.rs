//! The load-store unit: memory-op address generation, translation and
//! region checks, store-queue forwarding, memory-order violation
//! detection, and the store buffer that drains committed stores to the
//! L1D.

use super::*;

impl Core {
    // ----------------------------------------------------- memory pipeline

    /// Reads the architectural value for a load, overlaying older
    /// uncommitted stores from the store queue.
    pub(super) fn load_value(&self, mem: &MemSystem, seq: u64, paddr: u64, bytes: u64) -> u64 {
        let mut buf = [0u8; 8];
        for (i, b) in buf.iter_mut().enumerate().take(bytes as usize) {
            *b = mem.phys.read_u8(PhysAddr::new(paddr + i as u64));
        }
        for e in &self.rob {
            if e.seq >= seq {
                break;
            }
            let Some(m) = &e.mem else { continue };
            if !m.is_store {
                continue;
            }
            let (Some(sp), Some(data)) = (m.paddr, m.store_data) else {
                continue;
            };
            for i in 0..bytes {
                let a = paddr + i;
                if a >= sp && a < sp + m.bytes {
                    buf[i as usize] = (data >> (8 * (a - sp))) as u8;
                }
            }
        }
        u64::from_le_bytes(buf)
    }

    /// Whether an older store blocks this load from producing a value yet
    /// (overlapping store with unknown data), or may alias (unknown
    /// address — RiscyOO speculates past those; violations are caught when
    /// the store resolves).
    pub(super) fn older_store_blocks(&self, seq: u64, paddr: u64, bytes: u64) -> bool {
        for e in &self.rob {
            if e.seq >= seq {
                break;
            }
            let Some(m) = &e.mem else { continue };
            if !m.is_store {
                continue;
            }
            if let Some(sp) = m.paddr {
                let overlap = paddr < sp + m.bytes && sp < paddr + bytes;
                if overlap && m.store_data.is_none() {
                    return true;
                }
            }
        }
        false
    }

    pub(super) fn advance_mem_ops(&mut self, now: u64, mem: &mut MemSystem) {
        // Collect transitions first to keep borrows simple.
        let seqs: Vec<u64> = self
            .rob
            .iter()
            .filter(|e| e.stage == Stage::MemOp)
            .map(|e| e.seq)
            .collect();
        for seq in seqs {
            let Some(idx) = self.rob_index(seq) else {
                continue;
            };
            let (pc, inst) = (self.rob[idx].pc, self.rob[idx].inst);
            let m = self.rob[idx].mem.clone().expect("mem state");
            match m.phase {
                MemPhase::AddrGen { done_at } => {
                    if now >= done_at {
                        if !m.vaddr.is_multiple_of(m.bytes) {
                            let e = if m.is_store {
                                Exception::StoreMisaligned
                            } else {
                                Exception::LoadMisaligned
                            };
                            self.rob[idx].exception = Some((e, m.vaddr));
                            self.rob[idx].stage = Stage::Done;
                            self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
                            continue;
                        }
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Translate;
                    }
                }
                MemPhase::Translate => {
                    let kind = if m.is_store {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    };
                    let (paddr, region_ok, extra) = if self.bare_translation() {
                        (m.vaddr, self.region_allowed(mem, m.vaddr), 0)
                    } else {
                        match self.try_translate(m.vaddr, kind, WalkClient::Rob(seq)) {
                            Err(e) => {
                                self.rob[idx].exception = Some((e, m.vaddr));
                                self.rob[idx].stage = Stage::Done;
                                continue;
                            }
                            Ok(TranslateOutcome::Walking) => {
                                self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::WaitWalk;
                                continue;
                            }
                            Ok(TranslateOutcome::Busy) => continue, // retry in Translate
                            Ok(TranslateOutcome::Hit {
                                paddr,
                                region_ok,
                                extra,
                            }) => (paddr, region_ok, extra),
                        }
                    };
                    if !region_ok || paddr + m.bytes > mem.phys.size() {
                        // Suppressed: no memory traffic; fault if it
                        // reaches commit (Section 5.3).
                        if !region_ok {
                            self.stats.region_suppressed += 1;
                            self.rob[idx].exception = Some((Exception::DramRegionFault, m.vaddr));
                        } else {
                            let e = if m.is_store {
                                Exception::StoreAccessFault
                            } else {
                                Exception::LoadAccessFault
                            };
                            self.rob[idx].exception = Some((e, m.vaddr));
                        }
                        self.rob[idx].stage = Stage::Done;
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
                        continue;
                    }
                    {
                        let ms = self.rob[idx].mem.as_mut().expect("mem");
                        ms.paddr = Some(paddr);
                        ms.phase = if extra > 0 {
                            MemPhase::TlbLatency {
                                ready_at: now + extra,
                            }
                        } else {
                            MemPhase::ReadyToAccess
                        };
                    }
                    if self.rob[idx].mem.as_ref().expect("mem").phase == MemPhase::ReadyToAccess {
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::TlbLatency { ready_at } => {
                    if now >= ready_at {
                        self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::ReadyToAccess;
                        self.mem_ready_to_access(now, mem, seq);
                    }
                }
                MemPhase::WaitWalk => {
                    if let Some(result) = self.take_walk_result(WalkClient::Rob(seq)) {
                        match result {
                            WalkResult::Ok => {
                                self.rob[idx].mem.as_mut().expect("mem").phase =
                                    MemPhase::Translate;
                            }
                            WalkResult::Fault(e) => {
                                self.rob[idx].exception = Some((e, m.vaddr));
                                self.rob[idx].stage = Stage::Done;
                            }
                        }
                    }
                }
                MemPhase::ReadyToAccess => {
                    self.mem_ready_to_access(now, mem, seq);
                }
                MemPhase::WaitMem => {
                    let token = TOKEN_LOAD | (seq & TOKEN_MASK);
                    if let Some(&ready_at) = self.data_completions.get(&token) {
                        self.data_completions.remove(&token);
                        let ms = self.rob[idx].mem.as_mut().expect("mem");
                        ms.phase = MemPhase::WaitValue { ready_at };
                    }
                }
                MemPhase::WaitValue { ready_at } => {
                    if now >= ready_at {
                        let paddr = m.paddr.expect("translated");
                        let raw = self.load_value(mem, seq, paddr, m.bytes);
                        let entry = &mut self.rob[idx];
                        entry.result = exec::extend_load(&inst, raw);
                        entry.stage = Stage::Done;
                        entry.mem.as_mut().expect("mem").phase = MemPhase::Done;
                        let _ = pc;
                    }
                }
                MemPhase::Done => {}
            }
        }
    }

    /// A memory op has its physical address: stores record it (and check
    /// for memory-order violations); loads forward or issue to the L1D.
    pub(super) fn mem_ready_to_access(&mut self, now: u64, mem: &mut MemSystem, seq: u64) {
        let Some(idx) = self.rob_index(seq) else {
            return;
        };
        let m = self.rob[idx].mem.clone().expect("mem state");
        let paddr = m.paddr.expect("translated");
        if m.is_store {
            // Store: address + data recorded; done (data written at
            // commit). First check younger loads that already executed to
            // an overlapping address — memory-order violation.
            let mut violating: Option<(u64, u64)> = None; // (seq, pc)
            for e in self.rob.iter() {
                if e.seq <= seq {
                    continue;
                }
                let Some(lm) = &e.mem else { continue };
                if lm.is_store {
                    continue;
                }
                let issued = matches!(
                    lm.phase,
                    MemPhase::WaitMem | MemPhase::WaitValue { .. } | MemPhase::Done
                );
                if !issued {
                    continue;
                }
                let Some(lp) = lm.paddr else { continue };
                let overlap = lp < paddr + m.bytes && paddr < lp + lm.bytes;
                if overlap {
                    violating = Some((e.seq, e.pc));
                    break;
                }
            }
            self.rob[idx].stage = Stage::Done;
            self.rob[idx].mem.as_mut().expect("mem").phase = MemPhase::Done;
            if let Some((lseq, lpc)) = violating {
                self.stats.mem_order_violations += 1;
                self.squash_from(now, lseq, lpc);
            }
            return;
        }
        // Load.
        if self.older_store_blocks(seq, paddr, m.bytes) {
            return; // retry next cycle
        }
        // Full-cover forwarding from the youngest older store?
        let mut forwarded = false;
        for e in self.rob.iter().rev() {
            if e.seq >= seq {
                continue;
            }
            let Some(sm) = &e.mem else { continue };
            if !sm.is_store {
                continue;
            }
            let (Some(sp), Some(_)) = (sm.paddr, sm.store_data) else {
                continue;
            };
            let overlap = paddr < sp + sm.bytes && sp < paddr + m.bytes;
            if overlap {
                let covers = sp <= paddr && paddr + m.bytes <= sp + sm.bytes;
                if covers {
                    forwarded = true;
                }
                break; // youngest overlapping store decides
            }
        }
        if forwarded {
            let ms = self.rob[idx].mem.as_mut().expect("mem");
            ms.phase = MemPhase::WaitValue { ready_at: now + 1 };
            return;
        }
        let token = TOKEN_LOAD | (seq & TOKEN_MASK);
        match mem.access(now, self.id, Port::Data, token, PhysAddr::new(paddr), false) {
            L1Access::Hit { ready_at } => {
                let ms = self.rob[idx].mem.as_mut().expect("mem");
                ms.phase = MemPhase::WaitValue { ready_at };
            }
            L1Access::Miss => {
                let ms = self.rob[idx].mem.as_mut().expect("mem");
                ms.phase = MemPhase::WaitMem;
            }
            L1Access::Blocked => {} // retry next cycle
        }
    }

    // -------------------------------------------------------- store buffer

    pub(super) fn tick_store_buffer(&mut self, now: u64, mem: &mut MemSystem) {
        // Issue the oldest unissued entry.
        if let Some(entry) = self.sb.iter_mut().find(|s| !s.issued) {
            let token = entry.token;
            let line = entry.line;
            match mem.access(now, self.id, Port::Data, token, PhysAddr::new(line), true) {
                L1Access::Hit { ready_at } => {
                    entry.issued = true;
                    entry.done = true;
                    let _ = ready_at;
                }
                L1Access::Miss => {
                    entry.issued = true;
                }
                L1Access::Blocked => {}
            }
        }
        // Retire completed entries.
        let completions = &mut self.data_completions;
        for entry in self.sb.iter_mut() {
            if entry.issued && !entry.done && completions.remove(&entry.token).is_some() {
                entry.done = true;
            }
        }
        self.sb.retain(|s| !s.done);
    }
}
