//! The front end: fetch-PC translation, I-cache access, decode, and
//! branch prediction (BTB, tournament predictor, RAS), delivering up to
//! `fetch_width` instructions per cycle into the fetch queue.

use super::*;

impl Core {
    // -------------------------------------------------------------- fetch

    pub(super) fn decode_at(&mut self, mem: &MemSystem, paddr: u64) -> Result<Inst, Exception> {
        if let Some(inst) = self.decode_cache.get(paddr) {
            return Ok(inst);
        }
        let word = mem.phys.read_u32(PhysAddr::new(paddr));
        match mi6_isa::decode(word) {
            Ok(inst) => {
                self.decode_cache.insert(paddr, inst);
                Ok(inst)
            }
            Err(_) => Err(Exception::IllegalInst),
        }
    }

    pub(super) fn push_poison(&mut self, exception: Exception, tval: u64) {
        self.fetch_queue.push_back(FetchedInst {
            pc: self.fetch_pc,
            inst: Inst::NOP,
            pred: None,
            poison: Some((exception, tval)),
            // `csrs.cycle` is rewritten from `now` at the top of every
            // tick, so it is the current cycle on every fetch path.
            fetched_at: self.csrs.cycle,
        });
        self.fetch_state = FetchState::Stalled;
    }

    pub(super) fn tick_fetch(&mut self, now: u64, mem: &mut MemSystem) {
        if now < self.fetch_stall_until {
            return;
        }
        if self.fetch_queue.len() + self.cfg.fetch_width > self.cfg.fetch_queue {
            return;
        }
        match self.fetch_state.clone() {
            FetchState::Stalled => {}
            FetchState::Idle => {
                // Translate the fetch PC.
                if !self.fetch_pc.is_multiple_of(4) {
                    self.push_poison(Exception::InstMisaligned, self.fetch_pc);
                    return;
                }
                let (paddr, region_ok, extra) = if self.bare_translation() {
                    let pa = self.fetch_pc;
                    (pa, self.region_allowed(mem, pa), 0)
                } else {
                    match self.try_translate(self.fetch_pc, AccessKind::Fetch, WalkClient::Fetch) {
                        Err(e) => {
                            self.push_poison(e, self.fetch_pc);
                            return;
                        }
                        Ok(TranslateOutcome::Walking) => {
                            self.fetch_state = FetchState::WaitWalk;
                            return;
                        }
                        Ok(TranslateOutcome::Busy) => return, // retry next cycle
                        Ok(TranslateOutcome::Hit {
                            paddr,
                            region_ok,
                            extra,
                        }) => (paddr, region_ok, extra),
                    }
                };
                // Machine-mode fetch window (Section 6.2).
                if self.sec.machine_mode_guard
                    && self.priv_level == PrivLevel::Machine
                    && !(self.csrs.mfetchbase..self.csrs.mfetchbound).contains(&paddr)
                {
                    self.push_poison(Exception::InstAccessFault, self.fetch_pc);
                    return;
                }
                if !region_ok {
                    // Suppressed speculative fetch; faults only if it
                    // becomes non-speculative.
                    self.stats.region_suppressed += 1;
                    self.push_poison(Exception::DramRegionFault, self.fetch_pc);
                    return;
                }
                if paddr + 4 > mem.phys.size() {
                    self.push_poison(Exception::InstAccessFault, self.fetch_pc);
                    return;
                }
                if extra > 0 {
                    self.fetch_state = FetchState::TlbDelay {
                        ready_at: now + extra,
                        paddr,
                        region_ok,
                    };
                    return;
                }
                self.issue_icache(now, mem, paddr);
            }
            FetchState::TlbDelay {
                ready_at, paddr, ..
            } => {
                if now >= ready_at {
                    self.issue_icache(now, mem, paddr);
                }
            }
            FetchState::WaitWalk => {
                if let Some(result) = self.take_walk_result(WalkClient::Fetch) {
                    match result {
                        WalkResult::Ok => self.fetch_state = FetchState::Idle,
                        WalkResult::Fault(e) => self.push_poison(e, self.fetch_pc),
                    }
                }
            }
            FetchState::WaitICache { token, paddr } => {
                if let Some(&ready_at) = self.ifetch_completions.get(&token) {
                    self.ifetch_completions.remove(&token);
                    self.fetch_state = FetchState::Deliver { ready_at, paddr };
                }
            }
            FetchState::Deliver { ready_at, paddr } => {
                if now >= ready_at {
                    self.deliver_fetch_group(mem, paddr);
                }
            }
        }
    }

    pub(super) fn issue_icache(&mut self, now: u64, mem: &mut MemSystem, paddr: u64) {
        let token = TOKEN_FETCH | (self.next_fetch_token & TOKEN_MASK);
        self.next_fetch_token += 1;
        match mem.access(
            now,
            self.id,
            Port::IFetch,
            token,
            PhysAddr::new(paddr),
            false,
        ) {
            L1Access::Hit { ready_at } => {
                self.fetch_state = FetchState::Deliver { ready_at, paddr };
            }
            L1Access::Miss => {
                self.fetch_state = FetchState::WaitICache { token, paddr };
            }
            L1Access::Blocked => {
                self.fetch_state = FetchState::Idle; // retry next cycle
            }
        }
    }

    /// Decodes and predicts up to `fetch_width` instructions from the
    /// fetched line, pushing them into the fetch queue.
    pub(super) fn deliver_fetch_group(&mut self, mem: &MemSystem, paddr: u64) {
        let mut pc = self.fetch_pc;
        let mut pa = paddr;
        self.fetch_state = FetchState::Idle;
        for slot in 0..self.cfg.fetch_width {
            // The group ends at a line boundary.
            if slot > 0 && pa & 63 == 0 {
                break;
            }
            let inst = match self.decode_at(mem, pa) {
                Ok(i) => i,
                Err(e) => {
                    self.fetch_pc = pc;
                    self.push_poison(e, pc);
                    return;
                }
            };
            let mut pred = None;
            let mut next_pc = pc.wrapping_add(4);
            let mut redirect = false;
            match inst {
                Inst::Branch { off, .. } => {
                    let p = self.tournament.predict(pc);
                    self.tournament.speculate(p.taken);
                    let target = pc.wrapping_add(off as i64 as u64);
                    if p.taken {
                        next_pc = target;
                        redirect = true;
                    }
                    pred = Some(BranchState {
                        pred_taken: p.taken,
                        pred_target: target,
                        tournament: Some(p),
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                Inst::Jal { rd, off } => {
                    let target = pc.wrapping_add(off as i64 as u64);
                    if rd == Reg::RA {
                        self.ras.push(pc.wrapping_add(4));
                    }
                    next_pc = target;
                    redirect = true;
                    pred = Some(BranchState {
                        pred_taken: true,
                        pred_target: target,
                        tournament: None,
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                Inst::Jalr { rd, rs1, .. } => {
                    let predicted = if rd == Reg::ZERO && rs1 == Reg::RA {
                        self.ras.pop()
                    } else {
                        if rd == Reg::RA {
                            self.ras.push(pc.wrapping_add(4));
                        }
                        self.btb.lookup(pc)
                    };
                    let target = predicted.unwrap_or(pc.wrapping_add(4));
                    next_pc = target;
                    redirect = true;
                    pred = Some(BranchState {
                        pred_taken: true,
                        pred_target: target,
                        tournament: None,
                        actual_taken: None,
                        actual_target: 0,
                    });
                }
                _ => {}
            }
            self.fetch_queue.push_back(FetchedInst {
                pc,
                inst,
                pred,
                poison: None,
                fetched_at: self.csrs.cycle,
            });
            pc = next_pc;
            if redirect {
                self.fetch_pc = pc;
                return;
            }
            pa += 4;
        }
        self.fetch_pc = pc;
    }
}
