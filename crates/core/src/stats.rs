//! Per-core performance counters.
//!
//! These back every figure in the paper's evaluation: committed
//! instructions and cycles (runtime overheads, Figures 5/8/10/11/12/13),
//! branch mispredictions per kilo-instruction (Figure 7), and the flush
//! stall accounting (Figure 6).

/// Counters exported by one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles this core has ticked.
    pub cycles: u64,
    /// Instructions committed.
    pub committed_instructions: u64,
    /// Conditional branches committed.
    pub committed_branches: u64,
    /// Conditional-branch mispredictions (detected at execute).
    pub branch_mispredicts: u64,
    /// Indirect-jump / return mispredictions.
    pub jump_mispredicts: u64,
    /// Traps taken (exceptions + interrupts).
    pub traps: u64,
    /// Trap returns executed (`sret`/`mret`).
    pub trap_returns: u64,
    /// `purge` instructions executed.
    pub purges: u64,
    /// Cycles stalled waiting for a microarchitectural flush to finish
    /// (the purge/flush stall of Figure 6).
    pub flush_stall_cycles: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Memory-order violations (store found a younger load already
    /// executed to an overlapping address; pipeline squashed).
    pub mem_order_violations: u64,
    /// Page-table walks completed.
    pub page_walks: u64,
    /// DRAM-region faults raised (non-speculative violations).
    pub region_faults: u64,
    /// Accesses suppressed by the region check while speculative.
    pub region_suppressed: u64,
    /// Cycles in which rename was blocked by the non-speculative gate
    /// (memory instruction waiting for an empty ROB).
    pub nonspec_stall_cycles: u64,
    /// Instructions squashed (mispredicts, violations, traps).
    pub squashed_instructions: u64,
}

impl CoreStats {
    /// Branch mispredictions per thousand committed instructions
    /// (the Figure 7 metric).
    pub fn mispredicts_per_kinst(&self) -> f64 {
        if self.committed_instructions == 0 {
            return 0.0;
        }
        (self.branch_mispredicts + self.jump_mispredicts) as f64 * 1000.0
            / self.committed_instructions as f64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed_instructions as f64 / self.cycles as f64
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for CoreStats {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.cycles,
            self.committed_instructions,
            self.committed_branches,
            self.branch_mispredicts,
            self.jump_mispredicts,
            self.traps,
            self.trap_returns,
            self.purges,
            self.flush_stall_cycles,
            self.loads,
            self.stores,
            self.mem_order_violations,
            self.page_walks,
            self.region_faults,
            self.region_suppressed,
            self.nonspec_stall_cycles,
            self.squashed_instructions,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CoreStats {
            cycles: r.u64()?,
            committed_instructions: r.u64()?,
            committed_branches: r.u64()?,
            branch_mispredicts: r.u64()?,
            jump_mispredicts: r.u64()?,
            traps: r.u64()?,
            trap_returns: r.u64()?,
            purges: r.u64()?,
            flush_stall_cycles: r.u64()?,
            loads: r.u64()?,
            stores: r.u64()?,
            mem_order_violations: r.u64()?,
            page_walks: r.u64()?,
            region_faults: r.u64()?,
            region_suppressed: r.u64()?,
            nonspec_stall_cycles: r.u64()?,
            squashed_instructions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CoreStats {
            cycles: 1000,
            committed_instructions: 500,
            branch_mispredicts: 9,
            jump_mispredicts: 1,
            ..CoreStats::default()
        };
        assert!((s.mispredicts_per_kinst() - 20.0).abs() < 1e-9);
        assert!((s.ipc() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_division_safe() {
        let s = CoreStats::default();
        assert_eq!(s.mispredicts_per_kinst(), 0.0);
        assert_eq!(s.ipc(), 0.0);
    }
}
