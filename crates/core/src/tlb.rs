//! TLBs and the translation cache.
//!
//! Figure 4: fully-associative 32-entry L1 TLBs (I and D), a private
//! 1024-entry 4-way L2 TLB, and a translation cache with 24 fully
//! associative entries per intermediate translation step.
//!
//! MI6 relevance:
//! - TLB entries cache the DRAM-region permission established at walk time
//!   ([`TlbEntry::region_ok`]); because no 4 KiB page straddles a region,
//!   the cached bit stays valid until the monitor changes the allocation
//!   and shoots the TLB down (paper Section 5.3).
//! - All of these structures are per-core and scrubbed by `purge`
//!   ([`Tlb::flush_all`], [`TranslationCache::flush`]); the L2 TLB is
//!   discarded one set per cycle, which the purge cost model charges
//!   (Section 7.1).

use mi6_isa::{PageTableEntry, PhysAddr, VirtAddr, PAGE_SHIFT};

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (of the 4 KiB page being looked up, with low
    /// bits ignored for superpages).
    pub vpn: u64,
    /// Leaf level (0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB).
    pub level: usize,
    /// The leaf PTE (permissions + physical page number).
    pub pte: PageTableEntry,
    /// Cached result of the DRAM-region check performed during the walk
    /// (paper Section 5.3 optimization).
    pub region_ok: bool,
}

impl TlbEntry {
    /// Whether this entry translates `vpn`.
    pub fn matches(&self, vpn: u64) -> bool {
        let span_pages = 1u64 << (9 * self.level);
        self.vpn == vpn & !(span_pages - 1)
    }

    /// The physical address for a virtual address this entry covers.
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        let span_bits = PAGE_SHIFT + 9 * self.level as u32;
        let base = (self.pte.ppn() << PAGE_SHIFT) & !((1u64 << span_bits) - 1);
        PhysAddr::new(base | (va.raw() & ((1u64 << span_bits) - 1)))
    }
}

/// A set-associative TLB with true-LRU replacement within each set.
///
/// With `sets == 1` it degenerates to the fully associative L1 TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    sets: Vec<Vec<(TlbEntry, u64)>>, // (entry, last-use stamp)
    ways: usize,
    use_clock: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total capacity in `sets` sets.
    pub fn new(entries: usize, sets: usize) -> Tlb {
        assert!(entries.is_multiple_of(sets));
        assert!(sets.is_power_of_two());
        Tlb {
            sets: vec![Vec::new(); sets],
            ways: entries / sets,
            use_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The paper's fully associative 32-entry L1 TLB.
    pub fn paper_l1() -> Tlb {
        Tlb::new(32, 1)
    }

    /// The paper's 1024-entry 4-way L2 TLB (256 sets).
    pub fn paper_l2() -> Tlb {
        Tlb::new(1024, 256)
    }

    fn set_of(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.sets.len() - 1)
    }

    /// Looks up a virtual page number; counts hit/miss and refreshes LRU.
    pub fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        self.use_clock += 1;
        let clock = self.use_clock;
        // Superpage entries for a vpn may live in a different set than the
        // 4 KiB-indexed one; index superpages by their own base vpn. For
        // simplicity (and because the OS here maps 4 KiB pages), check the
        // vpn's set and set 0 candidates for superpages.
        let set = self.set_of(vpn);
        for probe in [set, 0] {
            if let Some((entry, stamp)) = self.sets[probe].iter_mut().find(|(e, _)| e.matches(vpn))
            {
                *stamp = clock;
                let hit = *entry;
                self.hits += 1;
                return Some(hit);
            }
            if self.sets.len() == 1 {
                break;
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts an entry, evicting the LRU way of its set if full.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.use_clock += 1;
        let set = if entry.level > 0 && self.sets.len() > 1 {
            0
        } else {
            self.set_of(entry.vpn)
        };
        let set_vec = &mut self.sets[set];
        if let Some(slot) = set_vec.iter_mut().find(|(e, _)| e.vpn == entry.vpn) {
            *slot = (entry, self.use_clock);
            return;
        }
        if set_vec.len() == self.ways {
            let lru = set_vec
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("set not empty");
            set_vec.remove(lru);
        }
        set_vec.push((entry, self.use_clock));
    }

    /// Flushes everything (`sfence.vma`, purge, TLB shootdown).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of sets (purge charges one cycle per L2 set).
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Number of valid entries (test aid).
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// A translation cache: per intermediate walk level, maps the virtual
/// prefix to the physical page of the next-level table, letting the walker
/// skip upper levels.
#[derive(Clone, Debug)]
pub struct TranslationCache {
    /// `levels[i]` caches entries for walk level `i+1` (the intermediate
    /// steps; leaf level 0 results go to the TLBs instead).
    levels: Vec<Vec<((u64, u64), u64)>>, // ((prefix, table page), stamp)
    entries_per_level: usize,
    use_clock: u64,
}

impl TranslationCache {
    /// Creates a cache with `entries` per intermediate level.
    pub fn new(entries: usize) -> TranslationCache {
        TranslationCache {
            levels: vec![Vec::new(); mi6_isa::paging::LEVELS - 1],
            entries_per_level: entries,
            use_clock: 0,
        }
    }

    /// Looks up the table page for walk level `level` (1-based among
    /// intermediates: level 1 means "the table consulted with vpn(1)").
    /// `prefix` must be the vpn bits above that level.
    pub fn lookup(&mut self, level: usize, prefix: u64) -> Option<PhysAddr> {
        debug_assert!((1..mi6_isa::paging::LEVELS).contains(&level));
        self.use_clock += 1;
        let clock = self.use_clock;
        let lvl = &mut self.levels[level - 1];
        if let Some(((_, page), stamp)) = lvl.iter_mut().find(|((p, _), _)| *p == prefix) {
            *stamp = clock;
            return Some(PhysAddr::new(*page));
        }
        None
    }

    /// Records that the table consulted at `level` for `prefix` lives at
    /// `table_page`.
    pub fn insert(&mut self, level: usize, prefix: u64, table_page: PhysAddr) {
        debug_assert!((1..mi6_isa::paging::LEVELS).contains(&level));
        self.use_clock += 1;
        let clock = self.use_clock;
        let cap = self.entries_per_level;
        let lvl = &mut self.levels[level - 1];
        if let Some(slot) = lvl.iter_mut().find(|((p, _), _)| *p == prefix) {
            *slot = ((prefix, table_page.raw()), clock);
            return;
        }
        if lvl.len() == cap {
            let lru = lvl
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("level not empty");
            lvl.remove(lru);
        }
        lvl.push(((prefix, table_page.raw()), clock));
    }

    /// Flushes everything.
    pub fn flush(&mut self) {
        for lvl in &mut self.levels {
            lvl.clear();
        }
    }

    /// Total valid entries (test aid).
    pub fn occupancy(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for TlbEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.vpn);
        w.usize(self.level);
        self.pte.save(w);
        w.bool(self.region_ok);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(TlbEntry {
            vpn: r.u64()?,
            level: r.usize()?,
            pte: PageTableEntry::load(r)?,
            region_ok: r.bool()?,
        })
    }
}

impl SnapState for Tlb {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.ways);
        w.u64(self.use_clock);
        w.u64(self.hits);
        w.u64(self.misses);
        self.sets.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let ways = r.usize()?;
        let use_clock = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let sets: Vec<Vec<(TlbEntry, u64)>> = SnapState::load(r)?;
        if !sets.len().is_power_of_two() || sets.iter().any(|s| s.len() > ways) {
            return Err(SnapError::BadValue {
                what: "TLB geometry".into(),
            });
        }
        Ok(Tlb {
            sets,
            ways,
            use_clock,
            hits,
            misses,
        })
    }
}

impl SnapState for TranslationCache {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.entries_per_level);
        w.u64(self.use_clock);
        self.levels.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let entries_per_level = r.usize()?;
        let use_clock = r.u64()?;
        let levels: Vec<Vec<((u64, u64), u64)>> = SnapState::load(r)?;
        if levels.len() != mi6_isa::paging::LEVELS - 1
            || levels.iter().any(|l| l.len() > entries_per_level)
        {
            return Err(SnapError::BadValue {
                what: "translation cache geometry".into(),
            });
        }
        Ok(TranslationCache {
            levels,
            entries_per_level,
            use_clock,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(vpn: u64, ppn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            level: 0,
            pte: PageTableEntry::leaf(ppn, true, true, false, true),
            region_ok: true,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::paper_l1();
        tlb.insert(leaf(0x42, 0x99));
        let e = tlb.lookup(0x42).expect("hit");
        assert_eq!(e.pte.ppn(), 0x99);
        assert_eq!(tlb.hits, 1);
        assert_eq!(tlb.misses, 0);
    }

    #[test]
    fn miss_counts() {
        let mut tlb = Tlb::paper_l1();
        assert!(tlb.lookup(0x1).is_none());
        assert_eq!(tlb.misses, 1);
    }

    #[test]
    fn lru_eviction_fully_associative() {
        let mut tlb = Tlb::new(2, 1);
        tlb.insert(leaf(1, 1));
        tlb.insert(leaf(2, 2));
        // touch 1 so 2 becomes LRU
        assert!(tlb.lookup(1).is_some());
        tlb.insert(leaf(3, 3));
        assert!(tlb.lookup(1).is_some());
        assert!(tlb.lookup(2).is_none(), "LRU entry evicted");
        assert!(tlb.lookup(3).is_some());
    }

    #[test]
    fn set_associative_indexing() {
        let mut tlb = Tlb::paper_l2();
        assert_eq!(tlb.set_count(), 256);
        // vpns 0 and 256 share a set; fill 4 ways + 1.
        for i in 0..5u64 {
            tlb.insert(leaf(i * 256, i));
        }
        // The first insert (vpn 0) was LRU and is gone.
        assert!(tlb.lookup(0).is_none());
        assert!(tlb.lookup(4 * 256).is_some());
    }

    #[test]
    fn superpage_translation() {
        let mut tlb = Tlb::paper_l1();
        // 2 MiB page at vpn 0x200 (level 1), ppn 0x400.
        tlb.insert(TlbEntry {
            vpn: 0x200,
            level: 1,
            pte: PageTableEntry::leaf(0x400, true, true, false, true),
            region_ok: true,
        });
        let e = tlb.lookup(0x2ff).expect("covered by superpage");
        let pa = e.translate(VirtAddr::new((0x2ff << 12) | 0x34));
        assert_eq!(pa.raw(), (0x400u64 << 12) | (0xff << 12) | 0x34);
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::paper_l1();
        tlb.insert(leaf(1, 1));
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn region_bit_carried() {
        let mut tlb = Tlb::paper_l1();
        let mut e = leaf(7, 7);
        e.region_ok = false;
        tlb.insert(e);
        assert!(!tlb.lookup(7).unwrap().region_ok);
    }

    #[test]
    fn translation_cache_round_trip() {
        let mut tc = TranslationCache::new(24);
        assert!(tc.lookup(1, 0x5).is_none());
        tc.insert(1, 0x5, PhysAddr::new(0x8000));
        assert_eq!(tc.lookup(1, 0x5), Some(PhysAddr::new(0x8000)));
        tc.flush();
        assert!(tc.lookup(1, 0x5).is_none());
    }

    #[test]
    fn translation_cache_lru() {
        let mut tc = TranslationCache::new(2);
        tc.insert(2, 1, PhysAddr::new(0x1000));
        tc.insert(2, 2, PhysAddr::new(0x2000));
        assert!(tc.lookup(2, 1).is_some()); // refresh 1
        tc.insert(2, 3, PhysAddr::new(0x3000));
        assert!(tc.lookup(2, 2).is_none());
        assert!(tc.lookup(2, 1).is_some());
        assert!(tc.lookup(2, 3).is_some());
    }
}
