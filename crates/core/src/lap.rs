//! In-tree lap profiler: wall-time attribution per `Core::tick` sub-stage.
//!
//! Compiled in by the non-default `lap-profile` feature. When enabled,
//! [`crate::Core::tick`] reads a monotonic timestamp after every
//! sub-stage and accumulates the deltas into [`crate::Core::lap`], so
//! `mi6-bench --profile` can answer "which pipeline stage is the host
//! hot loop actually spending its time in?" without an external
//! profiler.
//!
//! The timers cost roughly ten `Instant::now()` reads per core-cycle,
//! which inflates wall time substantially — profile numbers are for
//! *relative attribution within one build*, never for cross-commit
//! comparison. Perf A/B runs must use the default feature set (the
//! [`LAP_COMPILED`] constant lets tools refuse `--profile` on a build
//! without the timers instead of silently reporting zeros).
//!
//! The accumulator is runtime-only host state: it is never serialized
//! into snapshots and has no effect on simulated timing.

/// Stage labels, indexed by the [`slot`] constants. `collect` is the
/// tick preamble (timer CSRs + completion collection), `purge` the
/// whole-pipeline purge sequencer; the rest match the sub-tick methods.
pub const LAP_STAGES: [&str; 10] = [
    "collect",
    "purge",
    "commit",
    "writeback",
    "mem_ops",
    "walker",
    "issue",
    "rename",
    "fetch",
    "store_buffer",
];

/// Index of each stage in [`LapProfile::nanos`].
pub mod slot {
    pub const COLLECT: usize = 0;
    pub const PURGE: usize = 1;
    pub const COMMIT: usize = 2;
    pub const WRITEBACK: usize = 3;
    pub const MEM_OPS: usize = 4;
    pub const WALKER: usize = 5;
    pub const ISSUE: usize = 6;
    pub const RENAME: usize = 7;
    pub const FETCH: usize = 8;
    pub const STORE_BUFFER: usize = 9;
}

/// Whether this build carries the lap timers (`--features lap-profile`).
/// Without them every [`LapProfile`] stays zero.
pub const LAP_COMPILED: bool = cfg!(feature = "lap-profile");

/// Accumulated host nanoseconds per pipeline sub-stage of one core.
#[derive(Clone, Copy, Debug, Default)]
pub struct LapProfile {
    /// Nanoseconds per stage, indexed by [`slot`] / labelled by
    /// [`LAP_STAGES`].
    pub nanos: [u64; LAP_STAGES.len()],
}

impl LapProfile {
    /// Total attributed nanoseconds across all stages.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Adds another core's laps into this one (multi-core aggregation).
    pub fn merge(&mut self, other: &LapProfile) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
    }
}
