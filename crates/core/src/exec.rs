//! Functional execution semantics for computational instructions.
//!
//! Pure functions: the timing pipeline decides *when* these run, this
//! module decides *what* they produce. Division semantics follow RISC-V
//! (x/0 = all ones, signed overflow wraps); floating point operates on
//! f64 bit patterns held in integer registers.

use mi6_isa::Inst;

/// Computes the result of a register-writing computational instruction.
///
/// `a` and `b` are the values of the first and second source registers
/// (zero where the instruction has fewer sources); `pc` is the
/// instruction's address (used by `jal`/`jalr` link results).
///
/// # Panics
///
/// Panics if called on a non-computational instruction (loads, stores,
/// system instructions) — the pipeline routes those elsewhere.
pub fn eval(inst: &Inst, a: u64, b: u64, pc: u64) -> u64 {
    match *inst {
        Inst::Add { .. } => a.wrapping_add(b),
        Inst::Sub { .. } => a.wrapping_sub(b),
        Inst::And { .. } => a & b,
        Inst::Or { .. } => a | b,
        Inst::Xor { .. } => a ^ b,
        Inst::Sll { .. } => a << (b & 63),
        Inst::Srl { .. } => a >> (b & 63),
        Inst::Sra { .. } => ((a as i64) >> (b & 63)) as u64,
        Inst::Slt { .. } => ((a as i64) < (b as i64)) as u64,
        Inst::Sltu { .. } => (a < b) as u64,
        Inst::Mul { .. } => a.wrapping_mul(b),
        Inst::Mulh { .. } => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        Inst::Div { .. } => {
            if b == 0 {
                u64::MAX
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                a
            } else {
                ((a as i64) / (b as i64)) as u64
            }
        }
        Inst::Divu { .. } => a.checked_div(b).unwrap_or(u64::MAX),
        Inst::Rem { .. } => {
            if b == 0 {
                a
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                0
            } else {
                ((a as i64) % (b as i64)) as u64
            }
        }
        Inst::Remu { .. } => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        Inst::Fadd { .. } => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        Inst::Fmul { .. } => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        Inst::Fdiv { .. } => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        Inst::Addi { imm, .. } => a.wrapping_add(imm as i64 as u64),
        Inst::Andi { imm, .. } => a & (imm as i64 as u64),
        Inst::Ori { imm, .. } => a | (imm as i64 as u64),
        Inst::Xori { imm, .. } => a ^ (imm as i64 as u64),
        Inst::Slti { imm, .. } => ((a as i64) < imm as i64) as u64,
        Inst::Sltiu { imm, .. } => (a < imm as i64 as u64) as u64,
        Inst::Slli { sh, .. } => a << sh,
        Inst::Srli { sh, .. } => a >> sh,
        Inst::Srai { sh, .. } => ((a as i64) >> sh) as u64,
        Inst::Movz { imm16, sh16, .. } => (imm16 as u64) << (sh16 * 16),
        Inst::Movk { imm16, sh16, .. } => {
            let sh = sh16 * 16;
            (a & !(0xffffu64 << sh)) | ((imm16 as u64) << sh)
        }
        Inst::Jal { .. } | Inst::Jalr { .. } => pc.wrapping_add(4),
        ref other => panic!("eval called on non-computational instruction `{other}`"),
    }
}

/// The effective byte address of a load or store.
///
/// # Panics
///
/// Panics on non-memory instructions.
pub fn effective_address(inst: &Inst, base: u64) -> u64 {
    match *inst {
        Inst::Load { off, .. } | Inst::Store { off, .. } => base.wrapping_add(off as i64 as u64),
        ref other => panic!("effective_address on `{other}`"),
    }
}

/// Applies width and signedness to a raw loaded value.
pub fn extend_load(inst: &Inst, raw: u64) -> u64 {
    match *inst {
        Inst::Load { width, signed, .. } => {
            let bits = width.bytes() * 8;
            if bits == 64 {
                raw
            } else {
                let masked = raw & ((1u64 << bits) - 1);
                if signed && (masked >> (bits - 1)) & 1 == 1 {
                    masked | !((1u64 << bits) - 1)
                } else {
                    masked
                }
            }
        }
        ref other => panic!("extend_load on `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_isa::{MemWidth, Reg};

    fn r3(f: impl Fn(Reg, Reg, Reg) -> Inst) -> Inst {
        f(Reg::A0, Reg::A1, Reg::A2)
    }

    #[test]
    fn alu_basics() {
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Add { rd, rs1, rs2 }), 5, 7, 0),
            12
        );
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Sub { rd, rs1, rs2 }), 5, 7, 0),
            u64::MAX - 1
        );
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Sra { rd, rs1, rs2 }),
                u64::MAX,
                4,
                0
            ),
            u64::MAX
        );
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Srl { rd, rs1, rs2 }),
                u64::MAX,
                63,
                0
            ),
            1
        );
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Slt { rd, rs1, rs2 }),
                u64::MAX,
                0,
                0
            ),
            1
        );
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Sltu { rd, rs1, rs2 }),
                u64::MAX,
                0,
                0
            ),
            0
        );
    }

    #[test]
    fn riscv_division_semantics() {
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Div { rd, rs1, rs2 }), 7, 0, 0),
            u64::MAX
        );
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Rem { rd, rs1, rs2 }), 7, 0, 0),
            7
        );
        // overflow: i64::MIN / -1 wraps to i64::MIN, remainder 0
        let min = i64::MIN as u64;
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Div { rd, rs1, rs2 }),
                min,
                u64::MAX,
                0
            ),
            min
        );
        assert_eq!(
            eval(
                &r3(|rd, rs1, rs2| Inst::Rem { rd, rs1, rs2 }),
                min,
                u64::MAX,
                0
            ),
            0
        );
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Divu { rd, rs1, rs2 }), 7, 2, 0),
            3
        );
    }

    #[test]
    fn mulh_signed_high_bits() {
        let a = i64::MAX as u64;
        let b = i64::MAX as u64;
        let expect = (((i64::MAX as i128) * (i64::MAX as i128)) >> 64) as u64;
        assert_eq!(
            eval(&r3(|rd, rs1, rs2| Inst::Mulh { rd, rs1, rs2 }), a, b, 0),
            expect
        );
    }

    #[test]
    fn fp_on_bit_patterns() {
        let a = 1.5f64.to_bits();
        let b = 2.0f64.to_bits();
        assert_eq!(
            f64::from_bits(eval(
                &r3(|rd, rs1, rs2| Inst::Fmul { rd, rs1, rs2 }),
                a,
                b,
                0
            )),
            3.0
        );
        assert_eq!(
            f64::from_bits(eval(
                &r3(|rd, rs1, rs2| Inst::Fdiv { rd, rs1, rs2 }),
                a,
                b,
                0
            )),
            0.75
        );
    }

    #[test]
    fn wide_moves() {
        let movz = Inst::Movz {
            rd: Reg::A0,
            imm16: 0xbeef,
            sh16: 2,
        };
        assert_eq!(eval(&movz, 0xffff_ffff, 0, 0), 0xbeef_0000_0000);
        let movk = Inst::Movk {
            rd: Reg::A0,
            imm16: 0x1234,
            sh16: 0,
        };
        assert_eq!(
            eval(&movk, 0xdead_0000_0000_beef, 0, 0),
            0xdead_0000_0000_1234
        );
    }

    #[test]
    fn link_result() {
        assert_eq!(
            eval(
                &Inst::Jal {
                    rd: Reg::RA,
                    off: 64
                },
                0,
                0,
                0x1000
            ),
            0x1004
        );
    }

    #[test]
    fn effective_address_wraps() {
        let ld = Inst::ld(Reg::A0, Reg::A1, -8);
        assert_eq!(effective_address(&ld, 0x1000), 0xff8);
    }

    #[test]
    fn load_extension() {
        let lb = Inst::Load {
            rd: Reg::A0,
            rs1: Reg::A1,
            off: 0,
            width: MemWidth::B,
            signed: true,
        };
        assert_eq!(extend_load(&lb, 0x80), 0xffff_ffff_ffff_ff80);
        let lbu = Inst::Load {
            rd: Reg::A0,
            rs1: Reg::A1,
            off: 0,
            width: MemWidth::B,
            signed: false,
        };
        assert_eq!(extend_load(&lbu, 0x180), 0x80);
        let lw = Inst::Load {
            rd: Reg::A0,
            rs1: Reg::A1,
            off: 0,
            width: MemWidth::W,
            signed: true,
        };
        assert_eq!(extend_load(&lw, 0x8000_0000), 0xffff_ffff_8000_0000);
        let ld = Inst::ld(Reg::A0, Reg::A1, 0);
        assert_eq!(extend_load(&ld, u64::MAX), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "non-computational")]
    fn eval_rejects_loads() {
        let _ = eval(&Inst::ld(Reg::A0, Reg::A1, 0), 0, 0, 0);
    }
}
