//! Branch prediction: BTB, Alpha-21264-style tournament predictor, and the
//! return address stack.
//!
//! These are exactly the deeply stateful structures Section 6.1 singles
//! out: they can transmit a previous program's control flow across a
//! context switch, so `purge` resets them to their initial state
//! ([`Btb::reset`], [`Tournament::reset`], [`Ras::reset`]). Figure 7 of the
//! paper measures the resulting cold-start mispredictions.

/// A 256-entry direct-mapped branch target buffer.
///
/// Tags are full PCs, so aliasing produces a miss rather than a wrong
/// entry (conservative and simple).
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    mask: u64,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots (must be a power of two).
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two());
        Btb {
            entries: vec![None; entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The predicted target for `pc`, if present.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = Some((pc, target));
    }

    /// Purge: reset to the initial (empty) state.
    pub fn reset(&mut self) {
        self.entries.fill(None);
    }

    /// Number of valid entries (test aid).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Alpha 21264-style tournament predictor (paper Figure 4).
///
/// - Local: 1024-entry history table (10-bit histories) indexing a
///   1024-entry table of 3-bit counters.
/// - Global: 4096 2-bit counters indexed by the global history ("the
///   largest table has 4096 entries, each of 2 bits" — Section 7.1).
/// - Choice: 4096 2-bit counters selecting local vs global.
#[derive(Clone, Debug)]
pub struct Tournament {
    local_hist: Vec<u16>,
    local_ctr: Vec<u8>,  // 3-bit
    global_ctr: Vec<u8>, // 2-bit
    choice: Vec<u8>,     // 2-bit
    /// Speculative global history (restored on squash).
    pub ghist: u16,
}

/// Size of the local history / counter tables.
const LOCAL_ENTRIES: usize = 1024;
/// Size of the global / choice tables.
const GLOBAL_ENTRIES: usize = 4096;

impl Tournament {
    /// Creates the predictor in its reset state (weakly not-taken).
    pub fn new() -> Tournament {
        Tournament {
            local_hist: vec![0; LOCAL_ENTRIES],
            local_ctr: vec![3; LOCAL_ENTRIES],
            global_ctr: vec![1; GLOBAL_ENTRIES],
            choice: vec![1; GLOBAL_ENTRIES],
            ghist: 0,
        }
    }

    fn local_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (LOCAL_ENTRIES - 1)
    }

    fn global_index(&self) -> usize {
        (self.ghist as usize) & (GLOBAL_ENTRIES - 1)
    }

    /// Predicts the direction of the conditional branch at `pc` and
    /// returns the state needed to update/recover later.
    pub fn predict(&self, pc: u64) -> Prediction {
        let li = self.local_index(pc);
        let lh = (self.local_hist[li] as usize) & (LOCAL_ENTRIES - 1);
        let local_taken = self.local_ctr[lh] >= 4;
        let gi = self.global_index();
        let global_taken = self.global_ctr[gi] >= 2;
        let use_global = self.choice[gi] >= 2;
        Prediction {
            taken: if use_global {
                global_taken
            } else {
                local_taken
            },
            local_taken,
            global_taken,
            ghist_at_predict: self.ghist,
        }
    }

    /// Speculatively shifts the predicted outcome into the global history
    /// (called at fetch; recovered via [`Tournament::restore_ghist`]).
    pub fn speculate(&mut self, taken: bool) {
        self.ghist = (self.ghist << 1) | taken as u16;
    }

    /// Restores the global history after a squash, re-applying the actual
    /// outcome of the mispredicted branch.
    pub fn restore_ghist(&mut self, ghist_at_predict: u16, actual_taken: bool) {
        self.ghist = (ghist_at_predict << 1) | actual_taken as u16;
    }

    /// Commits the actual outcome, training all tables.
    pub fn update(&mut self, pc: u64, pred: Prediction, taken: bool) {
        let li = self.local_index(pc);
        let lh = (self.local_hist[li] as usize) & (LOCAL_ENTRIES - 1);
        // Train choice toward whichever component was right (when they
        // disagree).
        let gi = (pred.ghist_at_predict as usize) & (GLOBAL_ENTRIES - 1);
        if pred.local_taken != pred.global_taken {
            if pred.global_taken == taken {
                self.choice[gi] = (self.choice[gi] + 1).min(3);
            } else {
                self.choice[gi] = self.choice[gi].saturating_sub(1);
            }
        }
        // Train counters.
        if taken {
            self.local_ctr[lh] = (self.local_ctr[lh] + 1).min(7);
            self.global_ctr[gi] = (self.global_ctr[gi] + 1).min(3);
        } else {
            self.local_ctr[lh] = self.local_ctr[lh].saturating_sub(1);
            self.global_ctr[gi] = self.global_ctr[gi].saturating_sub(1);
        }
        // Update local history.
        self.local_hist[li] = ((self.local_hist[li] << 1) | taken as u16) & 0x3ff;
    }

    /// Purge: reset every table to the initial state (Section 6.1 —
    /// "the branch predictor must reach a well-defined public state").
    pub fn reset(&mut self) {
        self.local_hist.fill(0);
        self.local_ctr.fill(3);
        self.global_ctr.fill(1);
        self.choice.fill(1);
        self.ghist = 0;
    }
}

impl Default for Tournament {
    fn default() -> Tournament {
        Tournament::new()
    }
}

/// The outcome of a tournament lookup, carried with the branch through the
/// pipeline for training and squash recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// Final predicted direction.
    pub taken: bool,
    /// The local component's vote.
    pub local_taken: bool,
    /// The global component's vote.
    pub global_taken: bool,
    /// Global history at prediction time (for recovery and training).
    pub ghist_at_predict: u16,
}

/// An 8-entry return address stack.
///
/// Overflow wraps (oldest entry lost); underflow predicts "no idea" and
/// the return mispredicts — matching simple hardware.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
}

impl Ras {
    /// Creates an empty RAS.
    pub fn new(capacity: usize) -> Ras {
        Ras {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (call).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address.
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Purge: empty the stack.
    pub fn reset(&mut self) {
        self.stack.clear();
    }

    /// Current depth (test aid).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

// ---------------------------------------------------------------- snapshot

use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for Btb {
    fn save(&self, w: &mut SnapWriter) {
        self.entries.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let entries: Vec<Option<(u64, u64)>> = SnapState::load(r)?;
        if !entries.len().is_power_of_two() {
            return Err(SnapError::BadValue {
                what: format!("BTB size {} is not a power of two", entries.len()),
            });
        }
        let mask = entries.len() as u64 - 1;
        Ok(Btb { entries, mask })
    }
}

impl SnapState for Tournament {
    fn save(&self, w: &mut SnapWriter) {
        self.local_hist.save(w);
        self.local_ctr.save(w);
        self.global_ctr.save(w);
        self.choice.save(w);
        w.u16(self.ghist);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let t = Tournament {
            local_hist: SnapState::load(r)?,
            local_ctr: SnapState::load(r)?,
            global_ctr: SnapState::load(r)?,
            choice: SnapState::load(r)?,
            ghist: r.u16()?,
        };
        if t.local_hist.len() != LOCAL_ENTRIES
            || t.local_ctr.len() != LOCAL_ENTRIES
            || t.global_ctr.len() != GLOBAL_ENTRIES
            || t.choice.len() != GLOBAL_ENTRIES
        {
            return Err(SnapError::BadValue {
                what: "tournament table sizes".into(),
            });
        }
        Ok(t)
    }
}

impl SnapState for Prediction {
    fn save(&self, w: &mut SnapWriter) {
        w.bool(self.taken);
        w.bool(self.local_taken);
        w.bool(self.global_taken);
        w.u16(self.ghist_at_predict);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Prediction {
            taken: r.bool()?,
            local_taken: r.bool()?,
            global_taken: r.bool()?,
            ghist_at_predict: r.u16()?,
        })
    }
}

impl SnapState for Ras {
    fn save(&self, w: &mut SnapWriter) {
        w.usize(self.capacity);
        self.stack.save(w);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let capacity = r.usize()?;
        let stack: Vec<u64> = SnapState::load(r)?;
        if stack.len() > capacity {
            return Err(SnapError::BadValue {
                what: format!("RAS depth {} over capacity {capacity}", stack.len()),
            });
        }
        Ok(Ras { stack, capacity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn btb_lookup_and_aliasing() {
        let mut btb = Btb::new(256);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.lookup(0x1000), Some(0x2000));
        // Same index (0x1000 + 256*4), different tag: miss, then replace.
        let alias = 0x1000 + 256 * 4;
        assert_eq!(btb.lookup(alias), None);
        btb.update(alias, 0x3000);
        assert_eq!(btb.lookup(0x1000), None);
        assert_eq!(btb.lookup(alias), Some(0x3000));
    }

    #[test]
    fn btb_reset() {
        let mut btb = Btb::new(256);
        btb.update(0x1000, 0x2000);
        assert_eq!(btb.occupancy(), 1);
        btb.reset();
        assert_eq!(btb.occupancy(), 0);
        assert_eq!(btb.lookup(0x1000), None);
    }

    #[test]
    fn tournament_learns_always_taken() {
        let mut t = Tournament::new();
        let pc = 0x4000;
        for _ in 0..16 {
            let p = t.predict(pc);
            t.speculate(true);
            t.update(pc, p, true);
        }
        assert!(t.predict(pc).taken);
    }

    #[test]
    fn tournament_learns_alternating_via_local_history() {
        let mut t = Tournament::new();
        let pc = 0x4000;
        let mut correct = 0;
        let mut total = 0;
        let mut taken = false;
        for i in 0..2000 {
            let p = t.predict(pc);
            if i >= 1000 {
                total += 1;
                if p.taken == taken {
                    correct += 1;
                }
            }
            t.speculate(p.taken);
            t.update(pc, p, taken);
            taken = !taken;
        }
        // A tournament predictor captures a period-2 pattern essentially
        // perfectly once warm.
        assert!(correct * 10 >= total * 9, "{correct}/{total}");
    }

    #[test]
    fn tournament_reset_forgets() {
        let mut t = Tournament::new();
        let pc = 0x4000;
        for _ in 0..32 {
            let p = t.predict(pc);
            t.speculate(true);
            t.update(pc, p, true);
        }
        assert!(t.predict(pc).taken);
        t.reset();
        assert!(!t.predict(pc).taken, "reset state is weakly not-taken");
        assert_eq!(t.ghist, 0);
    }

    #[test]
    fn ghist_restore_after_squash() {
        let mut t = Tournament::new();
        let p = t.predict(0x100);
        t.speculate(p.taken);
        t.speculate(true); // younger speculation, to be squashed
        t.speculate(false);
        t.restore_ghist(p.ghist_at_predict, true);
        assert_eq!(t.ghist, (p.ghist_at_predict << 1) | 1);
    }

    #[test]
    fn ras_push_pop() {
        let mut ras = Ras::new(8);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_reset() {
        let mut ras = Ras::new(8);
        ras.push(1);
        ras.reset();
        assert_eq!(ras.depth(), 0);
    }
}
