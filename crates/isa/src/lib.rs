//! # mi6-isa
//!
//! The instruction-set architecture used by the MI6 reproduction.
//!
//! This is a compact, RISC-V-inspired 64-bit ISA with fixed 32-bit instruction
//! encodings, three privilege levels (user / supervisor / machine), a RISC-V
//! style CSR space, precise traps, and Sv39-like three-level paging. It also
//! defines the MI6 paper's single ISA addition: the [`Inst::Purge`]
//! instruction, which scrubs all per-core microarchitectural state
//! (paper Section 6.1).
//!
//! The ISA is deliberately *not* bit-compatible with RISC-V: the MI6
//! evaluation never depends on encoding specifics, only on instruction mix and
//! privilege/trap semantics, so this crate favours a regular, easily verified
//! encoding (see `DESIGN.md` at the repository root for the substitution
//! argument).
//!
//! ## Quick example
//!
//! ```
//! use mi6_isa::{Assembler, Inst, Reg};
//!
//! let mut asm = Assembler::new(0x1000);
//! let done = asm.new_label();
//! asm.li(Reg::A0, 5);
//! asm.li(Reg::A1, 0);
//! let top = asm.here();
//! asm.push(Inst::add(Reg::A1, Reg::A1, Reg::A0));
//! asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
//! asm.beqz(Reg::A0, done);
//! asm.jump(top);
//! asm.bind(done);
//! let words = asm.assemble().unwrap();
//! assert!(!words.is_empty());
//! ```

pub mod asm;
pub mod csr;
pub mod encode;
pub mod inst;
pub mod paging;
pub mod privilege;
pub mod reg;
pub mod snap;
pub mod trap;

pub use asm::{AsmError, Assembler, Label};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use inst::{BranchCond, CsrOp, Inst, MemWidth};
pub use paging::{AccessKind, PageTableEntry, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use privilege::PrivLevel;
pub use reg::Reg;
pub use trap::{Exception, Interrupt, TrapCause};

/// Number of bytes in one instruction word.
pub const INST_BYTES: u64 = 4;
