//! Trap causes: synchronous exceptions and asynchronous interrupts.
//!
//! MI6 adds one cause beyond the RISC-V baseline:
//! [`Exception::DramRegionFault`], raised when a non-speculative access falls
//! outside the DRAM regions allocated to the running protection domain
//! (paper Section 5.3). Speculative violating accesses are *suppressed* and
//! only fault if they become non-speculative.

use crate::privilege::PrivLevel;
use std::fmt;

/// A synchronous exception cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Instruction address misaligned (PC not a multiple of 4).
    InstMisaligned,
    /// Instruction fetch faulted (no valid translation / no memory).
    InstAccessFault,
    /// Undecodable or privilege-inadequate instruction.
    IllegalInst,
    /// `ebreak`.
    Breakpoint,
    /// Misaligned data load.
    LoadMisaligned,
    /// Data load faulted.
    LoadAccessFault,
    /// Misaligned data store.
    StoreMisaligned,
    /// Data store faulted.
    StoreAccessFault,
    /// `ecall` from user mode (syscall to the OS).
    EcallFromUser,
    /// `ecall` from supervisor mode (call into the security monitor).
    EcallFromSupervisor,
    /// `ecall` from machine mode (monitor self-call; normally unused).
    EcallFromMachine,
    /// Instruction page fault (page-table walk failed on fetch).
    InstPageFault,
    /// Load page fault.
    LoadPageFault,
    /// Store page fault.
    StorePageFault,
    /// MI6: the access targets a DRAM region not in the core's allowed
    /// region bitvector (paper Section 5.3).
    DramRegionFault,
}

impl Exception {
    /// RISC-V style cause code (DramRegionFault takes a custom code 24).
    pub const fn code(self) -> u64 {
        match self {
            Exception::InstMisaligned => 0,
            Exception::InstAccessFault => 1,
            Exception::IllegalInst => 2,
            Exception::Breakpoint => 3,
            Exception::LoadMisaligned => 4,
            Exception::LoadAccessFault => 5,
            Exception::StoreMisaligned => 6,
            Exception::StoreAccessFault => 7,
            Exception::EcallFromUser => 8,
            Exception::EcallFromSupervisor => 9,
            Exception::EcallFromMachine => 11,
            Exception::InstPageFault => 12,
            Exception::LoadPageFault => 13,
            Exception::StorePageFault => 15,
            Exception::DramRegionFault => 24,
        }
    }

    /// Decodes a cause code.
    pub const fn from_code(code: u64) -> Option<Exception> {
        Some(match code {
            0 => Exception::InstMisaligned,
            1 => Exception::InstAccessFault,
            2 => Exception::IllegalInst,
            3 => Exception::Breakpoint,
            4 => Exception::LoadMisaligned,
            5 => Exception::LoadAccessFault,
            6 => Exception::StoreMisaligned,
            7 => Exception::StoreAccessFault,
            8 => Exception::EcallFromUser,
            9 => Exception::EcallFromSupervisor,
            11 => Exception::EcallFromMachine,
            12 => Exception::InstPageFault,
            13 => Exception::LoadPageFault,
            15 => Exception::StorePageFault,
            24 => Exception::DramRegionFault,
            _ => return None,
        })
    }

    /// The `ecall` exception raised from a given privilege level.
    pub const fn ecall_from(priv_level: PrivLevel) -> Exception {
        match priv_level {
            PrivLevel::User => Exception::EcallFromUser,
            PrivLevel::Supervisor => Exception::EcallFromSupervisor,
            PrivLevel::Machine => Exception::EcallFromMachine,
        }
    }

    /// Exceptions that must always be handled by the security monitor in
    /// machine mode: supervisor ecalls (monitor calls) and MI6 region faults.
    pub const fn always_to_machine(self) -> bool {
        matches!(
            self,
            Exception::EcallFromSupervisor
                | Exception::EcallFromMachine
                | Exception::DramRegionFault
        )
    }

    /// All exception causes.
    pub const ALL: [Exception; 16] = [
        Exception::InstMisaligned,
        Exception::InstAccessFault,
        Exception::IllegalInst,
        Exception::Breakpoint,
        Exception::LoadMisaligned,
        Exception::LoadAccessFault,
        Exception::StoreMisaligned,
        Exception::StoreAccessFault,
        Exception::EcallFromUser,
        Exception::EcallFromSupervisor,
        Exception::EcallFromMachine,
        Exception::InstPageFault,
        Exception::LoadPageFault,
        Exception::StorePageFault,
        Exception::DramRegionFault,
        Exception::Breakpoint,
    ];
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Exception::InstMisaligned => "instruction address misaligned",
            Exception::InstAccessFault => "instruction access fault",
            Exception::IllegalInst => "illegal instruction",
            Exception::Breakpoint => "breakpoint",
            Exception::LoadMisaligned => "load address misaligned",
            Exception::LoadAccessFault => "load access fault",
            Exception::StoreMisaligned => "store address misaligned",
            Exception::StoreAccessFault => "store access fault",
            Exception::EcallFromUser => "ecall from user mode",
            Exception::EcallFromSupervisor => "ecall from supervisor mode",
            Exception::EcallFromMachine => "ecall from machine mode",
            Exception::InstPageFault => "instruction page fault",
            Exception::LoadPageFault => "load page fault",
            Exception::StorePageFault => "store page fault",
            Exception::DramRegionFault => "dram region fault",
        };
        f.write_str(s)
    }
}

/// An asynchronous interrupt cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// Supervisor software interrupt (IPI).
    SupervisorSoftware,
    /// Supervisor timer interrupt (drives the OS scheduler).
    SupervisorTimer,
    /// Machine timer interrupt (drives the security monitor's watchdog).
    MachineTimer,
    /// Machine software interrupt (monitor IPI, e.g. TLB shootdown).
    MachineSoftware,
}

impl Interrupt {
    /// RISC-V style interrupt cause code.
    pub const fn code(self) -> u64 {
        match self {
            Interrupt::SupervisorSoftware => 1,
            Interrupt::MachineSoftware => 3,
            Interrupt::SupervisorTimer => 5,
            Interrupt::MachineTimer => 7,
        }
    }

    /// Decodes an interrupt cause code.
    pub const fn from_code(code: u64) -> Option<Interrupt> {
        Some(match code {
            1 => Interrupt::SupervisorSoftware,
            3 => Interrupt::MachineSoftware,
            5 => Interrupt::SupervisorTimer,
            7 => Interrupt::MachineTimer,
            _ => return None,
        })
    }

    /// The privilege level that natively handles this interrupt.
    pub const fn native_level(self) -> PrivLevel {
        match self {
            Interrupt::SupervisorSoftware | Interrupt::SupervisorTimer => PrivLevel::Supervisor,
            Interrupt::MachineSoftware | Interrupt::MachineTimer => PrivLevel::Machine,
        }
    }

    /// All interrupt causes.
    pub const ALL: [Interrupt; 4] = [
        Interrupt::SupervisorSoftware,
        Interrupt::MachineSoftware,
        Interrupt::SupervisorTimer,
        Interrupt::MachineTimer,
    ];
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interrupt::SupervisorSoftware => "supervisor software interrupt",
            Interrupt::SupervisorTimer => "supervisor timer interrupt",
            Interrupt::MachineSoftware => "machine software interrupt",
            Interrupt::MachineTimer => "machine timer interrupt",
        };
        f.write_str(s)
    }
}

/// A trap cause: either a synchronous exception or an interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrapCause {
    /// Synchronous exception.
    Exception(Exception),
    /// Asynchronous interrupt.
    Interrupt(Interrupt),
}

impl TrapCause {
    /// Packs the cause into a RISC-V `mcause`-style value: the top bit set
    /// for interrupts, the cause code in the low bits.
    pub const fn to_bits(self) -> u64 {
        match self {
            TrapCause::Exception(e) => e.code(),
            TrapCause::Interrupt(i) => (1 << 63) | i.code(),
        }
    }

    /// Unpacks an `mcause`-style value.
    pub const fn from_bits(bits: u64) -> Option<TrapCause> {
        if bits >> 63 != 0 {
            match Interrupt::from_code(bits & !(1 << 63)) {
                Some(i) => Some(TrapCause::Interrupt(i)),
                None => None,
            }
        } else {
            match Exception::from_code(bits) {
                Some(e) => Some(TrapCause::Exception(e)),
                None => None,
            }
        }
    }

    /// Whether this is an interrupt.
    pub const fn is_interrupt(self) -> bool {
        matches!(self, TrapCause::Interrupt(_))
    }
}

impl fmt::Display for TrapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapCause::Exception(e) => e.fmt(f),
            TrapCause::Interrupt(i) => i.fmt(f),
        }
    }
}

impl From<Exception> for TrapCause {
    fn from(e: Exception) -> TrapCause {
        TrapCause::Exception(e)
    }
}

impl From<Interrupt> for TrapCause {
    fn from(i: Interrupt) -> TrapCause {
        TrapCause::Interrupt(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_codes_round_trip() {
        for e in Exception::ALL {
            assert_eq!(Exception::from_code(e.code()), Some(e));
        }
    }

    #[test]
    fn interrupt_codes_round_trip() {
        for i in Interrupt::ALL {
            assert_eq!(Interrupt::from_code(i.code()), Some(i));
        }
    }

    #[test]
    fn cause_bits_round_trip() {
        for e in Exception::ALL {
            let c = TrapCause::Exception(e);
            assert_eq!(TrapCause::from_bits(c.to_bits()), Some(c));
        }
        for i in Interrupt::ALL {
            let c = TrapCause::Interrupt(i);
            assert_eq!(TrapCause::from_bits(c.to_bits()), Some(c));
            assert!(c.is_interrupt());
        }
    }

    #[test]
    fn ecall_cause_tracks_privilege() {
        assert_eq!(
            Exception::ecall_from(PrivLevel::User),
            Exception::EcallFromUser
        );
        assert_eq!(
            Exception::ecall_from(PrivLevel::Supervisor),
            Exception::EcallFromSupervisor
        );
    }

    #[test]
    fn region_fault_routes_to_machine() {
        assert!(Exception::DramRegionFault.always_to_machine());
        assert!(!Exception::EcallFromUser.always_to_machine());
    }

    #[test]
    fn unknown_codes_rejected() {
        assert_eq!(Exception::from_code(10), None);
        assert_eq!(Interrupt::from_code(2), None);
        assert_eq!(TrapCause::from_bits((1 << 63) | 2), None);
    }
}
