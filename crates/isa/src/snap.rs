//! Snapshot codec impls for architectural ISA types.
//!
//! Everything here is plain architectural state: registers, privilege,
//! exception causes, CSRs, paging newtypes, and decoded instructions.
//! Instructions are stored as their 32-bit machine encoding — every
//! instruction that reaches the pipeline came from a fetched word, so
//! `encode` round-trips by construction.

use crate::csr::CsrFile;
use crate::paging::{AccessKind, PageTableEntry, PhysAddr, VirtAddr};
use crate::privilege::PrivLevel;
use crate::trap::Exception;
use crate::{decode, encode, Inst, Reg};
use mi6_snapshot::{SnapError, SnapReader, SnapState, SnapWriter};

impl SnapState for Reg {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.index());
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let idx = r.u8()?;
        Reg::try_new(idx).ok_or_else(|| SnapError::BadValue {
            what: format!("register index {idx}"),
        })
    }
}

impl SnapState for PrivLevel {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            PrivLevel::User => 0,
            PrivLevel::Supervisor => 1,
            PrivLevel::Machine => 2,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(PrivLevel::User),
            1 => Ok(PrivLevel::Supervisor),
            2 => Ok(PrivLevel::Machine),
            other => Err(SnapError::BadValue {
                what: format!("privilege level {other}"),
            }),
        }
    }
}

impl SnapState for Exception {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(self.code() as u8);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let code = r.u8()?;
        Exception::from_code(code as u64).ok_or_else(|| SnapError::BadValue {
            what: format!("exception code {code}"),
        })
    }
}

impl SnapState for AccessKind {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            AccessKind::Fetch => 0,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(AccessKind::Fetch),
            1 => Ok(AccessKind::Load),
            2 => Ok(AccessKind::Store),
            other => Err(SnapError::BadValue {
                what: format!("access kind {other}"),
            }),
        }
    }
}

impl SnapState for Inst {
    fn save(&self, w: &mut SnapWriter) {
        let word = encode(*self).expect("pipeline instructions have a machine encoding");
        w.u32(word);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let word = r.u32()?;
        decode(word).map_err(|e| SnapError::BadValue {
            what: format!("instruction word {word:#010x}: {e}"),
        })
    }
}

impl SnapState for PhysAddr {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.raw());
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PhysAddr::new(r.u64()?))
    }
}

impl SnapState for VirtAddr {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.raw());
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(VirtAddr::new(r.u64()?))
    }
}

impl SnapState for PageTableEntry {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.0);
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(PageTableEntry(r.u64()?))
    }
}

impl SnapState for CsrFile {
    fn save(&self, w: &mut SnapWriter) {
        for v in [
            self.mstatus,
            self.medeleg,
            self.mideleg,
            self.mie,
            self.mtvec,
            self.mscratch,
            self.mepc,
            self.mcause,
            self.mtval,
            self.mip,
            self.mregions,
            self.mfetchbase,
            self.mfetchbound,
            self.mtimecmp,
            self.stvec,
            self.sscratch,
            self.sepc,
            self.scause,
            self.stval,
            self.satp,
            self.stimecmp,
            self.cycle,
            self.instret,
        ] {
            w.u64(v);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CsrFile {
            mstatus: r.u64()?,
            medeleg: r.u64()?,
            mideleg: r.u64()?,
            mie: r.u64()?,
            mtvec: r.u64()?,
            mscratch: r.u64()?,
            mepc: r.u64()?,
            mcause: r.u64()?,
            mtval: r.u64()?,
            mip: r.u64()?,
            mregions: r.u64()?,
            mfetchbase: r.u64()?,
            mfetchbound: r.u64()?,
            mtimecmp: r.u64()?,
            stvec: r.u64()?,
            sscratch: r.u64()?,
            sepc: r.u64()?,
            scause: r.u64()?,
            stval: r.u64()?,
            satp: r.u64()?,
            stimecmp: r.u64()?,
            cycle: r.u64()?,
            instret: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mi6_snapshot::{SnapReader, SnapWriter};

    fn round_trip<T: SnapState + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(T::load(&mut r).unwrap(), v);
        r.expect_end().unwrap();
    }

    #[test]
    fn isa_values_round_trip() {
        round_trip(Reg::A7);
        round_trip(PrivLevel::Supervisor);
        round_trip(Exception::DramRegionFault);
        round_trip(AccessKind::Store);
        round_trip(Inst::sd(Reg::A0, Reg::SP, -16));
        round_trip(PhysAddr::new(0x8000_1234));
        round_trip(PageTableEntry::leaf(0x42, true, false, false, true));
    }

    #[test]
    fn csr_file_round_trips_nondefault_state() {
        let mut csrs = CsrFile::new();
        csrs.mstatus = 0x1888;
        csrs.satp = (1 << 60) | 0x1234;
        csrs.stimecmp = 99_999;
        csrs.instret = 7;
        round_trip(csrs);
    }

    #[test]
    fn bad_reg_and_exception_rejected() {
        let mut r = SnapReader::new(&[32]);
        assert!(Reg::load(&mut r).is_err());
        let mut r = SnapReader::new(&[200]);
        assert!(Exception::load(&mut r).is_err());
    }
}
