//! Control and status registers.
//!
//! A RISC-V-flavoured CSR space with machine and supervisor trap handling
//! state, plus the MI6-specific machine-mode CSRs:
//!
//! - [`csr::MREGIONS`]: the per-core DRAM-region access bitvector
//!   (paper Section 5.3) — bit *r* set means the running protection domain
//!   may touch DRAM region *r*, for *any* physical access including
//!   speculative fetches, loads, and page-table walks.
//! - [`csr::MFETCHBASE`] / [`csr::MFETCHBOUND`]: the physical address window
//!   machine-mode instruction fetch is restricted to (the security monitor's
//!   text; paper Section 6.2).
//!
//! [`csr::MREGIONS`]: MREGIONS
//! [`csr::MFETCHBASE`]: MFETCHBASE
//! [`csr::MFETCHBOUND`]: MFETCHBOUND

use crate::privilege::PrivLevel;
#[cfg(any(doc, test))]
use crate::trap::Exception;
use crate::trap::{Interrupt, TrapCause};
use std::fmt;

// ---- CSR addresses (12-bit space; top 2 bits encode required privilege) ----

/// Machine status (MPP, SPP, MIE, SIE bits).
pub const MSTATUS: u16 = 0x300;
/// Machine exception delegation: bit = exception code delegated to S-mode.
pub const MEDELEG: u16 = 0x302;
/// Machine interrupt delegation.
pub const MIDELEG: u16 = 0x303;
/// Machine interrupt enable bits.
pub const MIE: u16 = 0x304;
/// Machine trap vector base.
pub const MTVEC: u16 = 0x305;
/// Machine scratch.
pub const MSCRATCH: u16 = 0x340;
/// Machine exception PC.
pub const MEPC: u16 = 0x341;
/// Machine trap cause.
pub const MCAUSE: u16 = 0x342;
/// Machine trap value (faulting address / instruction bits).
pub const MTVAL: u16 = 0x343;
/// Machine interrupt pending bits.
pub const MIP: u16 = 0x344;
/// MI6: DRAM-region access bitvector (machine-mode writable only).
pub const MREGIONS: u16 = 0x7c0;
/// MI6: machine-mode fetch window base (physical).
pub const MFETCHBASE: u16 = 0x7c1;
/// MI6: machine-mode fetch window bound (exclusive, physical).
pub const MFETCHBOUND: u16 = 0x7c2;
/// Machine timer compare value (simplified: a CSR rather than MMIO).
pub const MTIMECMP: u16 = 0x7c3;

/// Supervisor status (view of MSTATUS).
pub const SSTATUS: u16 = 0x100;
/// Supervisor interrupt enable.
pub const SIE: u16 = 0x104;
/// Supervisor trap vector base.
pub const STVEC: u16 = 0x105;
/// Supervisor scratch.
pub const SSCRATCH: u16 = 0x140;
/// Supervisor exception PC.
pub const SEPC: u16 = 0x141;
/// Supervisor trap cause.
pub const SCAUSE: u16 = 0x142;
/// Supervisor trap value.
pub const STVAL: u16 = 0x143;
/// Supervisor interrupt pending.
pub const SIP: u16 = 0x144;
/// Supervisor address translation and protection (page-table root | mode).
pub const SATP: u16 = 0x180;
/// Supervisor timer compare (simplified: a CSR rather than SBI/MMIO, so
/// the toy OS can drive its scheduler without bouncing through the
/// monitor).
pub const STIMECMP: u16 = 0x150;

/// Cycle counter (read-only from any privilege).
pub const CYCLE: u16 = 0xc00;
/// Retired-instruction counter (read-only).
pub const INSTRET: u16 = 0xc02;

// ---- mstatus bit positions ----

/// `mstatus.SIE`: supervisor interrupt enable.
pub const STATUS_SIE: u64 = 1 << 1;
/// `mstatus.MIE`: machine interrupt enable.
pub const STATUS_MIE: u64 = 1 << 3;
/// `mstatus.SPIE`: previous SIE.
pub const STATUS_SPIE: u64 = 1 << 5;
/// `mstatus.MPIE`: previous MIE.
pub const STATUS_MPIE: u64 = 1 << 7;
/// `mstatus.SPP`: previous privilege (S-trap), 1 bit.
pub const STATUS_SPP: u64 = 1 << 8;
/// `mstatus.MPP`: previous privilege (M-trap), 2 bits at 11..13.
pub const STATUS_MPP_SHIFT: u32 = 11;
/// Mask for the MPP field.
pub const STATUS_MPP_MASK: u64 = 0b11 << STATUS_MPP_SHIFT;

/// Error returned by CSR accesses that must raise an illegal-instruction
/// exception (unknown CSR, insufficient privilege, write to read-only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsrError {
    /// The CSR address that faulted.
    pub csr: u16,
    /// Why the access was rejected.
    pub kind: CsrErrorKind,
}

/// The reason a CSR access was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CsrErrorKind {
    /// Address does not name an implemented CSR.
    Unknown,
    /// The current privilege level may not access this CSR.
    Privilege,
    /// Write attempted to a read-only CSR.
    ReadOnly,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let why = match self.kind {
            CsrErrorKind::Unknown => "unknown csr",
            CsrErrorKind::Privilege => "insufficient privilege for csr",
            CsrErrorKind::ReadOnly => "write to read-only csr",
        };
        write!(f, "{why} {:#05x}", self.csr)
    }
}

impl std::error::Error for CsrError {}

/// Minimum privilege required to access a CSR address (RISC-V convention:
/// bits 9:8 of the address).
pub const fn required_privilege(csr: u16) -> PrivLevel {
    match (csr >> 8) & 0b11 {
        0 => PrivLevel::User,
        1 => PrivLevel::Supervisor,
        _ => PrivLevel::Machine,
    }
}

/// Whether the CSR address is architecturally read-only (RISC-V convention:
/// bits 11:10 == 0b11).
pub const fn is_read_only(csr: u16) -> bool {
    (csr >> 10) & 0b11 == 0b11
}

/// The architectural CSR file of one hardware thread.
///
/// Holds trap state for machine and supervisor modes, the MI6 region
/// bitvector and fetch window, and the cycle/instret counters (which the
/// simulator updates, not software).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrFile {
    /// `mstatus` (SSTATUS is a masked view).
    pub mstatus: u64,
    /// Exception delegation to supervisor mode.
    pub medeleg: u64,
    /// Interrupt delegation to supervisor mode.
    pub mideleg: u64,
    /// Machine interrupt enables.
    pub mie: u64,
    /// Machine trap vector.
    pub mtvec: u64,
    /// Machine scratch.
    pub mscratch: u64,
    /// Machine exception PC.
    pub mepc: u64,
    /// Machine cause.
    pub mcause: u64,
    /// Machine trap value.
    pub mtval: u64,
    /// Interrupt pending bits.
    pub mip: u64,
    /// MI6 DRAM-region bitvector (bit r = region r accessible).
    pub mregions: u64,
    /// MI6 machine-mode fetch window base (physical byte address).
    pub mfetchbase: u64,
    /// MI6 machine-mode fetch window bound (exclusive).
    pub mfetchbound: u64,
    /// Machine timer compare.
    pub mtimecmp: u64,
    /// Supervisor trap vector.
    pub stvec: u64,
    /// Supervisor scratch.
    pub sscratch: u64,
    /// Supervisor exception PC.
    pub sepc: u64,
    /// Supervisor cause.
    pub scause: u64,
    /// Supervisor trap value.
    pub stval: u64,
    /// Page-table root (physical page number) and translation mode.
    pub satp: u64,
    /// Supervisor timer compare.
    pub stimecmp: u64,
    /// Cycle counter (maintained by the simulator).
    pub cycle: u64,
    /// Retired instruction counter (maintained by the simulator).
    pub instret: u64,
}

/// Bits of `mstatus`/`sstatus` visible and writable from supervisor mode.
const SSTATUS_MASK: u64 = STATUS_SIE | STATUS_SPIE | STATUS_SPP;

impl CsrFile {
    /// A freshly reset CSR file: everything zero, `mregions` all-ones
    /// (reset state allows all regions until the monitor configures it).
    pub fn new() -> CsrFile {
        CsrFile {
            mregions: u64::MAX,
            mfetchbound: u64::MAX,
            mtimecmp: u64::MAX,
            stimecmp: u64::MAX,
            ..CsrFile::default()
        }
    }

    /// Reads a CSR, checking privilege.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError`] when the CSR is unknown or `priv_level` is too
    /// low; the core turns this into an illegal-instruction exception.
    pub fn read(&self, csr: u16, priv_level: PrivLevel) -> Result<u64, CsrError> {
        if !priv_level.can_access(required_privilege(csr)) {
            return Err(CsrError {
                csr,
                kind: CsrErrorKind::Privilege,
            });
        }
        Ok(match csr {
            MSTATUS => self.mstatus,
            MEDELEG => self.medeleg,
            MIDELEG => self.mideleg,
            MIE => self.mie,
            MTVEC => self.mtvec,
            MSCRATCH => self.mscratch,
            MEPC => self.mepc,
            MCAUSE => self.mcause,
            MTVAL => self.mtval,
            MIP => self.mip,
            MREGIONS => self.mregions,
            MFETCHBASE => self.mfetchbase,
            MFETCHBOUND => self.mfetchbound,
            MTIMECMP => self.mtimecmp,
            SSTATUS => self.mstatus & SSTATUS_MASK,
            SIE => self.mie & self.mideleg,
            STVEC => self.stvec,
            SSCRATCH => self.sscratch,
            SEPC => self.sepc,
            SCAUSE => self.scause,
            STVAL => self.stval,
            SIP => self.mip & self.mideleg,
            SATP => self.satp,
            STIMECMP => self.stimecmp,
            CYCLE => self.cycle,
            INSTRET => self.instret,
            _ => {
                return Err(CsrError {
                    csr,
                    kind: CsrErrorKind::Unknown,
                })
            }
        })
    }

    /// Writes a CSR, checking privilege and read-only status.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError`] when the CSR is unknown, read-only, or
    /// `priv_level` is too low.
    pub fn write(&mut self, csr: u16, value: u64, priv_level: PrivLevel) -> Result<(), CsrError> {
        if !priv_level.can_access(required_privilege(csr)) {
            return Err(CsrError {
                csr,
                kind: CsrErrorKind::Privilege,
            });
        }
        if is_read_only(csr) {
            return Err(CsrError {
                csr,
                kind: CsrErrorKind::ReadOnly,
            });
        }
        match csr {
            MSTATUS => self.mstatus = value,
            MEDELEG => self.medeleg = value,
            MIDELEG => self.mideleg = value,
            MIE => self.mie = value,
            MTVEC => self.mtvec = value & !0b11,
            MSCRATCH => self.mscratch = value,
            MEPC => self.mepc = value & !0b11,
            MCAUSE => self.mcause = value,
            MTVAL => self.mtval = value,
            MIP => self.mip = value,
            MREGIONS => self.mregions = value,
            MFETCHBASE => self.mfetchbase = value,
            MFETCHBOUND => self.mfetchbound = value,
            MTIMECMP => self.mtimecmp = value,
            SSTATUS => {
                self.mstatus = (self.mstatus & !SSTATUS_MASK) | (value & SSTATUS_MASK);
            }
            SIE => {
                let mask = self.mideleg;
                self.mie = (self.mie & !mask) | (value & mask);
            }
            STVEC => self.stvec = value & !0b11,
            SSCRATCH => self.sscratch = value,
            SEPC => self.sepc = value & !0b11,
            SCAUSE => self.scause = value,
            STVAL => self.stval = value,
            SIP => {
                let mask = self.mideleg;
                self.mip = (self.mip & !mask) | (value & mask);
            }
            SATP => self.satp = value,
            STIMECMP => self.stimecmp = value,
            _ => {
                return Err(CsrError {
                    csr,
                    kind: CsrErrorKind::Unknown,
                })
            }
        }
        Ok(())
    }

    /// The privilege level saved in `mstatus.MPP`.
    pub fn mpp(&self) -> PrivLevel {
        PrivLevel::decode(((self.mstatus & STATUS_MPP_MASK) >> STATUS_MPP_SHIFT) as u8)
            .unwrap_or(PrivLevel::User)
    }

    /// Sets `mstatus.MPP`.
    pub fn set_mpp(&mut self, p: PrivLevel) {
        self.mstatus =
            (self.mstatus & !STATUS_MPP_MASK) | ((p.encode() as u64) << STATUS_MPP_SHIFT);
    }

    /// The privilege level saved in `mstatus.SPP` (user or supervisor).
    pub fn spp(&self) -> PrivLevel {
        if self.mstatus & STATUS_SPP != 0 {
            PrivLevel::Supervisor
        } else {
            PrivLevel::User
        }
    }

    /// Sets `mstatus.SPP`.
    pub fn set_spp(&mut self, p: PrivLevel) {
        if p == PrivLevel::Supervisor {
            self.mstatus |= STATUS_SPP;
        } else {
            self.mstatus &= !STATUS_SPP;
        }
    }

    /// Performs the architectural state update for taking a trap.
    ///
    /// Returns the privilege level the trap is taken in and the handler PC.
    /// Exceptions listed in `medeleg` (and interrupts in `mideleg`) raised
    /// at supervisor level or below are delegated to supervisor mode;
    /// everything else goes to machine mode. MI6 forces monitor calls and
    /// region faults to machine mode regardless of delegation
    /// ([`Exception::always_to_machine`]).
    pub fn take_trap(
        &mut self,
        cause: TrapCause,
        epc: u64,
        tval: u64,
        cur: PrivLevel,
    ) -> (PrivLevel, u64) {
        let delegated = match cause {
            TrapCause::Exception(e) => {
                !e.always_to_machine()
                    && cur <= PrivLevel::Supervisor
                    && (self.medeleg >> e.code()) & 1 != 0
            }
            TrapCause::Interrupt(i) => {
                cur <= PrivLevel::Supervisor && (self.mideleg >> i.code()) & 1 != 0
            }
        };
        if delegated {
            self.scause = cause.to_bits();
            self.sepc = epc;
            self.stval = tval;
            self.set_spp(cur);
            // SPIE <- SIE; SIE <- 0
            let sie = self.mstatus & STATUS_SIE != 0;
            if sie {
                self.mstatus |= STATUS_SPIE;
            } else {
                self.mstatus &= !STATUS_SPIE;
            }
            self.mstatus &= !STATUS_SIE;
            (PrivLevel::Supervisor, self.stvec)
        } else {
            self.mcause = cause.to_bits();
            self.mepc = epc;
            self.mtval = tval;
            self.set_mpp(cur);
            let mie = self.mstatus & STATUS_MIE != 0;
            if mie {
                self.mstatus |= STATUS_MPIE;
            } else {
                self.mstatus &= !STATUS_MPIE;
            }
            self.mstatus &= !STATUS_MIE;
            (PrivLevel::Machine, self.mtvec)
        }
    }

    /// Performs the architectural state update for `mret`. Returns the
    /// privilege level to resume in and the resume PC.
    pub fn mret(&mut self) -> (PrivLevel, u64) {
        let to = self.mpp();
        // MIE <- MPIE; MPIE <- 1; MPP <- U
        if self.mstatus & STATUS_MPIE != 0 {
            self.mstatus |= STATUS_MIE;
        } else {
            self.mstatus &= !STATUS_MIE;
        }
        self.mstatus |= STATUS_MPIE;
        self.set_mpp(PrivLevel::User);
        (to, self.mepc)
    }

    /// Performs the architectural state update for `sret`. Returns the
    /// privilege level to resume in and the resume PC.
    pub fn sret(&mut self) -> (PrivLevel, u64) {
        let to = self.spp();
        if self.mstatus & STATUS_SPIE != 0 {
            self.mstatus |= STATUS_SIE;
        } else {
            self.mstatus &= !STATUS_SIE;
        }
        self.mstatus |= STATUS_SPIE;
        self.set_spp(PrivLevel::User);
        (to, self.sepc)
    }

    /// The highest-priority pending-and-enabled interrupt takeable at the
    /// current privilege level, if any.
    ///
    /// Machine interrupts preempt supervisor interrupts. An interrupt is
    /// takeable when it is pending, enabled in `mie`, and either targets a
    /// strictly higher privilege than `cur` or targets `cur` with the
    /// corresponding global interrupt-enable bit set.
    pub fn pending_interrupt(&self, cur: PrivLevel) -> Option<Interrupt> {
        self.pending_interrupt_with(cur, self.mip)
    }

    /// [`CsrFile::pending_interrupt`] evaluated against an explicit `mip`
    /// value instead of the stored one. The core's next-event probe uses
    /// this to ask "would an interrupt be takeable once the timer pending
    /// bits are recomputed for the current cycle?" without mutating state
    /// (the stored `mip` is only refreshed inside the tick).
    pub fn pending_interrupt_with(&self, cur: PrivLevel, mip: u64) -> Option<Interrupt> {
        let ready = mip & self.mie;
        let takeable = |i: Interrupt| -> bool {
            if ready >> i.code() & 1 == 0 {
                return false;
            }
            let lvl = i.native_level();
            if lvl > cur {
                return true;
            }
            if lvl < cur {
                return false;
            }
            match lvl {
                PrivLevel::Machine => self.mstatus & STATUS_MIE != 0,
                PrivLevel::Supervisor => self.mstatus & STATUS_SIE != 0,
                PrivLevel::User => true,
            }
        };
        // Machine interrupts first.
        [
            Interrupt::MachineSoftware,
            Interrupt::MachineTimer,
            Interrupt::SupervisorSoftware,
            Interrupt::SupervisorTimer,
        ]
        .into_iter()
        .find(|&i| takeable(i))
    }

    /// Sets or clears an interrupt-pending bit.
    pub fn set_pending(&mut self, i: Interrupt, pending: bool) {
        if pending {
            self.mip |= 1 << i.code();
        } else {
            self.mip &= !(1 << i.code());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privilege_gating() {
        let csrs = CsrFile::new();
        assert!(csrs.read(MSTATUS, PrivLevel::User).is_err());
        assert!(csrs.read(MSTATUS, PrivLevel::Machine).is_ok());
        assert!(csrs.read(SEPC, PrivLevel::Supervisor).is_ok());
        assert!(csrs.read(SEPC, PrivLevel::User).is_err());
        assert!(csrs.read(CYCLE, PrivLevel::User).is_ok());
    }

    #[test]
    fn counters_read_only() {
        let mut csrs = CsrFile::new();
        let err = csrs.write(CYCLE, 1, PrivLevel::Machine).unwrap_err();
        assert_eq!(err.kind, CsrErrorKind::ReadOnly);
    }

    #[test]
    fn unknown_csr_rejected() {
        let mut csrs = CsrFile::new();
        assert!(csrs.read(0x123, PrivLevel::Machine).is_err());
        assert!(csrs.write(0x123, 0, PrivLevel::Machine).is_err());
    }

    #[test]
    fn mregions_machine_only() {
        let mut csrs = CsrFile::new();
        assert_eq!(csrs.read(MREGIONS, PrivLevel::Machine).unwrap(), u64::MAX);
        assert!(csrs.write(MREGIONS, 0b1010, PrivLevel::Supervisor).is_err());
        csrs.write(MREGIONS, 0b1010, PrivLevel::Machine).unwrap();
        assert_eq!(csrs.mregions, 0b1010);
    }

    #[test]
    fn sstatus_is_masked_view() {
        let mut csrs = CsrFile::new();
        csrs.write(MSTATUS, u64::MAX, PrivLevel::Machine).unwrap();
        let s = csrs.read(SSTATUS, PrivLevel::Supervisor).unwrap();
        assert_eq!(s, SSTATUS_MASK);
        // supervisor writes cannot touch machine bits
        csrs.write(SSTATUS, 0, PrivLevel::Supervisor).unwrap();
        assert_ne!(csrs.mstatus & STATUS_MIE, 0);
        assert_eq!(csrs.mstatus & STATUS_SIE, 0);
    }

    #[test]
    fn trap_to_machine_saves_state() {
        let mut csrs = CsrFile::new();
        csrs.mtvec = 0x8000_0000;
        csrs.mstatus |= STATUS_MIE;
        let (lvl, pc) = csrs.take_trap(
            Exception::EcallFromSupervisor.into(),
            0x1234,
            0,
            PrivLevel::Supervisor,
        );
        assert_eq!(lvl, PrivLevel::Machine);
        assert_eq!(pc, 0x8000_0000);
        assert_eq!(csrs.mepc, 0x1234);
        assert_eq!(csrs.mpp(), PrivLevel::Supervisor);
        assert_eq!(csrs.mstatus & STATUS_MIE, 0);
        assert_ne!(csrs.mstatus & STATUS_MPIE, 0);
    }

    #[test]
    fn delegated_exception_goes_to_supervisor() {
        let mut csrs = CsrFile::new();
        csrs.stvec = 0x4000;
        csrs.medeleg = 1 << Exception::EcallFromUser.code();
        let (lvl, pc) = csrs.take_trap(Exception::EcallFromUser.into(), 0x100, 0, PrivLevel::User);
        assert_eq!(lvl, PrivLevel::Supervisor);
        assert_eq!(pc, 0x4000);
        assert_eq!(csrs.sepc, 0x100);
        assert_eq!(csrs.spp(), PrivLevel::User);
    }

    #[test]
    fn region_fault_never_delegated() {
        let mut csrs = CsrFile::new();
        csrs.medeleg = u64::MAX;
        let (lvl, _) = csrs.take_trap(
            Exception::DramRegionFault.into(),
            0x100,
            0xdead,
            PrivLevel::User,
        );
        assert_eq!(lvl, PrivLevel::Machine);
        assert_eq!(csrs.mtval, 0xdead);
    }

    #[test]
    fn machine_trap_never_delegated_from_machine() {
        let mut csrs = CsrFile::new();
        csrs.medeleg = u64::MAX;
        let (lvl, _) = csrs.take_trap(Exception::IllegalInst.into(), 0, 0, PrivLevel::Machine);
        assert_eq!(lvl, PrivLevel::Machine);
    }

    #[test]
    fn mret_restores() {
        let mut csrs = CsrFile::new();
        csrs.mepc = 0x900;
        csrs.set_mpp(PrivLevel::User);
        csrs.mstatus |= STATUS_MPIE;
        let (lvl, pc) = csrs.mret();
        assert_eq!(lvl, PrivLevel::User);
        assert_eq!(pc, 0x900);
        assert_ne!(csrs.mstatus & STATUS_MIE, 0);
        assert_eq!(csrs.mpp(), PrivLevel::User);
    }

    #[test]
    fn sret_restores() {
        let mut csrs = CsrFile::new();
        csrs.sepc = 0x700;
        csrs.set_spp(PrivLevel::User);
        csrs.mstatus |= STATUS_SPIE;
        let (lvl, pc) = csrs.sret();
        assert_eq!(lvl, PrivLevel::User);
        assert_eq!(pc, 0x700);
        assert_ne!(csrs.mstatus & STATUS_SIE, 0);
    }

    #[test]
    fn interrupt_priority_and_masking() {
        let mut csrs = CsrFile::new();
        csrs.set_pending(Interrupt::SupervisorTimer, true);
        csrs.mie = u64::MAX;
        // At user level, S-timer targets higher privilege: takeable.
        assert_eq!(
            csrs.pending_interrupt(PrivLevel::User),
            Some(Interrupt::SupervisorTimer)
        );
        // At supervisor level with SIE clear: not takeable.
        assert_eq!(csrs.pending_interrupt(PrivLevel::Supervisor), None);
        csrs.mstatus |= STATUS_SIE;
        assert_eq!(
            csrs.pending_interrupt(PrivLevel::Supervisor),
            Some(Interrupt::SupervisorTimer)
        );
        // Machine timer preempts.
        csrs.set_pending(Interrupt::MachineTimer, true);
        assert_eq!(
            csrs.pending_interrupt(PrivLevel::Supervisor),
            Some(Interrupt::MachineTimer)
        );
        // At machine level with MIE clear, machine interrupts masked.
        assert_eq!(csrs.pending_interrupt(PrivLevel::Machine), None);
    }

    #[test]
    fn mpp_round_trip() {
        let mut csrs = CsrFile::new();
        for p in PrivLevel::ALL {
            csrs.set_mpp(p);
            assert_eq!(csrs.mpp(), p);
        }
    }
}
