//! Architectural integer registers.
//!
//! The ISA has 32 general-purpose 64-bit registers. Register 0 ([`Reg::ZERO`])
//! is hard-wired to zero, exactly as in RISC-V. The ABI names used by the
//! assembler and the workload generators follow the RISC-V calling convention
//! so generated listings read naturally.

use std::fmt;

/// An architectural register index in `0..32`.
///
/// ```
/// use mi6_isa::Reg;
/// assert_eq!(Reg::new(10), Reg::A0);
/// assert_eq!(Reg::A0.index(), 10);
/// assert_eq!(Reg::ZERO.to_string(), "zero");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register (`x0`).
    pub const ZERO: Reg = Reg(0);
    /// Return address (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2`).
    pub const SP: Reg = Reg(2);
    /// Global pointer (`x3`).
    pub const GP: Reg = Reg(3);
    /// Thread pointer (`x4`).
    pub const TP: Reg = Reg(4);
    /// Temporary 0 (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary 1 (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary 2 (`x7`).
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register 1 (`x9`).
    pub const S1: Reg = Reg(9);
    /// Argument / return value 0 (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument / return value 1 (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument 2 (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument 3 (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument 4 (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument 5 (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument 6 (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument 7 (`x17`), syscall number by convention.
    pub const A7: Reg = Reg(17);
    /// Saved register 2 (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register 3 (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register 4 (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register 5 (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register 6 (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register 7 (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register 8 (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register 9 (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register 10 (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register 11 (`x27`).
    pub const S11: Reg = Reg(27);
    /// Temporary 3 (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary 4 (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary 5 (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary 6 (`x31`).
    pub const T6: Reg = Reg(31);

    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub const fn new(index: u8) -> Reg {
        assert!(index < 32, "register index out of range");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    pub const fn try_new(index: u8) -> Option<Reg> {
        if index < 32 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register's index in `0..32`.
    pub const fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// The RISC-V ABI name of the register (e.g. `a0`, `sp`).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({}={})", self.0, self.abi_name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i);
        }
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(255), None);
        assert_eq!(Reg::try_new(31), Some(Reg::T6));
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    fn abi_names_are_distinct() {
        let names: std::collections::HashSet<_> = Reg::all().map(|r| r.abi_name()).collect();
        assert_eq!(names.len(), 32);
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), Reg::COUNT);
    }

    #[test]
    fn display_matches_abi_name() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::T6.to_string(), "t6");
    }
}
