//! Fixed 32-bit instruction encoding.
//!
//! Every [`Inst`] encodes to exactly one 32-bit word. The encoding is
//! deliberately regular (unlike RISC-V's): a 6-bit opcode in the low bits and
//! three 5-bit register fields, with immediates occupying the upper bits.
//!
//! | format | `[5:0]` | `[10:6]` | `[15:11]` | `[31:16]` |
//! |---|---|---|---|---|
//! | R | opcode | rd | rs1 | rs2 in `[20:16]` |
//! | I | opcode | rd | rs1 | imm16 (signed) |
//! | load | opcode | rd | rs1 | offset16 (signed bytes) |
//! | store | opcode | rs2 | rs1 | offset16 (signed bytes) |
//! | branch | opcode | rs1 | rs2 | offset16 (signed words) |
//! | jal | opcode | rd | imm21 in `[31:11]` (signed words) | |
//! | movz/movk | opcode | rd | sh16 in `[12:11]` | imm16 |
//! | csr | opcode | rd | rs1 | csr12 in `[27:16]` |
//! | shift | opcode | rd | rs1 | shamt6 in `[21:16]` |
//!
//! Branch offsets span ±128 KiB and `jal` spans ±4 MiB; the [`Assembler`]
//! reports an [`EncodeError`] if a generated program exceeds these.
//!
//! [`Assembler`]: crate::asm::Assembler

use crate::inst::{BranchCond, CsrOp, Inst, MemWidth};
use crate::reg::Reg;
use std::fmt;

/// Error produced when an instruction's fields do not fit its encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset is outside the encodable range.
    ImmOutOfRange {
        /// The instruction being encoded (display form is in the message).
        inst: Inst,
        /// The offending value.
        value: i64,
        /// Number of signed bits available.
        bits: u32,
    },
    /// A control-flow byte offset is not a multiple of 4.
    MisalignedOffset {
        /// The instruction being encoded.
        inst: Inst,
        /// The offending byte offset.
        off: i32,
    },
    /// A shift amount is 64 or more.
    ShiftTooLarge {
        /// The instruction being encoded.
        inst: Inst,
        /// The offending shift amount.
        sh: u8,
    },
    /// A CSR address does not fit in 12 bits.
    CsrOutOfRange {
        /// The offending CSR address.
        csr: u16,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { inst, value, bits } => {
                write!(
                    f,
                    "immediate {value} does not fit in {bits} signed bits: `{inst}`"
                )
            }
            EncodeError::MisalignedOffset { inst, off } => {
                write!(
                    f,
                    "control-flow offset {off} is not a multiple of 4: `{inst}`"
                )
            }
            EncodeError::ShiftTooLarge { inst, sh } => {
                write!(f, "shift amount {sh} exceeds 63: `{inst}`")
            }
            EncodeError::CsrOutOfRange { csr } => {
                write!(f, "csr address {csr:#x} does not fit in 12 bits")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when a 32-bit word is not a valid instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode values. Grouped by format; the decoder matches on these.
mod op {
    pub const ADD: u32 = 0;
    pub const SUB: u32 = 1;
    pub const AND: u32 = 2;
    pub const OR: u32 = 3;
    pub const XOR: u32 = 4;
    pub const SLL: u32 = 5;
    pub const SRL: u32 = 6;
    pub const SRA: u32 = 7;
    pub const SLT: u32 = 8;
    pub const SLTU: u32 = 9;
    pub const MUL: u32 = 10;
    pub const MULH: u32 = 11;
    pub const DIV: u32 = 12;
    pub const DIVU: u32 = 13;
    pub const REM: u32 = 14;
    pub const REMU: u32 = 15;
    pub const FADD: u32 = 16;
    pub const FMUL: u32 = 17;
    pub const FDIV: u32 = 18;
    pub const ADDI: u32 = 19;
    pub const ANDI: u32 = 20;
    pub const ORI: u32 = 21;
    pub const XORI: u32 = 22;
    pub const SLTI: u32 = 23;
    pub const SLTIU: u32 = 24;
    pub const SLLI: u32 = 25;
    pub const SRLI: u32 = 26;
    pub const SRAI: u32 = 27;
    pub const MOVZ: u32 = 28;
    pub const MOVK: u32 = 29;
    pub const LB: u32 = 30;
    pub const LBU: u32 = 31;
    pub const LH: u32 = 32;
    pub const LHU: u32 = 33;
    pub const LW: u32 = 34;
    pub const LWU: u32 = 35;
    pub const LD: u32 = 36;
    pub const SB: u32 = 37;
    pub const SH: u32 = 38;
    pub const SW: u32 = 39;
    pub const SD: u32 = 40;
    pub const BEQ: u32 = 41;
    pub const BNE: u32 = 42;
    pub const BLT: u32 = 43;
    pub const BGE: u32 = 44;
    pub const BLTU: u32 = 45;
    pub const BGEU: u32 = 46;
    pub const JAL: u32 = 47;
    pub const JALR: u32 = 48;
    pub const ECALL: u32 = 49;
    pub const EBREAK: u32 = 50;
    pub const SRET: u32 = 51;
    pub const MRET: u32 = 52;
    pub const WFI: u32 = 53;
    pub const FENCE: u32 = 54;
    pub const FENCEI: u32 = 55;
    pub const SFENCE: u32 = 56;
    pub const CSRRW: u32 = 57;
    pub const CSRRS: u32 = 58;
    pub const CSRRC: u32 = 59;
    pub const PURGE: u32 = 60;
}

fn fits_signed(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&value)
}

fn check_imm(inst: Inst, value: i64, bits: u32) -> Result<u32, EncodeError> {
    if fits_signed(value, bits) {
        Ok((value as u32) & ((1u32 << bits) - 1))
    } else {
        Err(EncodeError::ImmOutOfRange { inst, value, bits })
    }
}

fn check_word_off(inst: Inst, off: i32, bits: u32) -> Result<u32, EncodeError> {
    if off % 4 != 0 {
        return Err(EncodeError::MisalignedOffset { inst, off });
    }
    check_imm(inst, (off / 4) as i64, bits)
}

fn r(op: u32, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    op | (rd.index() as u32) << 6 | (rs1.index() as u32) << 11 | (rs2.index() as u32) << 16
}

fn i_type(inst: Inst, op: u32, rd: Reg, rs1: Reg, imm: i32) -> Result<u32, EncodeError> {
    let imm16 = check_imm(inst, imm as i64, 16)?;
    Ok(op | (rd.index() as u32) << 6 | (rs1.index() as u32) << 11 | imm16 << 16)
}

fn shift(inst: Inst, op: u32, rd: Reg, rs1: Reg, sh: u8) -> Result<u32, EncodeError> {
    if sh >= 64 {
        return Err(EncodeError::ShiftTooLarge { inst, sh });
    }
    Ok(op | (rd.index() as u32) << 6 | (rs1.index() as u32) << 11 | (sh as u32) << 16)
}

/// Encodes an instruction to its 32-bit word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate, offset, shift amount, or CSR
/// address does not fit in the encoding.
pub fn encode(inst: Inst) -> Result<u32, EncodeError> {
    use Inst::*;
    Ok(match inst {
        Add { rd, rs1, rs2 } => r(op::ADD, rd, rs1, rs2),
        Sub { rd, rs1, rs2 } => r(op::SUB, rd, rs1, rs2),
        And { rd, rs1, rs2 } => r(op::AND, rd, rs1, rs2),
        Or { rd, rs1, rs2 } => r(op::OR, rd, rs1, rs2),
        Xor { rd, rs1, rs2 } => r(op::XOR, rd, rs1, rs2),
        Sll { rd, rs1, rs2 } => r(op::SLL, rd, rs1, rs2),
        Srl { rd, rs1, rs2 } => r(op::SRL, rd, rs1, rs2),
        Sra { rd, rs1, rs2 } => r(op::SRA, rd, rs1, rs2),
        Slt { rd, rs1, rs2 } => r(op::SLT, rd, rs1, rs2),
        Sltu { rd, rs1, rs2 } => r(op::SLTU, rd, rs1, rs2),
        Mul { rd, rs1, rs2 } => r(op::MUL, rd, rs1, rs2),
        Mulh { rd, rs1, rs2 } => r(op::MULH, rd, rs1, rs2),
        Div { rd, rs1, rs2 } => r(op::DIV, rd, rs1, rs2),
        Divu { rd, rs1, rs2 } => r(op::DIVU, rd, rs1, rs2),
        Rem { rd, rs1, rs2 } => r(op::REM, rd, rs1, rs2),
        Remu { rd, rs1, rs2 } => r(op::REMU, rd, rs1, rs2),
        Fadd { rd, rs1, rs2 } => r(op::FADD, rd, rs1, rs2),
        Fmul { rd, rs1, rs2 } => r(op::FMUL, rd, rs1, rs2),
        Fdiv { rd, rs1, rs2 } => r(op::FDIV, rd, rs1, rs2),
        Addi { rd, rs1, imm } => i_type(inst, op::ADDI, rd, rs1, imm)?,
        Andi { rd, rs1, imm } => i_type(inst, op::ANDI, rd, rs1, imm)?,
        Ori { rd, rs1, imm } => i_type(inst, op::ORI, rd, rs1, imm)?,
        Xori { rd, rs1, imm } => i_type(inst, op::XORI, rd, rs1, imm)?,
        Slti { rd, rs1, imm } => i_type(inst, op::SLTI, rd, rs1, imm)?,
        Sltiu { rd, rs1, imm } => i_type(inst, op::SLTIU, rd, rs1, imm)?,
        Slli { rd, rs1, sh } => shift(inst, op::SLLI, rd, rs1, sh)?,
        Srli { rd, rs1, sh } => shift(inst, op::SRLI, rd, rs1, sh)?,
        Srai { rd, rs1, sh } => shift(inst, op::SRAI, rd, rs1, sh)?,
        Movz { rd, imm16, sh16 } => {
            debug_assert!(sh16 < 4);
            op::MOVZ | (rd.index() as u32) << 6 | ((sh16 & 3) as u32) << 11 | (imm16 as u32) << 16
        }
        Movk { rd, imm16, sh16 } => {
            debug_assert!(sh16 < 4);
            op::MOVK | (rd.index() as u32) << 6 | ((sh16 & 3) as u32) << 11 | (imm16 as u32) << 16
        }
        Load {
            rd,
            rs1,
            off,
            width,
            signed,
        } => {
            let o = match (width, signed) {
                (MemWidth::B, true) => op::LB,
                (MemWidth::B, false) => op::LBU,
                (MemWidth::H, true) => op::LH,
                (MemWidth::H, false) => op::LHU,
                (MemWidth::W, true) => op::LW,
                (MemWidth::W, false) => op::LWU,
                (MemWidth::D, _) => op::LD,
            };
            i_type(inst, o, rd, rs1, off)?
        }
        Store {
            rs2,
            rs1,
            off,
            width,
        } => {
            let o = match width {
                MemWidth::B => op::SB,
                MemWidth::H => op::SH,
                MemWidth::W => op::SW,
                MemWidth::D => op::SD,
            };
            i_type(inst, o, rs2, rs1, off)?
        }
        Branch {
            cond,
            rs1,
            rs2,
            off,
        } => {
            let o = match cond {
                BranchCond::Eq => op::BEQ,
                BranchCond::Ne => op::BNE,
                BranchCond::Lt => op::BLT,
                BranchCond::Ge => op::BGE,
                BranchCond::Ltu => op::BLTU,
                BranchCond::Geu => op::BGEU,
            };
            let w = check_word_off(inst, off, 16)?;
            o | (rs1.index() as u32) << 6 | (rs2.index() as u32) << 11 | w << 16
        }
        Jal { rd, off } => {
            let w = check_word_off(inst, off, 21)?;
            op::JAL | (rd.index() as u32) << 6 | w << 11
        }
        Jalr { rd, rs1, off } => i_type(inst, op::JALR, rd, rs1, off)?,
        Ecall => op::ECALL,
        Ebreak => op::EBREAK,
        Sret => op::SRET,
        Mret => op::MRET,
        Wfi => op::WFI,
        Fence => op::FENCE,
        FenceI => op::FENCEI,
        SfenceVma => op::SFENCE,
        Csr {
            op: csr_op,
            rd,
            rs1,
            csr,
        } => {
            if csr >= 1 << 12 {
                return Err(EncodeError::CsrOutOfRange { csr });
            }
            let o = match csr_op {
                CsrOp::Rw => op::CSRRW,
                CsrOp::Rs => op::CSRRS,
                CsrOp::Rc => op::CSRRC,
            };
            o | (rd.index() as u32) << 6 | (rs1.index() as u32) << 11 | (csr as u32) << 16
        }
        Purge => op::PURGE,
    })
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn field_rd(word: u32) -> Reg {
    Reg::new(((word >> 6) & 0x1f) as u8)
}

fn field_rs1(word: u32) -> Reg {
    Reg::new(((word >> 11) & 0x1f) as u8)
}

fn field_rs2(word: u32) -> Reg {
    Reg::new(((word >> 16) & 0x1f) as u8)
}

fn field_imm16(word: u32) -> i32 {
    sext(word >> 16, 16)
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode is unassigned.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x3f;
    let rd = field_rd(word);
    let rs1 = field_rs1(word);
    let rs2 = field_rs2(word);
    let imm = field_imm16(word);
    Ok(match opcode {
        op::ADD => Inst::Add { rd, rs1, rs2 },
        op::SUB => Inst::Sub { rd, rs1, rs2 },
        op::AND => Inst::And { rd, rs1, rs2 },
        op::OR => Inst::Or { rd, rs1, rs2 },
        op::XOR => Inst::Xor { rd, rs1, rs2 },
        op::SLL => Inst::Sll { rd, rs1, rs2 },
        op::SRL => Inst::Srl { rd, rs1, rs2 },
        op::SRA => Inst::Sra { rd, rs1, rs2 },
        op::SLT => Inst::Slt { rd, rs1, rs2 },
        op::SLTU => Inst::Sltu { rd, rs1, rs2 },
        op::MUL => Inst::Mul { rd, rs1, rs2 },
        op::MULH => Inst::Mulh { rd, rs1, rs2 },
        op::DIV => Inst::Div { rd, rs1, rs2 },
        op::DIVU => Inst::Divu { rd, rs1, rs2 },
        op::REM => Inst::Rem { rd, rs1, rs2 },
        op::REMU => Inst::Remu { rd, rs1, rs2 },
        op::FADD => Inst::Fadd { rd, rs1, rs2 },
        op::FMUL => Inst::Fmul { rd, rs1, rs2 },
        op::FDIV => Inst::Fdiv { rd, rs1, rs2 },
        op::ADDI => Inst::Addi { rd, rs1, imm },
        op::ANDI => Inst::Andi { rd, rs1, imm },
        op::ORI => Inst::Ori { rd, rs1, imm },
        op::XORI => Inst::Xori { rd, rs1, imm },
        op::SLTI => Inst::Slti { rd, rs1, imm },
        op::SLTIU => Inst::Sltiu { rd, rs1, imm },
        op::SLLI => Inst::Slli {
            rd,
            rs1,
            sh: ((word >> 16) & 0x3f) as u8,
        },
        op::SRLI => Inst::Srli {
            rd,
            rs1,
            sh: ((word >> 16) & 0x3f) as u8,
        },
        op::SRAI => Inst::Srai {
            rd,
            rs1,
            sh: ((word >> 16) & 0x3f) as u8,
        },
        op::MOVZ => Inst::Movz {
            rd,
            imm16: (word >> 16) as u16,
            sh16: ((word >> 11) & 3) as u8,
        },
        op::MOVK => Inst::Movk {
            rd,
            imm16: (word >> 16) as u16,
            sh16: ((word >> 11) & 3) as u8,
        },
        op::LB => load(rd, rs1, imm, MemWidth::B, true),
        op::LBU => load(rd, rs1, imm, MemWidth::B, false),
        op::LH => load(rd, rs1, imm, MemWidth::H, true),
        op::LHU => load(rd, rs1, imm, MemWidth::H, false),
        op::LW => load(rd, rs1, imm, MemWidth::W, true),
        op::LWU => load(rd, rs1, imm, MemWidth::W, false),
        op::LD => load(rd, rs1, imm, MemWidth::D, true),
        op::SB => store(rd, rs1, imm, MemWidth::B),
        op::SH => store(rd, rs1, imm, MemWidth::H),
        op::SW => store(rd, rs1, imm, MemWidth::W),
        op::SD => store(rd, rs1, imm, MemWidth::D),
        op::BEQ => branch(BranchCond::Eq, word),
        op::BNE => branch(BranchCond::Ne, word),
        op::BLT => branch(BranchCond::Lt, word),
        op::BGE => branch(BranchCond::Ge, word),
        op::BLTU => branch(BranchCond::Ltu, word),
        op::BGEU => branch(BranchCond::Geu, word),
        op::JAL => Inst::Jal {
            rd,
            off: sext(word >> 11, 21) * 4,
        },
        op::JALR => Inst::Jalr { rd, rs1, off: imm },
        op::ECALL => Inst::Ecall,
        op::EBREAK => Inst::Ebreak,
        op::SRET => Inst::Sret,
        op::MRET => Inst::Mret,
        op::WFI => Inst::Wfi,
        op::FENCE => Inst::Fence,
        op::FENCEI => Inst::FenceI,
        op::SFENCE => Inst::SfenceVma,
        op::CSRRW => csr_inst(CsrOp::Rw, word),
        op::CSRRS => csr_inst(CsrOp::Rs, word),
        op::CSRRC => csr_inst(CsrOp::Rc, word),
        op::PURGE => Inst::Purge,
        _ => return Err(DecodeError { word }),
    })
}

fn load(rd: Reg, rs1: Reg, off: i32, width: MemWidth, signed: bool) -> Inst {
    Inst::Load {
        rd,
        rs1,
        off,
        width,
        signed,
    }
}

fn store(rs2: Reg, rs1: Reg, off: i32, width: MemWidth) -> Inst {
    Inst::Store {
        rs2,
        rs1,
        off,
        width,
    }
}

fn branch(cond: BranchCond, word: u32) -> Inst {
    Inst::Branch {
        cond,
        rs1: field_rd(word),
        rs2: field_rs1(word),
        off: field_imm16(word) * 4,
    }
}

fn csr_inst(op: CsrOp, word: u32) -> Inst {
    Inst::Csr {
        op,
        rd: field_rd(word),
        rs1: field_rs1(word),
        csr: ((word >> 16) & 0xfff) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(inst: Inst) {
        let word = encode(inst).unwrap_or_else(|e| panic!("encode failed: {e}"));
        let back = decode(word).unwrap_or_else(|e| panic!("decode failed: {e}"));
        assert_eq!(
            inst, back,
            "round trip mismatch for `{inst}` ({word:#010x})"
        );
    }

    #[test]
    fn round_trip_r_type() {
        for (rd, rs1, rs2) in [(Reg::A0, Reg::A1, Reg::A2), (Reg::ZERO, Reg::T6, Reg::SP)] {
            round_trip(Inst::Add { rd, rs1, rs2 });
            round_trip(Inst::Sub { rd, rs1, rs2 });
            round_trip(Inst::Mul { rd, rs1, rs2 });
            round_trip(Inst::Divu { rd, rs1, rs2 });
            round_trip(Inst::Fdiv { rd, rs1, rs2 });
            round_trip(Inst::Sltu { rd, rs1, rs2 });
        }
    }

    #[test]
    fn round_trip_immediates() {
        for imm in [-32768, -1, 0, 1, 32767] {
            round_trip(Inst::Addi {
                rd: Reg::A0,
                rs1: Reg::A1,
                imm,
            });
            round_trip(Inst::Xori {
                rd: Reg::T0,
                rs1: Reg::T1,
                imm,
            });
        }
        for sh in [0u8, 1, 31, 63] {
            round_trip(Inst::Slli {
                rd: Reg::A0,
                rs1: Reg::A0,
                sh,
            });
            round_trip(Inst::Srai {
                rd: Reg::A0,
                rs1: Reg::A0,
                sh,
            });
        }
    }

    #[test]
    fn round_trip_mov_wide() {
        for sh16 in 0..4u8 {
            round_trip(Inst::Movz {
                rd: Reg::A3,
                imm16: 0xbeef,
                sh16,
            });
            round_trip(Inst::Movk {
                rd: Reg::A3,
                imm16: 0x1234,
                sh16,
            });
        }
    }

    #[test]
    fn round_trip_loads_stores() {
        for width in MemWidth::ALL {
            for off in [-32768, -8, 0, 8, 32767] {
                round_trip(Inst::Store {
                    rs2: Reg::A1,
                    rs1: Reg::SP,
                    off,
                    width,
                });
                round_trip(Inst::Load {
                    rd: Reg::A0,
                    rs1: Reg::SP,
                    off,
                    width,
                    signed: true,
                });
                if width != MemWidth::D {
                    round_trip(Inst::Load {
                        rd: Reg::A0,
                        rs1: Reg::SP,
                        off,
                        width,
                        signed: false,
                    });
                }
            }
        }
    }

    #[test]
    fn round_trip_branches() {
        for cond in BranchCond::ALL {
            for off in [-131072, -4, 0, 4, 131068] {
                round_trip(Inst::Branch {
                    cond,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    off,
                });
            }
        }
    }

    #[test]
    fn round_trip_jumps() {
        for off in [-4 << 20, -4, 0, 4, (1 << 22) - 4] {
            round_trip(Inst::Jal { rd: Reg::RA, off });
        }
        round_trip(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            off: 0,
        });
        round_trip(Inst::Jalr {
            rd: Reg::RA,
            rs1: Reg::T0,
            off: -16,
        });
    }

    #[test]
    fn round_trip_system() {
        for inst in [
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Sret,
            Inst::Mret,
            Inst::Wfi,
            Inst::Fence,
            Inst::FenceI,
            Inst::SfenceVma,
            Inst::Purge,
        ] {
            round_trip(inst);
        }
        for op in [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc] {
            round_trip(Inst::Csr {
                op,
                rd: Reg::A0,
                rs1: Reg::A1,
                csr: 0x342,
            });
        }
    }

    #[test]
    fn imm_out_of_range_rejected() {
        let err = encode(Inst::Addi {
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 40000,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::ImmOutOfRange { bits: 16, .. }));
    }

    #[test]
    fn misaligned_branch_rejected() {
        let err = encode(Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            off: 6,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::MisalignedOffset { off: 6, .. }));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let err = encode(Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            off: 1 << 20,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::ImmOutOfRange { .. }));
    }

    #[test]
    fn shift_too_large_rejected() {
        let err = encode(Inst::Slli {
            rd: Reg::A0,
            rs1: Reg::A0,
            sh: 64,
        })
        .unwrap_err();
        assert!(matches!(err, EncodeError::ShiftTooLarge { sh: 64, .. }));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(decode(63).is_err());
        assert!(decode(61).is_err());
    }

    #[test]
    fn all_valid_opcodes_decode() {
        let mut seen = 0;
        for opc in 0..64u32 {
            if decode(opc).is_ok() {
                seen += 1;
            }
        }
        assert_eq!(seen, 61);
    }
}
