//! Privilege levels.
//!
//! The ISA has the three RISC-V privilege levels. The untrusted OS runs in
//! supervisor mode, applications and enclaves run in user mode, and the
//! security monitor is the *only* software that ever runs in machine mode
//! (paper Section 2.2). Machine mode is where MI6 turns speculation off and
//! restricts instruction fetch (paper Section 6.2).

use std::fmt;

/// A privilege level, ordered from least to most privileged.
///
/// ```
/// use mi6_isa::PrivLevel;
/// assert!(PrivLevel::User < PrivLevel::Machine);
/// assert_eq!(PrivLevel::Supervisor.encode(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PrivLevel {
    /// User mode (applications, enclave code).
    #[default]
    User,
    /// Supervisor mode (the untrusted OS).
    Supervisor,
    /// Machine mode (the security monitor, and nothing else).
    Machine,
}

impl PrivLevel {
    /// All levels, least privileged first.
    pub const ALL: [PrivLevel; 3] = [PrivLevel::User, PrivLevel::Supervisor, PrivLevel::Machine];

    /// RISC-V style 2-bit encoding (U=0, S=1, M=3).
    pub const fn encode(self) -> u8 {
        match self {
            PrivLevel::User => 0,
            PrivLevel::Supervisor => 1,
            PrivLevel::Machine => 3,
        }
    }

    /// Decodes a 2-bit privilege encoding. Returns `None` for the reserved
    /// hypervisor encoding `2` and anything above 3.
    pub const fn decode(bits: u8) -> Option<PrivLevel> {
        match bits {
            0 => Some(PrivLevel::User),
            1 => Some(PrivLevel::Supervisor),
            3 => Some(PrivLevel::Machine),
            _ => None,
        }
    }

    /// Whether code at this level may execute privileged instructions
    /// reserved to `at_least`.
    pub fn can_access(self, at_least: PrivLevel) -> bool {
        self >= at_least
    }

    /// Short lowercase name (`"user"`, `"supervisor"`, `"machine"`).
    pub const fn name(self) -> &'static str {
        match self {
            PrivLevel::User => "user",
            PrivLevel::Supervisor => "supervisor",
            PrivLevel::Machine => "machine",
        }
    }
}

impl fmt::Display for PrivLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_privilege() {
        assert!(PrivLevel::User < PrivLevel::Supervisor);
        assert!(PrivLevel::Supervisor < PrivLevel::Machine);
    }

    #[test]
    fn encode_decode_round_trip() {
        for p in PrivLevel::ALL {
            assert_eq!(PrivLevel::decode(p.encode()), Some(p));
        }
    }

    #[test]
    fn hypervisor_encoding_rejected() {
        assert_eq!(PrivLevel::decode(2), None);
        assert_eq!(PrivLevel::decode(4), None);
    }

    #[test]
    fn access_control() {
        assert!(PrivLevel::Machine.can_access(PrivLevel::Supervisor));
        assert!(!PrivLevel::User.can_access(PrivLevel::Supervisor));
        assert!(PrivLevel::Supervisor.can_access(PrivLevel::Supervisor));
    }

    #[test]
    fn display() {
        assert_eq!(PrivLevel::Machine.to_string(), "machine");
    }
}
