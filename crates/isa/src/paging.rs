//! Virtual memory: Sv39-like three-level paging.
//!
//! Virtual addresses are 39 bits (three 9-bit VPN fields plus a 12-bit page
//! offset); physical addresses are up to 56 bits. Page-table entries follow
//! the RISC-V layout: permission bits in the low byte, the physical page
//! number starting at bit 10. Leaf entries may appear at any level, giving
//! 4 KiB, 2 MiB, and 1 GiB pages.
//!
//! MI6 relevance: every page-table-walk access is a *physical* memory access
//! and is therefore subject to the DRAM-region check (paper Section 5.3).
//! Because DRAM regions are large and aligned, no 4 KiB page straddles two
//! regions, so a region permission established at walk time can be cached in
//! the TLB entry.

use std::fmt;

/// Number of bits in the page offset.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Number of page-table levels (root is level 2, leaves at level 0).
pub const LEVELS: usize = 3;
/// Number of PTEs per page-table page.
pub const PTES_PER_PAGE: u64 = 512;
/// Total virtual address bits.
pub const VA_BITS: u32 = 39;

/// A virtual byte address.
///
/// ```
/// use mi6_isa::VirtAddr;
/// let va = VirtAddr::new((5 << 30) | (3 << 21) | (7 << 12) | 0xabc);
/// assert_eq!(va.offset(), 0xabc);
/// assert_eq!(va.vpn(0), 7);
/// assert_eq!(va.vpn(1), 3);
/// assert_eq!(va.vpn(2), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Wraps a raw 64-bit value.
    pub const fn new(addr: u64) -> VirtAddr {
        VirtAddr(addr)
    }

    /// The raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte offset within the 4 KiB page.
    pub const fn offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The 9-bit virtual page number field for a walk level (0 = leaf level).
    ///
    /// # Panics
    ///
    /// Panics if `level >= 3`.
    pub const fn vpn(self, level: usize) -> u64 {
        assert!(level < LEVELS);
        (self.0 >> (PAGE_SHIFT + 9 * level as u32)) & 0x1ff
    }

    /// The full virtual page number (all three fields).
    pub const fn page_number(self) -> u64 {
        (self.0 >> PAGE_SHIFT) & ((1 << 27) - 1)
    }

    /// Whether the address is canonical for 39-bit virtual addressing
    /// (bits 63..39 equal bit 38).
    pub const fn is_canonical(self) -> bool {
        let top = self.0 >> (VA_BITS - 1);
        top == 0 || top == (1 << (64 - VA_BITS + 1)) - 1
    }

    /// The address rounded down to its page base.
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> VirtAddr {
        VirtAddr(v)
    }
}

/// A physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Wraps a raw physical address.
    pub const fn new(addr: u64) -> PhysAddr {
        PhysAddr(addr)
    }

    /// The raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte offset within the 4 KiB page.
    pub const fn offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// The physical page number.
    pub const fn page_number(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// The address rounded down to its page base.
    pub const fn page_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// The 64-byte cache-line address (address with line offset cleared).
    pub const fn line_base(self) -> PhysAddr {
        PhysAddr(self.0 & !63)
    }
}

impl fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> PhysAddr {
        PhysAddr(v)
    }
}

/// A page-table entry.
///
/// Layout (RISC-V Sv39 style):
/// - bit 0: valid
/// - bit 1: readable
/// - bit 2: writable
/// - bit 3: executable
/// - bit 4: user-accessible
/// - bits 10..54: physical page number
///
/// An entry with `V=1` and `R=W=X=0` is a pointer to the next-level table;
/// any other valid entry is a leaf.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PageTableEntry(pub u64);

impl PageTableEntry {
    /// Valid bit.
    pub const V: u64 = 1 << 0;
    /// Readable bit.
    pub const R: u64 = 1 << 1;
    /// Writable bit.
    pub const W: u64 = 1 << 2;
    /// Executable bit.
    pub const X: u64 = 1 << 3;
    /// User-accessible bit.
    pub const U: u64 = 1 << 4;

    /// An invalid (all-zero) entry.
    pub const INVALID: PageTableEntry = PageTableEntry(0);

    /// Builds a leaf entry mapping to `ppn` with the given permissions.
    pub const fn leaf(ppn: u64, r: bool, w: bool, x: bool, user: bool) -> PageTableEntry {
        let mut bits = Self::V | (ppn << 10);
        if r {
            bits |= Self::R;
        }
        if w {
            bits |= Self::W;
        }
        if x {
            bits |= Self::X;
        }
        if user {
            bits |= Self::U;
        }
        PageTableEntry(bits)
    }

    /// Builds a non-leaf entry pointing at the next-level table page.
    pub const fn table(ppn: u64) -> PageTableEntry {
        PageTableEntry(Self::V | (ppn << 10))
    }

    /// Whether the entry is valid.
    pub const fn valid(self) -> bool {
        self.0 & Self::V != 0
    }

    /// Whether this valid entry is a leaf (any of R/W/X set).
    pub const fn is_leaf(self) -> bool {
        self.0 & (Self::R | Self::W | Self::X) != 0
    }

    /// Readable permission.
    pub const fn readable(self) -> bool {
        self.0 & Self::R != 0
    }

    /// Writable permission.
    pub const fn writable(self) -> bool {
        self.0 & Self::W != 0
    }

    /// Executable permission.
    pub const fn executable(self) -> bool {
        self.0 & Self::X != 0
    }

    /// User-accessible permission.
    pub const fn user(self) -> bool {
        self.0 & Self::U != 0
    }

    /// The physical page number field.
    pub const fn ppn(self) -> u64 {
        (self.0 >> 10) & ((1 << 44) - 1)
    }

    /// The raw bits.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PageTableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid() {
            return write!(f, "PageTableEntry(invalid)");
        }
        write!(
            f,
            "PageTableEntry(ppn={:#x}{}{}{}{}{})",
            self.ppn(),
            if self.is_leaf() { ", leaf" } else { ", table" },
            if self.readable() { " R" } else { "" },
            if self.writable() { " W" } else { "" },
            if self.executable() { " X" } else { "" },
            if self.user() { " U" } else { "" },
        )
    }
}

/// The kind of memory access being translated, for permission checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

impl AccessKind {
    /// Whether `pte` grants this kind of access for the given mode.
    ///
    /// Supervisor code may not touch user pages (no `sum` relaxation is
    /// modeled — the MI6 OS uses an identity table of supervisor pages).
    pub fn permitted(self, pte: PageTableEntry, user_mode: bool) -> bool {
        if user_mode != pte.user() {
            return false;
        }
        match self {
            AccessKind::Fetch => pte.executable(),
            AccessKind::Load => pte.readable(),
            AccessKind::Store => pte.writable(),
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Fetch => "fetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// The size in bytes of the region mapped by a leaf at `level`
/// (level 0 → 4 KiB, level 1 → 2 MiB, level 2 → 1 GiB).
pub const fn leaf_span(level: usize) -> u64 {
    PAGE_SIZE << (9 * level as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_fields() {
        // va = vpn2=5, vpn1=3, vpn0=7, offset=0x123
        let va = VirtAddr::new((5 << 30) | (3 << 21) | (7 << 12) | 0x123);
        assert_eq!(va.vpn(2), 5);
        assert_eq!(va.vpn(1), 3);
        assert_eq!(va.vpn(0), 7);
        assert_eq!(va.offset(), 0x123);
    }

    #[test]
    fn canonical_addresses() {
        assert!(VirtAddr::new(0x0000_003f_ffff_ffff).is_canonical());
        assert!(VirtAddr::new(0xffff_ffc0_0000_0000).is_canonical());
        assert!(!VirtAddr::new(0x0000_0040_0000_0000).is_canonical());
    }

    #[test]
    fn pte_leaf_round_trip() {
        let pte = PageTableEntry::leaf(0x1234, true, false, true, true);
        assert!(pte.valid());
        assert!(pte.is_leaf());
        assert!(pte.readable());
        assert!(!pte.writable());
        assert!(pte.executable());
        assert!(pte.user());
        assert_eq!(pte.ppn(), 0x1234);
    }

    #[test]
    fn pte_table_is_not_leaf() {
        let pte = PageTableEntry::table(0x55);
        assert!(pte.valid());
        assert!(!pte.is_leaf());
        assert_eq!(pte.ppn(), 0x55);
    }

    #[test]
    fn invalid_pte() {
        assert!(!PageTableEntry::INVALID.valid());
    }

    #[test]
    fn access_permission_checks() {
        let user_rx = PageTableEntry::leaf(1, true, false, true, true);
        assert!(AccessKind::Fetch.permitted(user_rx, true));
        assert!(AccessKind::Load.permitted(user_rx, true));
        assert!(!AccessKind::Store.permitted(user_rx, true));
        // supervisor may not touch user pages
        assert!(!AccessKind::Load.permitted(user_rx, false));
        let sup_rw = PageTableEntry::leaf(1, true, true, false, false);
        assert!(AccessKind::Store.permitted(sup_rw, false));
        assert!(!AccessKind::Store.permitted(sup_rw, true));
    }

    #[test]
    fn leaf_spans() {
        assert_eq!(leaf_span(0), 4 << 10);
        assert_eq!(leaf_span(1), 2 << 20);
        assert_eq!(leaf_span(2), 1 << 30);
    }

    #[test]
    fn line_base() {
        assert_eq!(PhysAddr::new(0x1047).line_base(), PhysAddr::new(0x1040));
    }

    #[test]
    fn page_bases() {
        assert_eq!(VirtAddr::new(0x1fff).page_base(), VirtAddr::new(0x1000));
        assert_eq!(PhysAddr::new(0x1fff).page_base(), PhysAddr::new(0x1000));
    }
}
