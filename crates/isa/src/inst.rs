//! Instruction definitions.
//!
//! Every instruction the MI6 cores execute is a variant of [`Inst`]. The set
//! covers the integer RV64-style operations the SPEC-shaped workloads need
//! (ALU, mul/div, loads/stores, branches, jumps), the privileged instructions
//! required by the untrusted OS and the security monitor (`ecall`, `sret`,
//! `mret`, CSR accesses, fences), a small floating-point group that exercises
//! the FP/MUL/DIV pipeline, and the MI6 paper's new [`Inst::Purge`]
//! instruction.

use crate::reg::Reg;
use std::fmt;

/// Memory access width for loads and stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// All widths, smallest first.
    pub const ALL: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];
}

/// Branch comparison condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `rs1 == rs2`
    Eq,
    /// `rs1 != rs2`
    Ne,
    /// signed `rs1 < rs2`
    Lt,
    /// signed `rs1 >= rs2`
    Ge,
    /// unsigned `rs1 < rs2`
    Ltu,
    /// unsigned `rs1 >= rs2`
    Geu,
}

impl BranchCond {
    /// Evaluates the condition on two register values.
    ///
    /// ```
    /// use mi6_isa::BranchCond;
    /// assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// All conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];
}

/// CSR access operation (read-write / read-set / read-clear).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic swap: `rd = csr; csr = rs1`.
    Rw,
    /// Read and set bits: `rd = csr; csr |= rs1`.
    Rs,
    /// Read and clear bits: `rd = csr; csr &= !rs1`.
    Rc,
}

/// A decoded instruction.
///
/// Offsets in control-flow instructions are byte offsets relative to the
/// instruction's own PC and must be multiples of 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    // ---- register-register ALU (1-cycle ALU pipes) ----
    /// `rd = rs1 + rs2`
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2`
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 63)`
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 63)` (logical)
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 63)` (arithmetic)
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 <s rs2) ? 1 : 0`
    Slt { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 <u rs2) ? 1 : 0`
    Sltu { rd: Reg, rs1: Reg, rs2: Reg },

    // ---- multiply / divide (FP/MUL/DIV pipe, multi-cycle) ----
    /// `rd = rs1 * rs2` (low 64 bits)
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = (rs1 * rs2) >> 64` (signed high)
    Mulh { rd: Reg, rs1: Reg, rs2: Reg },
    /// signed division (RISC-V semantics: x/0 = -1, overflow wraps)
    Div { rd: Reg, rs1: Reg, rs2: Reg },
    /// unsigned division (x/0 = all ones)
    Divu { rd: Reg, rs1: Reg, rs2: Reg },
    /// signed remainder (x%0 = x)
    Rem { rd: Reg, rs1: Reg, rs2: Reg },
    /// unsigned remainder (x%0 = x)
    Remu { rd: Reg, rs1: Reg, rs2: Reg },

    // ---- floating point on f64 bit patterns (FP/MUL/DIV pipe) ----
    /// `rd = f64(rs1) + f64(rs2)` as bit patterns
    Fadd { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = f64(rs1) * f64(rs2)` as bit patterns
    Fmul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = f64(rs1) / f64(rs2)` as bit patterns
    Fdiv { rd: Reg, rs1: Reg, rs2: Reg },

    // ---- register-immediate ALU ----
    /// `rd = rs1 + imm` (also the canonical NOP as `addi x0,x0,0`)
    Addi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 & imm`
    Andi { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 | imm`
    Ori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 ^ imm`
    Xori { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = (rs1 <s imm) ? 1 : 0`
    Slti { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = (rs1 <u imm) ? 1 : 0`
    Sltiu { rd: Reg, rs1: Reg, imm: i32 },
    /// `rd = rs1 << sh`
    Slli { rd: Reg, rs1: Reg, sh: u8 },
    /// `rd = rs1 >> sh` (logical)
    Srli { rd: Reg, rs1: Reg, sh: u8 },
    /// `rd = rs1 >> sh` (arithmetic)
    Srai { rd: Reg, rs1: Reg, sh: u8 },

    // ---- wide-constant construction (ARM-style move wide) ----
    /// `rd = imm16 << (sh16 * 16)` (other bits zeroed)
    Movz { rd: Reg, imm16: u16, sh16: u8 },
    /// keep other bits, replace 16-bit field: `rd = (rd & !mask) | imm16 << (sh16*16)`
    Movk { rd: Reg, imm16: u16, sh16: u8 },

    // ---- memory ----
    /// Load `width` bytes from `rs1 + off` into `rd`.
    Load {
        rd: Reg,
        rs1: Reg,
        off: i32,
        width: MemWidth,
        /// Sign-extend the loaded value when true.
        signed: bool,
    },
    /// Store the low `width` bytes of `rs2` to `rs1 + off`.
    Store {
        rs2: Reg,
        rs1: Reg,
        off: i32,
        width: MemWidth,
    },

    // ---- control flow ----
    /// Conditional branch to `pc + off`.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        off: i32,
    },
    /// `rd = pc + 4; pc += off`
    Jal { rd: Reg, off: i32 },
    /// `rd = pc + 4; pc = (rs1 + off) & !1`
    Jalr { rd: Reg, rs1: Reg, off: i32 },

    // ---- system ----
    /// Environment call (syscall / monitor call depending on privilege).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from supervisor trap.
    Sret,
    /// Return from machine trap.
    Mret,
    /// Wait for interrupt.
    Wfi,
    /// Memory fence (orders the store buffer).
    Fence,
    /// Instruction fence (synchronizes I-cache with stores).
    FenceI,
    /// Supervisor fence: flush TLBs and translation caches.
    SfenceVma,
    /// CSR access.
    Csr {
        op: CsrOp,
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    /// MI6's microarchitectural purge (paper Section 6.1): scrub all per-core
    /// microarchitectural state (L1 caches, TLBs, translation caches, branch
    /// predictors, in-flight bookkeeping). Machine-mode only.
    Purge,
}

impl Inst {
    /// Canonical no-op.
    pub const NOP: Inst = Inst::Addi {
        rd: Reg::ZERO,
        rs1: Reg::ZERO,
        imm: 0,
    };

    /// Convenience constructor for `add`.
    pub const fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst::Add { rd, rs1, rs2 }
    }

    /// Convenience constructor for `addi`.
    pub const fn addi(rd: Reg, rs1: Reg, imm: i32) -> Inst {
        Inst::Addi { rd, rs1, imm }
    }

    /// Convenience constructor for a 64-bit (`D`) load.
    pub const fn ld(rd: Reg, rs1: Reg, off: i32) -> Inst {
        Inst::Load {
            rd,
            rs1,
            off,
            width: MemWidth::D,
            signed: true,
        }
    }

    /// Convenience constructor for a 64-bit (`D`) store.
    pub const fn sd(rs2: Reg, rs1: Reg, off: i32) -> Inst {
        Inst::Store {
            rs2,
            rs1,
            off,
            width: MemWidth::D,
        }
    }

    /// True for conditional branches and unconditional jumps.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. }
        )
    }

    /// True for conditional branches only.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }

    /// True for instructions executed on the FP/MUL/DIV pipeline.
    pub fn is_muldiv_fp(&self) -> bool {
        matches!(
            self,
            Inst::Mul { .. }
                | Inst::Mulh { .. }
                | Inst::Div { .. }
                | Inst::Divu { .. }
                | Inst::Rem { .. }
                | Inst::Remu { .. }
                | Inst::Fadd { .. }
                | Inst::Fmul { .. }
                | Inst::Fdiv { .. }
        )
    }

    /// True for system instructions that serialize the pipeline (traps,
    /// returns, CSR accesses, fences, purge).
    pub fn is_system(&self) -> bool {
        matches!(
            self,
            Inst::Ecall
                | Inst::Ebreak
                | Inst::Sret
                | Inst::Mret
                | Inst::Wfi
                | Inst::Fence
                | Inst::FenceI
                | Inst::SfenceVma
                | Inst::Csr { .. }
                | Inst::Purge
        )
    }

    /// The destination register written by this instruction, if any.
    /// `Reg::ZERO` destinations are reported as `None` (writes to x0 are
    /// discarded architecturally).
    pub fn dest(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Add { rd, .. }
            | Inst::Sub { rd, .. }
            | Inst::And { rd, .. }
            | Inst::Or { rd, .. }
            | Inst::Xor { rd, .. }
            | Inst::Sll { rd, .. }
            | Inst::Srl { rd, .. }
            | Inst::Sra { rd, .. }
            | Inst::Slt { rd, .. }
            | Inst::Sltu { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Mulh { rd, .. }
            | Inst::Div { rd, .. }
            | Inst::Divu { rd, .. }
            | Inst::Rem { rd, .. }
            | Inst::Remu { rd, .. }
            | Inst::Fadd { rd, .. }
            | Inst::Fmul { rd, .. }
            | Inst::Fdiv { rd, .. }
            | Inst::Addi { rd, .. }
            | Inst::Andi { rd, .. }
            | Inst::Ori { rd, .. }
            | Inst::Xori { rd, .. }
            | Inst::Slti { rd, .. }
            | Inst::Sltiu { rd, .. }
            | Inst::Slli { rd, .. }
            | Inst::Srli { rd, .. }
            | Inst::Srai { rd, .. }
            | Inst::Movz { rd, .. }
            | Inst::Movk { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Csr { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Source registers read by this instruction (up to two; `Reg::ZERO`
    /// sources are kept — reading x0 is free but uniform handling is simpler).
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Inst::Add { rs1, rs2, .. }
            | Inst::Sub { rs1, rs2, .. }
            | Inst::And { rs1, rs2, .. }
            | Inst::Or { rs1, rs2, .. }
            | Inst::Xor { rs1, rs2, .. }
            | Inst::Sll { rs1, rs2, .. }
            | Inst::Srl { rs1, rs2, .. }
            | Inst::Sra { rs1, rs2, .. }
            | Inst::Slt { rs1, rs2, .. }
            | Inst::Sltu { rs1, rs2, .. }
            | Inst::Mul { rs1, rs2, .. }
            | Inst::Mulh { rs1, rs2, .. }
            | Inst::Div { rs1, rs2, .. }
            | Inst::Divu { rs1, rs2, .. }
            | Inst::Rem { rs1, rs2, .. }
            | Inst::Remu { rs1, rs2, .. }
            | Inst::Fadd { rs1, rs2, .. }
            | Inst::Fmul { rs1, rs2, .. }
            | Inst::Fdiv { rs1, rs2, .. }
            | Inst::Branch { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Inst::Addi { rs1, .. }
            | Inst::Andi { rs1, .. }
            | Inst::Ori { rs1, .. }
            | Inst::Xori { rs1, .. }
            | Inst::Slti { rs1, .. }
            | Inst::Sltiu { rs1, .. }
            | Inst::Slli { rs1, .. }
            | Inst::Srli { rs1, .. }
            | Inst::Srai { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::Jalr { rs1, .. }
            | Inst::Csr { rs1, .. } => (Some(rs1), None),
            Inst::Store { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            Inst::Movk { rd, .. } => (Some(rd), None),
            Inst::Movz { .. }
            | Inst::Jal { .. }
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::Sret
            | Inst::Mret
            | Inst::Wfi
            | Inst::Fence
            | Inst::FenceI
            | Inst::SfenceVma
            | Inst::Purge => (None, None),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Inst::Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Inst::And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Inst::Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Inst::Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Inst::Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Inst::Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Inst::Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Inst::Slt { rd, rs1, rs2 } => write!(f, "slt {rd}, {rs1}, {rs2}"),
            Inst::Sltu { rd, rs1, rs2 } => write!(f, "sltu {rd}, {rs1}, {rs2}"),
            Inst::Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Inst::Mulh { rd, rs1, rs2 } => write!(f, "mulh {rd}, {rs1}, {rs2}"),
            Inst::Div { rd, rs1, rs2 } => write!(f, "div {rd}, {rs1}, {rs2}"),
            Inst::Divu { rd, rs1, rs2 } => write!(f, "divu {rd}, {rs1}, {rs2}"),
            Inst::Rem { rd, rs1, rs2 } => write!(f, "rem {rd}, {rs1}, {rs2}"),
            Inst::Remu { rd, rs1, rs2 } => write!(f, "remu {rd}, {rs1}, {rs2}"),
            Inst::Fadd { rd, rs1, rs2 } => write!(f, "fadd {rd}, {rs1}, {rs2}"),
            Inst::Fmul { rd, rs1, rs2 } => write!(f, "fmul {rd}, {rs1}, {rs2}"),
            Inst::Fdiv { rd, rs1, rs2 } => write!(f, "fdiv {rd}, {rs1}, {rs2}"),
            Inst::Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Inst::Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm}"),
            Inst::Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm}"),
            Inst::Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm}"),
            Inst::Slti { rd, rs1, imm } => write!(f, "slti {rd}, {rs1}, {imm}"),
            Inst::Sltiu { rd, rs1, imm } => write!(f, "sltiu {rd}, {rs1}, {imm}"),
            Inst::Slli { rd, rs1, sh } => write!(f, "slli {rd}, {rs1}, {sh}"),
            Inst::Srli { rd, rs1, sh } => write!(f, "srli {rd}, {rs1}, {sh}"),
            Inst::Srai { rd, rs1, sh } => write!(f, "srai {rd}, {rs1}, {sh}"),
            Inst::Movz { rd, imm16, sh16 } => write!(f, "movz {rd}, {imm16:#x}, lsl {}", sh16 * 16),
            Inst::Movk { rd, imm16, sh16 } => write!(f, "movk {rd}, {imm16:#x}, lsl {}", sh16 * 16),
            Inst::Load {
                rd,
                rs1,
                off,
                width,
                signed,
            } => {
                let u = if signed { "" } else { "u" };
                let w = match width {
                    MemWidth::B => "b",
                    MemWidth::H => "h",
                    MemWidth::W => "w",
                    MemWidth::D => "d",
                };
                write!(f, "l{w}{u} {rd}, {off}({rs1})")
            }
            Inst::Store {
                rs2,
                rs1,
                off,
                width,
            } => {
                let w = match width {
                    MemWidth::B => "b",
                    MemWidth::H => "h",
                    MemWidth::W => "w",
                    MemWidth::D => "d",
                };
                write!(f, "s{w} {rs2}, {off}({rs1})")
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                off,
            } => {
                let c = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{c} {rs1}, {rs2}, {off}")
            }
            Inst::Jal { rd, off } => write!(f, "jal {rd}, {off}"),
            Inst::Jalr { rd, rs1, off } => write!(f, "jalr {rd}, {off}({rs1})"),
            Inst::Ecall => f.write_str("ecall"),
            Inst::Ebreak => f.write_str("ebreak"),
            Inst::Sret => f.write_str("sret"),
            Inst::Mret => f.write_str("mret"),
            Inst::Wfi => f.write_str("wfi"),
            Inst::Fence => f.write_str("fence"),
            Inst::FenceI => f.write_str("fence.i"),
            Inst::SfenceVma => f.write_str("sfence.vma"),
            Inst::Csr { op, rd, rs1, csr } => {
                let o = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                write!(f, "{o} {rd}, {csr:#x}, {rs1}")
            }
            Inst::Purge => f.write_str("purge"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_has_no_dest() {
        assert_eq!(Inst::NOP.dest(), None);
        assert!(!Inst::NOP.is_mem());
    }

    #[test]
    fn dest_skips_x0() {
        let i = Inst::add(Reg::ZERO, Reg::A0, Reg::A1);
        assert_eq!(i.dest(), None);
        let i = Inst::add(Reg::A0, Reg::A1, Reg::A2);
        assert_eq!(i.dest(), Some(Reg::A0));
    }

    #[test]
    fn classification() {
        assert!(Inst::ld(Reg::A0, Reg::SP, 0).is_load());
        assert!(Inst::sd(Reg::A0, Reg::SP, 0).is_store());
        assert!(Inst::Purge.is_system());
        assert!(Inst::Jal {
            rd: Reg::RA,
            off: 8
        }
        .is_control_flow());
        assert!(Inst::Mul {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2
        }
        .is_muldiv_fp());
    }

    #[test]
    fn branch_cond_eval_signed_unsigned() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Ge.eval(0, u64::MAX)); // 0 >= -1 signed
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
        assert!(!BranchCond::Geu.eval(0, 1));
    }

    #[test]
    fn movk_reads_its_own_dest() {
        let i = Inst::Movk {
            rd: Reg::A0,
            imm16: 7,
            sh16: 1,
        };
        assert_eq!(i.sources().0, Some(Reg::A0));
    }

    #[test]
    fn store_sources() {
        let i = Inst::sd(Reg::A1, Reg::SP, 16);
        let (s1, s2) = i.sources();
        assert_eq!(s1, Some(Reg::SP));
        assert_eq!(s2, Some(Reg::A1));
    }

    #[test]
    fn display_smoke() {
        assert_eq!(
            Inst::add(Reg::A0, Reg::A1, Reg::A2).to_string(),
            "add a0, a1, a2"
        );
        assert_eq!(Inst::ld(Reg::A0, Reg::SP, 8).to_string(), "ld a0, 8(sp)");
        assert_eq!(Inst::Purge.to_string(), "purge");
    }
}
