//! A small two-pass assembler.
//!
//! The workload generators, the toy kernel, and the security-monitor stubs
//! are all emitted through [`Assembler`]: instructions are pushed in order,
//! control flow targets are named with [`Label`]s, and [`Assembler::assemble`]
//! resolves offsets and produces the final 32-bit words.
//!
//! ```
//! use mi6_isa::{Assembler, Inst, Reg};
//!
//! # fn main() -> Result<(), mi6_isa::AsmError> {
//! let mut asm = Assembler::new(0x1000);
//! let done = asm.new_label();
//! asm.li(Reg::A0, 10);          // counter
//! asm.li(Reg::A1, 0);           // accumulator
//! let top = asm.here();
//! asm.push(Inst::add(Reg::A1, Reg::A1, Reg::A0));
//! asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
//! asm.bnez(Reg::A0, top);
//! asm.bind(done);
//! asm.push(Inst::Ecall);
//! let words = asm.assemble()?;
//! assert_eq!(words.len() as u64 * 4, asm.len_bytes());
//! # Ok(())
//! # }
//! ```

use crate::encode::{encode, EncodeError};
use crate::inst::{BranchCond, Inst};
use crate::reg::Reg;
use crate::INST_BYTES;
use std::fmt;

/// A forward- or backward-referencable position in the instruction stream.
///
/// Labels are cheap handles; they are created by [`Assembler::new_label`] or
/// [`Assembler::here`] and bound to a position with [`Assembler::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel {
        /// The unbound label.
        label: Label,
        /// Index of the referencing instruction.
        at: usize,
    },
    /// An instruction failed to encode (offset or immediate out of range).
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label, at } => {
                write!(
                    f,
                    "label {label:?} referenced at instruction {at} was never bound"
                )
            }
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            AsmError::UnboundLabel { .. } => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> AsmError {
        AsmError::Encode(e)
    }
}

/// One assembler item: a finished instruction or a control-flow instruction
/// whose offset awaits label resolution.
#[derive(Clone, Copy, Debug)]
enum Item {
    Done(Inst),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
}

/// A two-pass assembler for the MI6 ISA.
///
/// See the [module documentation](self) for an example.
#[derive(Clone, Debug, Default)]
pub struct Assembler {
    base: u64,
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// Creates an assembler whose first instruction will live at virtual (or
    /// physical) byte address `base`.
    pub fn new(base: u64) -> Assembler {
        Assembler {
            base,
            items: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The base address passed to [`Assembler::new`].
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Size of the program in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.items.len() as u64 * INST_BYTES
    }

    /// The address of the *next* instruction to be pushed.
    pub fn cursor(&self) -> u64 {
        self.base + self.len_bytes()
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound or belongs to another assembler.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.items.len());
    }

    /// The address a bound label resolves to, if bound.
    pub fn address_of(&self, label: Label) -> Option<u64> {
        self.labels[label.0].map(|idx| self.base + idx as u64 * INST_BYTES)
    }

    /// Pushes a finished instruction.
    pub fn push(&mut self, inst: Inst) {
        self.items.push(Item::Done(inst));
    }

    /// Pushes `n` no-ops.
    pub fn nops(&mut self, n: usize) {
        for _ in 0..n {
            self.push(Inst::NOP);
        }
    }

    /// Loads an arbitrary 64-bit constant into `rd`.
    ///
    /// Emits the shortest `movz`/`movk` sequence (1–4 instructions); small
    /// non-negative values use a single `movz`. The instruction count is
    /// fixed once the value is known, so label offsets remain stable.
    pub fn li(&mut self, rd: Reg, value: u64) {
        let halves = [
            (value & 0xffff) as u16,
            ((value >> 16) & 0xffff) as u16,
            ((value >> 32) & 0xffff) as u16,
            ((value >> 48) & 0xffff) as u16,
        ];
        // First instruction must be a movz (zeroing); pick the lowest
        // nonzero half, or half 0 when the value is zero.
        let first = halves.iter().position(|&h| h != 0).unwrap_or(0);
        self.push(Inst::Movz {
            rd,
            imm16: halves[first],
            sh16: first as u8,
        });
        for (i, &h) in halves.iter().enumerate().skip(first + 1) {
            if h != 0 {
                self.push(Inst::Movk {
                    rd,
                    imm16: h,
                    sh16: i as u8,
                });
            }
        }
    }

    /// Number of instructions [`Assembler::li`] will emit for `value`.
    pub fn li_len(value: u64) -> usize {
        let halves = [
            value & 0xffff,
            (value >> 16) & 0xffff,
            (value >> 32) & 0xffff,
            (value >> 48) & 0xffff,
        ];
        let first = halves.iter().position(|&h| h != 0).unwrap_or(0);
        1 + halves[first + 1..].iter().filter(|&&h| h != 0).count()
    }

    /// Copies `rs` to `rd` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.push(Inst::addi(rd, rs, 0));
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// `beq rs1, rs2, target`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }

    /// `bne rs1, rs2, target`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }

    /// `blt rs1, rs2, target` (signed)
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }

    /// `bge rs1, rs2, target` (signed)
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }

    /// `bltu rs1, rs2, target`
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }

    /// Branch if `rs` is zero.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.beq(rs, Reg::ZERO, target);
    }

    /// Branch if `rs` is nonzero.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.bne(rs, Reg::ZERO, target);
    }

    /// Unconditional jump to a label (`jal zero`).
    pub fn jump(&mut self, target: Label) {
        self.items.push(Item::Jal {
            rd: Reg::ZERO,
            target,
        });
    }

    /// Call a label, leaving the return address in `ra`.
    pub fn call(&mut self, target: Label) {
        self.items.push(Item::Jal {
            rd: Reg::RA,
            target,
        });
    }

    /// Return from a call (`jalr zero, 0(ra)`).
    pub fn ret(&mut self) {
        self.push(Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            off: 0,
        });
    }

    /// Resolves all labels and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a referenced label was never
    /// bound, or [`AsmError::Encode`] if an offset/immediate does not fit.
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        let mut words = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let inst = self.resolve(idx, item)?;
            words.push(encode(inst)?);
        }
        Ok(words)
    }

    /// Resolves labels and returns the instruction list without encoding.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if a referenced label was never
    /// bound.
    pub fn instructions(&self) -> Result<Vec<Inst>, AsmError> {
        self.items
            .iter()
            .enumerate()
            .map(|(idx, item)| self.resolve(idx, item))
            .collect()
    }

    fn resolve(&self, idx: usize, item: &Item) -> Result<Inst, AsmError> {
        let offset_to = |target: Label| -> Result<i32, AsmError> {
            let bound = self.labels[target.0].ok_or(AsmError::UnboundLabel {
                label: target,
                at: idx,
            })?;
            Ok((bound as i64 - idx as i64) as i32 * INST_BYTES as i32)
        };
        Ok(match *item {
            Item::Done(inst) => inst,
            Item::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Inst::Branch {
                cond,
                rs1,
                rs2,
                off: offset_to(target)?,
            },
            Item::Jal { rd, target } => Inst::Jal {
                rd,
                off: offset_to(target)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode;

    #[test]
    fn forward_and_backward_branches() {
        let mut asm = Assembler::new(0);
        let end = asm.new_label();
        let top = asm.here();
        asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
        asm.beqz(Reg::A0, end); // forward: +2 insts = +8
        asm.jump(top); // backward: -2 insts = -8
        asm.bind(end);
        asm.push(Inst::Ecall);
        let insts = asm.instructions().unwrap();
        assert_eq!(
            insts[1],
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                off: 8
            }
        );
        assert_eq!(
            insts[2],
            Inst::Jal {
                rd: Reg::ZERO,
                off: -8
            }
        );
    }

    #[test]
    fn unbound_label_reported() {
        let mut asm = Assembler::new(0);
        let l = asm.new_label();
        asm.jump(l);
        let err = asm.assemble().unwrap_err();
        assert!(matches!(err, AsmError::UnboundLabel { at: 0, .. }));
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new(0);
        let l = asm.here();
        asm.bind(l);
    }

    #[test]
    fn li_expansions() {
        for value in [
            0u64,
            1,
            0xffff,
            0x10000,
            0xdead_beef,
            0xffff_ffff_ffff_ffff,
            1 << 48,
            0x1234_5678_9abc_def0,
        ] {
            let mut asm = Assembler::new(0);
            asm.li(Reg::A0, value);
            assert_eq!(asm.len(), Assembler::li_len(value), "value {value:#x}");
            // simulate the movz/movk sequence
            let mut reg = 0u64;
            for inst in asm.instructions().unwrap() {
                match inst {
                    Inst::Movz { imm16, sh16, .. } => reg = (imm16 as u64) << (sh16 * 16),
                    Inst::Movk { imm16, sh16, .. } => {
                        let sh = sh16 * 16;
                        reg = (reg & !(0xffffu64 << sh)) | ((imm16 as u64) << sh);
                    }
                    other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(reg, value, "li({value:#x}) materialized {reg:#x}");
        }
    }

    #[test]
    fn cursor_and_address_of() {
        let mut asm = Assembler::new(0x1000);
        assert_eq!(asm.cursor(), 0x1000);
        asm.nops(3);
        let l = asm.here();
        assert_eq!(asm.address_of(l), Some(0x100c));
        assert_eq!(asm.cursor(), 0x100c);
    }

    #[test]
    fn assembled_words_decode_back() {
        let mut asm = Assembler::new(0);
        let done = asm.new_label();
        asm.li(Reg::A0, 5);
        let top = asm.here();
        asm.push(Inst::addi(Reg::A0, Reg::A0, -1));
        asm.bnez(Reg::A0, top);
        asm.bind(done);
        asm.ret();
        let words = asm.assemble().unwrap();
        let insts = asm.instructions().unwrap();
        for (w, i) in words.iter().zip(&insts) {
            assert_eq!(&decode(*w).unwrap(), i);
        }
    }

    #[test]
    fn call_and_ret() {
        let mut asm = Assembler::new(0);
        let f = asm.new_label();
        asm.call(f);
        asm.push(Inst::Ecall);
        asm.bind(f);
        asm.ret();
        let insts = asm.instructions().unwrap();
        assert_eq!(
            insts[0],
            Inst::Jal {
                rd: Reg::RA,
                off: 8
            }
        );
        assert_eq!(
            insts[2],
            Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                off: 0
            }
        );
    }

    #[test]
    fn branch_too_far_is_encode_error() {
        let mut asm = Assembler::new(0);
        let far = asm.new_label();
        asm.beqz(Reg::A0, far);
        // 40000 instructions ≈ 160 KB > ±128 KiB branch range
        asm.nops(40000);
        asm.bind(far);
        assert!(matches!(asm.assemble(), Err(AsmError::Encode(_))));
    }
}
