//! # mi6-obs — observability for the MI6 simulator
//!
//! Two pillars, both **runtime-only**: nothing in this crate is ever
//! serialized into snapshots, and everything is gated behind an `Option`
//! at the attachment point so the simulation pays nothing when it is off.
//!
//! 1. [`Tracer`] — per-instruction lifecycle tracing in the
//!    Konata-compatible O3PipeView text format (one record per op:
//!    fetch/decode/rename/dispatch/issue/complete/retire cycle stamps,
//!    with the memory-phase sub-timeline folded into the disassembly
//!    field). One tracer per core; the machine drains their line buffers
//!    into a single file.
//! 2. [`MetricsSink`] — an append-only JSONL time series keyed
//!    `(cycle, core, metric)`: occupancy gauges sampled every N cycles
//!    and flow counters emitted as per-window deltas.
//!
//! The schema checkers ([`check_trace_str`], [`check_metrics_str`]) are
//! what CI runs over emitted artifacts (via the `mi6-obs-check` binary),
//! and what the timing-neutrality tests use to prove the files are
//! well-formed without pinning their exact contents.
//!
//! Observability state is deliberately tolerant of snapshot restores: a
//! restored machine has in-flight ops the tracer never saw, so every
//! hook ignores unknown sequence numbers instead of asserting.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Simulated-cycle → O3PipeView-tick scale. gem5 emits picosecond ticks
/// at 500 ps/cycle; Konata infers the cycle time from the GCD of the
/// stamps, so any constant works — we keep gem5's for familiarity.
pub const CYCLE_TICKS: u64 = 500;

// ------------------------------------------------------------------ tracer

/// One in-flight instruction's collected stamps. `u64::MAX` = stage
/// never reached (emitted as tick 0, which Konata renders as "skipped").
#[derive(Debug)]
struct OpRecord {
    pc: u64,
    disasm: String,
    /// Memory-phase sub-timeline (e.g. ` tlb@12 walk@20 mem@31`),
    /// appended to the disassembly field so the O3PipeView line count
    /// per record stays fixed.
    phases: String,
    fetch: u64,
    rename: u64,
    issue: u64,
    complete: u64,
}

/// Per-core instruction lifecycle tracer emitting O3PipeView records.
///
/// Records are keyed by the core's monotonically increasing ROB sequence
/// number: a `VecDeque` plus a base sequence is enough because rename
/// creates records in ascending order, retire pops the front, and squash
/// pops a suffix from the back. Hooks for sequence numbers the tracer
/// has never seen (ops that were in flight across a snapshot restore)
/// are silently ignored.
#[derive(Debug)]
pub struct Tracer {
    /// `uid = seq * uid_stride + uid_offset` keeps O3PipeView ids unique
    /// when several cores share one output file.
    uid_stride: u64,
    uid_offset: u64,
    base_seq: u64,
    live: VecDeque<Option<OpRecord>>,
    buf: String,
    emitted_ops: u64,
    squashed_ops: u64,
    /// Stop emitting (but keep counting) after this many records;
    /// 0 = unlimited. Keeps long bench runs from writing gigabytes.
    cap: u64,
}

impl Tracer {
    /// A tracer for core `core` of `cores`, emitting at most `cap`
    /// records (0 = unlimited).
    pub fn new(core: usize, cores: usize, cap: u64) -> Tracer {
        Tracer {
            uid_stride: cores.max(1) as u64,
            uid_offset: core as u64,
            base_seq: 0,
            live: VecDeque::new(),
            buf: String::new(),
            emitted_ops: 0,
            squashed_ops: 0,
            cap,
        }
    }

    fn slot(&mut self, seq: u64) -> Option<&mut OpRecord> {
        if seq < self.base_seq {
            return None;
        }
        let idx = (seq - self.base_seq) as usize;
        self.live.get_mut(idx)?.as_mut()
    }

    /// Rename hook: a new op entered the ROB. `fetched_at` is the cycle
    /// its fetch group was delivered (carried on the fetch-queue entry).
    pub fn start(&mut self, seq: u64, pc: u64, disasm: String, fetched_at: u64, now: u64) {
        if self.live.is_empty() {
            self.base_seq = seq;
        } else {
            // A squash pops a tail of records but the core's sequence
            // numbering never rolls back, so the next rename arrives with
            // a gap. Pad with placeholders to keep `seq - base_seq` a
            // valid index.
            let expected = self.base_seq + self.live.len() as u64;
            debug_assert!(seq >= expected, "rename went backwards: {seq} < {expected}");
            for _ in expected..seq {
                self.live.push_back(None);
            }
        }
        self.live.push_back(Some(OpRecord {
            pc,
            disasm,
            phases: String::new(),
            fetch: fetched_at,
            rename: now,
            issue: u64::MAX,
            complete: u64::MAX,
        }));
    }

    /// Issue hook: the op left its issue queue for an execution pipe.
    pub fn issue(&mut self, seq: u64, now: u64) {
        if let Some(op) = self.slot(seq) {
            op.issue = now;
        }
    }

    /// Memory-phase hook: annotates the op with `tag@cycle` (translate
    /// done, page walk start, cache access, value return, fault…).
    pub fn mem_phase(&mut self, seq: u64, tag: &str, now: u64) {
        if let Some(op) = self.slot(seq) {
            let _ = write!(op.phases, " {tag}@{now}");
        }
    }

    /// Completion hook: the op's result became visible (writeback, load
    /// value return, store address resolution, or fault marking).
    pub fn complete(&mut self, seq: u64, now: u64) {
        if let Some(op) = self.slot(seq) {
            if op.complete == u64::MAX {
                op.complete = now;
            }
        }
    }

    /// Retire hook: the op committed. Emits its record. Commit is
    /// in-order, so anything older than `seq` still in the deque is a
    /// placeholder for an already-emitted squashed op.
    pub fn retire(&mut self, seq: u64, now: u64) {
        if seq < self.base_seq || seq >= self.base_seq + self.live.len() as u64 {
            return;
        }
        while self.base_seq < seq {
            let stale = self.live.pop_front().expect("range checked");
            debug_assert!(stale.is_none(), "live record skipped by in-order commit");
            self.base_seq += 1;
        }
        if let Some(op) = self.live.pop_front().flatten() {
            self.emit(&op, seq, now);
        }
        self.base_seq = seq + 1;
    }

    /// Squash hook: the op was discarded by a pipeline flush. Emits the
    /// record with retire tick 0 (Konata renders it as flushed). Squash
    /// walks the ROB tail in descending seq order, so anything younger
    /// than `seq` still in the deque is a placeholder from an earlier
    /// squash.
    pub fn squash(&mut self, seq: u64) {
        if seq < self.base_seq {
            return;
        }
        let idx = (seq - self.base_seq) as usize;
        if idx >= self.live.len() {
            return;
        }
        while self.live.len() > idx + 1 {
            let stale = self.live.pop_back().expect("length checked");
            debug_assert!(stale.is_none(), "live record above a squash point");
        }
        if let Some(op) = self.live.pop_back().expect("length checked") {
            self.squashed_ops += 1;
            self.emit(&op, seq, 0);
        }
    }

    fn emit(&mut self, op: &OpRecord, seq: u64, retire_cycle: u64) {
        if self.cap != 0 && self.emitted_ops >= self.cap {
            self.emitted_ops += 1;
            return;
        }
        self.emitted_ops += 1;
        let t = |c: u64| {
            if c == u64::MAX {
                0
            } else {
                c * CYCLE_TICKS
            }
        };
        let uid = seq * self.uid_stride + self.uid_offset;
        let _ = write!(
            self.buf,
            "O3PipeView:fetch:{}:0x{:016x}:0:{}:{}{}\n\
             O3PipeView:decode:{}\n\
             O3PipeView:rename:{}\n\
             O3PipeView:dispatch:{}\n\
             O3PipeView:issue:{}\n\
             O3PipeView:complete:{}\n\
             O3PipeView:retire:{}:store:0\n",
            t(op.fetch),
            op.pc,
            uid,
            op.disasm,
            op.phases,
            t(op.rename),
            t(op.rename),
            t(op.rename),
            t(op.issue),
            t(op.complete),
            t(retire_cycle),
        );
    }

    /// Buffered output bytes awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Takes the buffered lines (the machine appends them to the trace
    /// file).
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }

    /// Records emitted so far (including any beyond the cap).
    pub fn emitted(&self) -> u64 {
        self.emitted_ops
    }

    /// Records emitted as squashed.
    pub fn squashed(&self) -> u64 {
        self.squashed_ops
    }

    /// Forgets all in-flight records (snapshot restore: the restored ops
    /// were never observed, so their hooks must be ignored, which the
    /// empty state guarantees).
    pub fn reset_in_flight(&mut self) {
        self.live.clear();
        self.base_seq = 0;
    }
}

// ------------------------------------------------------------- metrics sink

/// Append-only JSONL time-series writer. One row per sample:
///
/// ```json
/// {"cycle":12000,"core":1,"metric":"mshr_occ","value":3}
/// {"cycle":12000,"metric":"skipped_cycles","value":4096}
/// ```
///
/// `core` is omitted for machine-wide metrics. [`MetricsSink::gauge`]
/// writes instantaneous values; [`MetricsSink::counter`] takes a
/// monotonically increasing total and writes the delta since the last
/// sample of that `(core, metric)` key, so consumers read flows per
/// window directly.
#[derive(Debug, Default)]
pub struct MetricsSink {
    buf: String,
    prev: BTreeMap<(i64, &'static str), u64>,
    rows: u64,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> MetricsSink {
        MetricsSink::default()
    }

    fn row(&mut self, cycle: u64, core: Option<usize>, metric: &str, value: u64) {
        self.rows += 1;
        match core {
            Some(c) => {
                let _ = writeln!(
                    self.buf,
                    "{{\"cycle\":{cycle},\"core\":{c},\"metric\":\"{metric}\",\"value\":{value}}}"
                );
            }
            None => {
                let _ = writeln!(
                    self.buf,
                    "{{\"cycle\":{cycle},\"metric\":\"{metric}\",\"value\":{value}}}"
                );
            }
        }
    }

    /// Samples an instantaneous occupancy/level.
    pub fn gauge(&mut self, cycle: u64, core: Option<usize>, metric: &str, value: u64) {
        self.row(cycle, core, metric, value);
    }

    /// Samples a monotonically increasing counter; emits the delta since
    /// this key's previous sample.
    pub fn counter(&mut self, cycle: u64, core: Option<usize>, metric: &'static str, total: u64) {
        let key = (core.map(|c| c as i64).unwrap_or(-1), metric);
        let prev = self.prev.insert(key, total).unwrap_or(0);
        self.row(cycle, core, metric, total.saturating_sub(prev));
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Buffered output bytes awaiting a drain.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Takes the buffered rows (the machine appends them to the metrics
    /// file).
    pub fn take(&mut self) -> String {
        std::mem::take(&mut self.buf)
    }
}

// ------------------------------------------------------------ trace checker

/// Summary returned by a successful [`check_trace_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Complete O3PipeView records.
    pub ops: u64,
    /// Records with retire tick 0 (squashed).
    pub squashed: u64,
}

fn parse_tick(s: &str, what: &str, line: usize) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| format!("line {line}: {what} tick `{s}` is not an integer"))
}

/// Validates a Konata/O3PipeView trace: every record is exactly seven
/// lines (fetch/decode/rename/dispatch/issue/complete/retire) with
/// integer ticks, a hex PC, a unique id, a non-empty disassembly, and
/// stamps that are non-decreasing across the stages that were reached
/// (tick 0 = stage skipped).
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_trace_str(s: &str) -> Result<TraceSummary, String> {
    let mut lines = s.lines().enumerate().peekable();
    let mut ops = 0u64;
    let mut squashed = 0u64;
    let mut seen_ids = std::collections::BTreeSet::new();
    while let Some((n, line)) = lines.next() {
        let n1 = n + 1;
        let rest = line
            .strip_prefix("O3PipeView:fetch:")
            .ok_or_else(|| format!("line {n1}: expected O3PipeView:fetch record, got `{line}`"))?;
        // fetch:<tick>:0x<pc>:0:<uid>:<disasm>
        let mut f = rest.splitn(5, ':');
        let fetch = parse_tick(f.next().unwrap_or(""), "fetch", n1)?;
        let pc = f
            .next()
            .ok_or_else(|| format!("line {n1}: missing pc field"))?;
        let pc_hex = pc
            .strip_prefix("0x")
            .ok_or_else(|| format!("line {n1}: pc `{pc}` missing 0x prefix"))?;
        u64::from_str_radix(pc_hex, 16).map_err(|_| format!("line {n1}: pc `{pc}` not hex"))?;
        let upc = f
            .next()
            .ok_or_else(|| format!("line {n1}: missing micro-pc field"))?;
        if upc != "0" {
            return Err(format!("line {n1}: micro-pc `{upc}` should be 0"));
        }
        let uid = parse_tick(f.next().unwrap_or(""), "id", n1)?;
        if !seen_ids.insert(uid) {
            return Err(format!("line {n1}: duplicate op id {uid}"));
        }
        let disasm = f.next().unwrap_or("");
        if disasm.is_empty() {
            return Err(format!("line {n1}: empty disassembly"));
        }
        let mut stage = |name: &'static str| -> Result<u64, String> {
            let (m, l) = lines
                .next()
                .ok_or_else(|| format!("record at line {n1}: truncated before {name}"))?;
            let rest = l
                .strip_prefix("O3PipeView:")
                .ok_or_else(|| format!("line {}: expected O3PipeView:{name}, got `{l}`", m + 1))?;
            let rest = rest
                .strip_prefix(name)
                .and_then(|r| r.strip_prefix(':'))
                .ok_or_else(|| format!("line {}: expected stage {name}, got `{l}`", m + 1))?;
            let tick = rest.split(':').next().unwrap_or("");
            parse_tick(tick, name, m + 1)
        };
        let decode = stage("decode")?;
        let rename = stage("rename")?;
        let dispatch = stage("dispatch")?;
        let issue = stage("issue")?;
        let complete = stage("complete")?;
        let retire = stage("retire")?;
        // Reached stages must be in program order (0 = never reached).
        let mut last = fetch;
        for (name, tick) in [
            ("decode", decode),
            ("rename", rename),
            ("dispatch", dispatch),
            ("issue", issue),
            ("complete", complete),
            ("retire", retire),
        ] {
            if tick != 0 {
                if tick < last {
                    return Err(format!(
                        "record at line {n1}: {name} tick {tick} precedes {last}"
                    ));
                }
                last = tick;
            }
        }
        ops += 1;
        if retire == 0 {
            squashed += 1;
        }
    }
    if ops == 0 {
        return Err("trace contains no records".into());
    }
    Ok(TraceSummary { ops, squashed })
}

/// [`check_trace_str`] over a file.
///
/// # Errors
///
/// Returns the I/O or schema error message.
pub fn check_trace_file(path: &std::path::Path) -> Result<TraceSummary, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    check_trace_str(&s).map_err(|e| format!("{}: {e}", path.display()))
}

// ---------------------------------------------------------- metrics checker

/// Summary returned by a successful [`check_metrics_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSummary {
    /// Total rows.
    pub rows: u64,
    /// Distinct metric names seen.
    pub metrics: Vec<String>,
    /// First and last cycle stamps.
    pub cycle_range: (u64, u64),
}

/// Validates a metrics JSONL file: every line is exactly
/// `{"cycle":N[,"core":C],"metric":"name","value":V}` with integer
/// cycle/core/value, non-decreasing cycles, and metric names restricted
/// to `[a-z0-9_]`.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_metrics_str(s: &str) -> Result<MetricsSummary, String> {
    let mut rows = 0u64;
    let mut names = std::collections::BTreeSet::new();
    let mut first = u64::MAX;
    let mut last_cycle = 0u64;
    for (n, line) in s.lines().enumerate() {
        let n1 = n + 1;
        let err = |what: &str| format!("line {n1}: {what} in `{line}`");
        let body = line
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| err("row is not a JSON object"))?;
        let mut cycle = None;
        let mut core = None;
        let mut metric = None;
        let mut value = None;
        for field in body.split(',') {
            let (k, v) = field
                .split_once(':')
                .ok_or_else(|| err("malformed field"))?;
            match k {
                "\"cycle\"" => cycle = Some(v.parse::<u64>().map_err(|_| err("bad cycle"))?),
                "\"core\"" => core = Some(v.parse::<u64>().map_err(|_| err("bad core"))?),
                "\"metric\"" => {
                    let name = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("metric is not a string"))?;
                    if name.is_empty()
                        || !name
                            .bytes()
                            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
                    {
                        return Err(err("metric name must match [a-z0-9_]+"));
                    }
                    metric = Some(name.to_string());
                }
                "\"value\"" => value = Some(v.parse::<i64>().map_err(|_| err("bad value"))?),
                _ => return Err(err("unknown key")),
            }
        }
        let cycle = cycle.ok_or_else(|| err("missing cycle"))?;
        let metric = metric.ok_or_else(|| err("missing metric"))?;
        value.ok_or_else(|| err("missing value"))?;
        let _ = core;
        if cycle < last_cycle {
            return Err(err("cycle stamps must be non-decreasing"));
        }
        first = first.min(cycle);
        last_cycle = cycle;
        names.insert(metric);
        rows += 1;
    }
    if rows == 0 {
        return Err("metrics file contains no rows".into());
    }
    Ok(MetricsSummary {
        rows,
        metrics: names.into_iter().collect(),
        cycle_range: (first, last_cycle),
    })
}

/// [`check_metrics_str`] over a file.
///
/// # Errors
///
/// Returns the I/O or schema error message.
pub fn check_metrics_file(path: &std::path::Path) -> Result<MetricsSummary, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    check_metrics_str(&s).map_err(|e| format!("{}: {e}", path.display()))
}

// ----------------------------------------------------------- stacks checker

/// The CPI-stack category names, in canonical order. This list is the
/// artifact schema: every stacks row carries exactly these slot keys.
/// It is duplicated from `mi6_core::CpiCategory` on purpose (this crate
/// is dependency-free); a cross-crate test pins the two in sync.
pub const STACK_CATEGORIES: [&str; 16] = [
    "base",
    "idle",
    "frontend",
    "exec",
    "tlb",
    "mem_l1",
    "mem_llc",
    "mem_dram",
    "mem_pending",
    "sb_full",
    "squash_mispredict",
    "squash_order",
    "squash_trap",
    "flush",
    "mshr_quota_deny",
    "arb_deny",
];

/// Formats one CPI-stack artifact row (JSONL). `slots` must follow
/// [`STACK_CATEGORIES`] order; the emitter and [`check_stacks_str`] are
/// the two halves of the format contract.
///
/// # Panics
///
/// Panics if `slots` is not exactly one value per category.
pub fn stacks_row(
    name: &str,
    variant: &str,
    core: usize,
    cycles: u64,
    commit_width: u64,
    slots: &[u64],
) -> String {
    assert_eq!(slots.len(), STACK_CATEGORIES.len());
    let mut row = format!(
        "{{\"name\":\"{name}\",\"variant\":\"{variant}\",\"core\":{core},\
         \"cycles\":{cycles},\"commit_width\":{commit_width}"
    );
    for (cat, v) in STACK_CATEGORIES.iter().zip(slots) {
        let _ = write!(row, ",\"{cat}\":{v}");
    }
    row.push('}');
    row
}

/// Summary returned by a successful [`check_stacks_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StacksSummary {
    /// Total rows.
    pub rows: u64,
    /// Distinct workload names seen.
    pub workloads: Vec<String>,
    /// Total commit slots across all rows.
    pub total_slots: u64,
}

/// Validates a CPI-stacks JSONL artifact: every line is one flat object
/// with string `name`/`variant`, integer `core`/`cycles`/`commit_width`
/// (width >= 1), exactly one integer slot count per [`STACK_CATEGORIES`]
/// entry, and the sum invariant `sum(slots) == cycles * commit_width`.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_stacks_str(s: &str) -> Result<StacksSummary, String> {
    let mut rows = 0u64;
    let mut workloads = std::collections::BTreeSet::new();
    let mut total_slots = 0u64;
    for (n, line) in s.lines().enumerate() {
        let n1 = n + 1;
        let err = |what: &str| format!("line {n1}: {what} in `{line}`");
        let body = line
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .ok_or_else(|| err("row is not a JSON object"))?;
        let mut name = None;
        let mut cycles = None;
        let mut width = None;
        let mut seen_variant = false;
        let mut slots = std::collections::BTreeMap::new();
        for field in body.split(',') {
            let (k, v) = field
                .split_once(':')
                .ok_or_else(|| err("malformed field"))?;
            let k = k
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| err("key is not a string"))?;
            match k {
                "name" | "variant" => {
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("name/variant is not a string"))?;
                    if v.is_empty() {
                        return Err(err("empty name/variant"));
                    }
                    if k == "name" {
                        name = Some(v.to_string());
                    } else {
                        seen_variant = true;
                    }
                }
                "core" => {
                    v.parse::<u64>().map_err(|_| err("bad core"))?;
                }
                "cycles" => cycles = Some(v.parse::<u64>().map_err(|_| err("bad cycles"))?),
                "commit_width" => {
                    width = Some(v.parse::<u64>().map_err(|_| err("bad commit_width"))?)
                }
                cat if STACK_CATEGORIES.contains(&cat) => {
                    let v = v.parse::<u64>().map_err(|_| err("bad slot count"))?;
                    if slots.insert(cat, v).is_some() {
                        return Err(err("duplicate category"));
                    }
                }
                _ => return Err(err("unknown key")),
            }
        }
        let cycles = cycles.ok_or_else(|| err("missing cycles"))?;
        let width = width.ok_or_else(|| err("missing commit_width"))?;
        let name = name.ok_or_else(|| err("missing name"))?;
        if !seen_variant {
            return Err(err("missing variant"));
        }
        if width == 0 {
            return Err(err("commit_width must be >= 1"));
        }
        for cat in STACK_CATEGORIES {
            if !slots.contains_key(cat) {
                return Err(err(&format!("missing category `{cat}`")));
            }
        }
        let sum: u64 = slots.values().sum();
        if sum != cycles * width {
            return Err(err(&format!(
                "sum invariant violated: slots sum to {sum}, expected cycles*width = {}",
                cycles * width
            )));
        }
        workloads.insert(name);
        total_slots += sum;
        rows += 1;
    }
    if rows == 0 {
        return Err("stacks file contains no rows".into());
    }
    Ok(StacksSummary {
        rows,
        workloads: workloads.into_iter().collect(),
        total_slots,
    })
}

/// [`check_stacks_str`] over a file.
///
/// # Errors
///
/// Returns the I/O or schema error message.
pub fn check_stacks_file(path: &std::path::Path) -> Result<StacksSummary, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    check_stacks_str(&s).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_emits_valid_o3pipeview() {
        let mut t = Tracer::new(0, 1, 0);
        t.start(0, 0x1000, "addi x5, x0, 1".into(), 10, 12);
        t.issue(0, 14);
        t.complete(0, 15);
        t.start(1, 0x1004, "ld x6, 0(x5)".into(), 10, 12);
        t.issue(1, 15);
        t.mem_phase(1, "tlb", 16);
        t.mem_phase(1, "mem", 18);
        t.complete(1, 22);
        t.retire(0, 16);
        t.retire(1, 23);
        // A squashed op that never issued.
        t.start(2, 0x1008, "beq x6, x0, 8".into(), 13, 14);
        t.squash(2);
        let out = t.take();
        let sum = check_trace_str(&out).unwrap();
        assert_eq!(
            sum,
            TraceSummary {
                ops: 3,
                squashed: 1
            }
        );
        assert!(out.contains("ld x6, 0(x5) tlb@16 mem@18"));
        assert_eq!(t.emitted(), 3);
    }

    #[test]
    fn tracer_ignores_unknown_seqs_and_respects_cap() {
        let mut t = Tracer::new(1, 2, 1);
        // Hooks for ops in flight across a restore are silently dropped.
        t.issue(7, 10);
        t.complete(7, 11);
        t.retire(7, 12);
        t.squash(7);
        assert_eq!(t.emitted(), 0);
        t.start(8, 0x2000, "nop".into(), 1, 2);
        t.start(9, 0x2004, "nop".into(), 1, 2);
        t.retire(8, 5);
        t.retire(9, 6);
        assert_eq!(t.emitted(), 2, "both counted");
        let out = t.take();
        assert_eq!(out.matches("O3PipeView:fetch").count(), 1, "cap = 1");
        // Odd uid: core 1 of 2.
        assert!(out.contains(":0:17:nop"), "uid = seq*2+1: {out}");
    }

    /// A squash drops a tail of seqs but the core keeps numbering from
    /// where it left off; the tracer must stay aligned across the gap
    /// and keep emitting for every later rename, retire, and squash.
    #[test]
    fn tracer_survives_post_squash_seq_gaps() {
        let mut t = Tracer::new(0, 1, 0);
        for seq in 0..4 {
            t.start(seq, 0x1000 + seq * 4, "nop".into(), 1, 2);
        }
        // Mispredict at 1: ops 3 and 2 squash (descending walk).
        t.squash(3);
        t.squash(2);
        // Rename resumes at 4 (seqs 2..3 are never reused)...
        t.start(4, 0x2000, "nop".into(), 5, 6);
        t.retire(0, 7);
        t.retire(1, 8);
        t.retire(4, 9);
        // ... and a later squash after another gap still lands.
        t.start(7, 0x3000, "nop".into(), 10, 11);
        t.squash(7);
        let sum = check_trace_str(&t.take()).unwrap();
        assert_eq!(
            sum,
            TraceSummary {
                ops: 6,
                squashed: 3
            }
        );
        assert_eq!(t.emitted(), 6);
    }

    #[test]
    fn metrics_sink_counter_emits_deltas() {
        let mut m = MetricsSink::new();
        m.gauge(100, Some(0), "rob_occ", 12);
        m.counter(100, Some(0), "arb_grants", 5);
        m.counter(200, Some(0), "arb_grants", 9);
        m.counter(200, None, "skipped_cycles", 64);
        let out = m.take();
        assert!(out.contains("{\"cycle\":100,\"core\":0,\"metric\":\"arb_grants\",\"value\":5}"));
        assert!(out.contains("{\"cycle\":200,\"core\":0,\"metric\":\"arb_grants\",\"value\":4}"));
        assert!(out.contains("{\"cycle\":200,\"metric\":\"skipped_cycles\",\"value\":64}"));
        let sum = check_metrics_str(&out).unwrap();
        assert_eq!(sum.rows, 4);
        assert_eq!(sum.cycle_range, (100, 200));
    }

    #[test]
    fn checkers_reject_malformed_input() {
        assert!(check_trace_str("").is_err());
        assert!(check_trace_str("O3PipeView:fetch:100:0x1000:0:1:nop\n").is_err());
        assert!(check_metrics_str("{\"cycle\":1,\"metric\":\"x\"}\n").is_err());
        assert!(check_metrics_str("{\"cycle\":2,\"metric\":\"a\",\"value\":1}\n{\"cycle\":1,\"metric\":\"a\",\"value\":1}\n").is_err());
        assert!(check_metrics_str("{\"cycle\":1,\"metric\":\"BAD\",\"value\":1}\n").is_err());
        // Out-of-order stamps within one record.
        let bad = "O3PipeView:fetch:500:0x1000:0:1:nop\nO3PipeView:decode:400\n\
                   O3PipeView:rename:500\nO3PipeView:dispatch:500\nO3PipeView:issue:0\n\
                   O3PipeView:complete:0\nO3PipeView:retire:0:store:0\n";
        assert!(check_trace_str(bad).is_err());
    }

    #[test]
    fn stacks_row_round_trips_through_checker() {
        let mut slots = [0u64; 16];
        slots[0] = 150; // base
        slots[1] = 40; // idle
        slots[7] = 10; // mem_dram
        let row = stacks_row("bzip2", "BASE", 0, 100, 2, &slots);
        let mut out = row.clone();
        out.push('\n');
        slots[0] = 90;
        slots[1] = 110;
        slots[7] = 0;
        out.push_str(&stacks_row("mcf", "FPMA", 1, 100, 2, &slots));
        let sum = check_stacks_str(&out).unwrap();
        assert_eq!(
            sum,
            StacksSummary {
                rows: 2,
                workloads: vec!["bzip2".into(), "mcf".into()],
                total_slots: 400,
            }
        );
    }

    #[test]
    fn stacks_checker_rejects_bad_rows() {
        let mut slots = [0u64; 16];
        slots[0] = 20;
        let good = stacks_row("k", "BASE", 0, 10, 2, &slots);
        assert!(check_stacks_str(&good).is_ok());
        // Sum invariant broken.
        slots[0] = 19;
        let bad = stacks_row("k", "BASE", 0, 10, 2, &slots);
        assert!(check_stacks_str(&bad).is_err());
        // Empty file, missing category, unknown key, zero width.
        assert!(check_stacks_str("").is_err());
        let missing = good.replace(",\"arb_deny\":0", "");
        assert!(check_stacks_str(&missing).is_err());
        let unknown = good.replace("\"arb_deny\"", "\"mystery\"");
        assert!(check_stacks_str(&unknown).is_err());
        slots[0] = 0;
        let zero_w = stacks_row("k", "BASE", 0, 10, 0, &slots);
        assert!(check_stacks_str(&zero_w).is_err());
    }
}
