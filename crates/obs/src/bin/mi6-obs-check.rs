//! Schema checker for observability artifacts — the CI gate that proves
//! an emitted trace really is Konata-loadable O3PipeView and a metrics
//! file really is well-formed JSONL.
//!
//! ```text
//! mi6-obs-check trace FILE...
//! mi6-obs-check metrics FILE...
//! mi6-obs-check stacks FILE...
//! ```
//!
//! Exits non-zero (with the offending line in the message) on the first
//! schema violation; prints a one-line summary per valid file.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = || {
        eprintln!("usage: mi6-obs-check trace|metrics|stacks FILE...");
        ExitCode::from(2)
    };
    let Some((mode, files)) = args.split_first() else {
        return usage();
    };
    if files.is_empty() {
        return usage();
    }
    let mut failed = false;
    for f in files {
        let path = Path::new(f);
        let outcome = match mode.as_str() {
            "trace" => mi6_obs::check_trace_file(path).map(|s| {
                format!(
                    "{}: OK — {} ops ({} squashed)",
                    path.display(),
                    s.ops,
                    s.squashed
                )
            }),
            "metrics" => mi6_obs::check_metrics_file(path).map(|s| {
                format!(
                    "{}: OK — {} rows, {} metrics, cycles {}..{}",
                    path.display(),
                    s.rows,
                    s.metrics.len(),
                    s.cycle_range.0,
                    s.cycle_range.1
                )
            }),
            "stacks" => mi6_obs::check_stacks_file(path).map(|s| {
                format!(
                    "{}: OK — {} rows, {} workloads, {} slots accounted",
                    path.display(),
                    s.rows,
                    s.workloads.len(),
                    s.total_slots
                )
            }),
            _ => return usage(),
        };
        match outcome {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
