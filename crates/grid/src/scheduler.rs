//! The in-process work-stealing scheduler.
//!
//! Replaces the old shared-atomic-counter grid loop: each worker owns a
//! deque of task indices, claims a *batch* from its own queue per lock
//! acquisition (many short simulations amortize the synchronization and
//! keep a warm worker on adjacent grid points), and steals half a victim's
//! remaining queue from the back when its own runs dry. Completed results
//! stream to the caller's thread in completion order.
//!
//! This is the run-to-completion half of the execution layer: one task
//! owns a worker from first cycle to last, which suits short,
//! always-busy work (warm-up simulations, unit tasks). Long or
//! idle-heavy tasks should implement [`crate::SliceTask`] and go through
//! the slice-multiplexing [`crate::MachineDriver`] instead, which shares
//! this module's [`WorkerCtx`] so task code is oblivious to which engine
//! runs it.
//!
//! Cancellation is cooperative and two-level: the shared cancel flag is
//! checked between tasks by every worker, and the caller is expected to
//! also hand it to whatever the task runs (the simulator polls it
//! mid-machine via `SimBuilder::cancel_flag`, so even a long point stops
//! within a few thousand simulated cycles). An optional deadline arms the
//! flag automatically: the first worker to notice the deadline has passed
//! cancels the whole pool, in-flight points return `None`, and unstarted
//! points are never claimed — a journaled shard then resumes exactly
//! where it stopped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

/// What a worker passes to each task it runs.
pub struct WorkerCtx {
    /// The running worker's id, in `0..workers` (recorded per point so
    /// shard balance is measurable from the output alone).
    pub worker: usize,
    /// The pool-wide cancel flag; hand it to the machine being run so
    /// cancellation can interrupt a point mid-simulation.
    pub cancel: Arc<AtomicBool>,
}

/// Scheduler configuration.
#[derive(Clone, Debug)]
pub struct Scheduler {
    /// Worker thread count (clamped to at least 1 and at most the task
    /// count).
    pub workers: usize,
    /// Tasks claimed per visit to the worker's own queue; 0 picks a
    /// heuristic (≈ queue/8, at least 1). Larger batches amortize queue
    /// locking across many short runs at the cost of coarser stealing.
    pub batch: usize,
    /// Stop dispatching and cancel in-flight tasks once this instant
    /// passes.
    pub deadline: Option<Instant>,
    /// An externally shared cancel flag (e.g. a Ctrl-C handler); the
    /// scheduler creates its own when absent.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Scheduler {
    /// A scheduler with `workers` threads, auto batching, and no deadline.
    pub fn new(workers: usize) -> Scheduler {
        Scheduler {
            workers,
            batch: 0,
            deadline: None,
            cancel: None,
        }
    }

    /// Sets the claim batch size (0 = auto).
    pub fn with_batch(mut self, batch: usize) -> Scheduler {
        self.batch = batch;
        self
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Scheduler {
        self.deadline = deadline;
        self
    }

    /// Runs every task, streaming completions to `on_done` on the
    /// caller's thread (in completion order; use the returned vector for
    /// task order). `run` returns `None` for a task cancelled mid-flight;
    /// such tasks (and never-started ones) are `None` in the result.
    pub fn run<T, R>(
        &self,
        tasks: &[T],
        run: impl Fn(&WorkerCtx, usize, &T) -> Option<R> + Sync,
        mut on_done: impl FnMut(usize, &R),
    ) -> SchedulerOutcome<R>
    where
        T: Sync,
        R: Send,
    {
        let n = tasks.len();
        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        if n == 0 {
            return SchedulerOutcome {
                results,
                completed: 0,
                cancelled: 0,
                deadline_hit: false,
            };
        }
        let workers = self.workers.clamp(1, n);
        let batch = if self.batch == 0 {
            (n / (workers * 8)).max(1)
        } else {
            self.batch
        };
        // Cap the claim size at one worker's fair share: claimed tasks
        // live in a private deque stealers cannot see, so an oversized
        // batch (e.g. --batch 64 on a 22-point grid) would let the first
        // worker vacuum the whole grid and silently serialize it.
        let batch = batch.clamp(1, n.div_ceil(workers));
        let cancel = self
            .cancel
            .clone()
            .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
        let deadline_hit = AtomicBool::new(false);

        // Deal contiguous runs of the task list out round-robin so each
        // worker starts on a compact span (adjacent grid points share
        // workload shape) and stealing moves whole spans.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    (0..n)
                        .filter(|i| (i / batch) % workers == w)
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();

        let (tx, rx) = mpsc::channel::<(usize, Option<R>)>();
        thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let cancel = Arc::clone(&cancel);
                let deadline = self.deadline;
                let deadline_hit = &deadline_hit;
                let run = &run;
                s.spawn(move || {
                    let ctx = WorkerCtx { worker: w, cancel };
                    let mut claimed: VecDeque<usize> = VecDeque::new();
                    loop {
                        if let Some(d) = deadline {
                            if Instant::now() >= d && !ctx.cancel.swap(true, Ordering::SeqCst) {
                                deadline_hit.store(true, Ordering::SeqCst);
                            }
                        }
                        if ctx.cancel.load(Ordering::SeqCst) {
                            break;
                        }
                        if claimed.is_empty() {
                            // Refill from our own queue first, then steal
                            // half (rounded up) from the back of the first
                            // non-empty victim.
                            let mut own = queues[w].lock().unwrap();
                            for _ in 0..batch {
                                match own.pop_front() {
                                    Some(i) => claimed.push_back(i),
                                    None => break,
                                }
                            }
                            drop(own);
                            if claimed.is_empty() {
                                for v in 1..workers {
                                    let victim = (w + v) % workers;
                                    let mut q = queues[victim].lock().unwrap();
                                    let take = q.len().div_ceil(2);
                                    for _ in 0..take {
                                        if let Some(i) = q.pop_back() {
                                            claimed.push_front(i);
                                        }
                                    }
                                    if !claimed.is_empty() {
                                        break;
                                    }
                                }
                            }
                            if claimed.is_empty() {
                                break; // every queue drained: done
                            }
                        }
                        let i = claimed.pop_front().expect("refilled above");
                        if tx.send((i, run(&ctx, i, &tasks[i]))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // The collector doubles as the deadline watchdog: workers
            // only check the clock *between* tasks, so if every worker
            // is mid-task when the deadline passes, nobody would arm the
            // cancel flag and in-flight machines would run to natural
            // completion. Waiting with a timeout pinned to the deadline
            // guarantees the flag is raised the moment the budget
            // expires, no matter what the workers are doing.
            let mut watchdog = self.deadline;
            loop {
                let received = match watchdog {
                    Some(d) => match rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                        Ok(msg) => Some(msg),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if !cancel.swap(true, Ordering::SeqCst) {
                                deadline_hit.store(true, Ordering::SeqCst);
                            }
                            watchdog = None; // armed; plain recv from here
                            continue;
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => None,
                    },
                    None => rx.recv().ok(),
                };
                let Some((i, res)) = received else { break };
                if let Some(r) = res {
                    on_done(i, &r);
                    results[i] = Some(r);
                }
            }
        });
        let completed = results.iter().filter(|r| r.is_some()).count();
        SchedulerOutcome {
            results,
            completed,
            cancelled: n - completed,
            deadline_hit: deadline_hit.load(Ordering::SeqCst),
        }
    }
}

/// What [`Scheduler::run`] produced.
#[derive(Debug)]
pub struct SchedulerOutcome<R> {
    /// Per-task results, in task order; `None` = cancelled or unstarted.
    pub results: Vec<Option<R>>,
    /// Tasks that finished.
    pub completed: usize,
    /// Tasks that did not (interrupted mid-run or never started).
    pub cancelled: usize,
    /// Whether the deadline fired.
    pub deadline_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_every_task_once() {
        let tasks: Vec<u64> = (0..100).collect();
        let runs = AtomicUsize::new(0);
        let mut streamed = 0usize;
        let out = Scheduler::new(4).run(
            &tasks,
            |_, _, &t| {
                runs.fetch_add(1, Ordering::Relaxed);
                Some(t * t)
            },
            |_, _| streamed += 1,
        );
        assert_eq!(runs.load(Ordering::Relaxed), 100);
        assert_eq!(streamed, 100);
        assert_eq!(out.completed, 100);
        assert_eq!(out.cancelled, 0);
        assert!(!out.deadline_hit);
        for (i, r) in out.results.iter().enumerate() {
            assert_eq!(*r, Some((i as u64) * (i as u64)));
        }
    }

    #[test]
    fn stealing_drains_skewed_work() {
        // One pathological task distribution: worker 0's span is slow,
        // everyone else's work is instant. With stealing, wall time is
        // bounded by the slow tasks spread over all workers.
        let tasks: Vec<u64> = (0..32).collect();
        let out = Scheduler::new(8).with_batch(1).run(
            &tasks,
            |ctx, _, &t| {
                if t < 8 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Some(ctx.worker)
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 32);
        // More than one worker ended up running tasks.
        let workers: std::collections::BTreeSet<usize> =
            out.results.iter().map(|r| r.unwrap()).collect();
        assert!(workers.len() > 1, "no stealing happened: {workers:?}");
    }

    #[test]
    fn batching_claims_contiguous_spans() {
        let tasks: Vec<usize> = (0..64).collect();
        let out = Scheduler::new(1).with_batch(16).run(
            &tasks,
            |ctx, i, _| Some((ctx.worker, i)),
            |_, _| {},
        );
        assert_eq!(out.completed, 64);
    }

    #[test]
    fn oversized_batch_cannot_serialize_the_pool() {
        // --batch larger than the task count: without the fair-share
        // cap, worker 0 would claim everything into its private deque
        // and the other workers would exit immediately.
        let tasks: Vec<u64> = (0..32).collect();
        let out = Scheduler::new(4).with_batch(64).run(
            &tasks,
            |ctx, _, _| {
                std::thread::sleep(Duration::from_millis(5));
                Some(ctx.worker)
            },
            |_, _| {},
        );
        assert_eq!(out.completed, 32);
        let workers: std::collections::BTreeSet<usize> =
            out.results.iter().map(|r| r.unwrap()).collect();
        assert!(workers.len() > 1, "one worker ran everything: {workers:?}");
    }

    #[test]
    fn deadline_cancels_remaining_tasks() {
        let tasks: Vec<u64> = (0..64).collect();
        let deadline = Instant::now() + Duration::from_millis(30);
        let out = Scheduler::new(2)
            .with_batch(1)
            .with_deadline(Some(deadline))
            .run(
                &tasks,
                |ctx, _, _| {
                    // Simulate a cancellable point: poll the flag.
                    for _ in 0..100 {
                        if ctx.cancel.load(Ordering::SeqCst) {
                            return None;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Some(())
                },
                |_, _| {},
            );
        assert!(out.deadline_hit);
        assert!(out.cancelled > 0, "deadline cancelled nothing");
        assert_eq!(out.completed + out.cancelled, 64);
        // Unfinished tasks are None, finished ones Some, and the sum adds up.
        assert_eq!(
            out.results.iter().filter(|r| r.is_none()).count(),
            out.cancelled
        );
    }

    #[test]
    fn deadline_interrupts_a_mid_flight_task() {
        // One long task claimed *before* the deadline passes: only the
        // collector-side watchdog can arm the cancel flag mid-task (the
        // worker loop is busy inside `run`), which is exactly how a
        // machine-level `SimBuilder::cancel_flag` poll gets triggered.
        let tasks = [0u64];
        let t0 = Instant::now();
        let out = Scheduler::new(1)
            .with_deadline(Some(Instant::now() + Duration::from_millis(50)))
            .run(
                &tasks,
                |ctx, _, _| {
                    for _ in 0..2_000 {
                        if ctx.cancel.load(Ordering::SeqCst) {
                            return None;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Some(())
                },
                |_, _| {},
            );
        assert!(out.deadline_hit);
        assert_eq!(out.completed, 0);
        assert_eq!(out.cancelled, 1);
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "watchdog failed to cancel the in-flight task"
        );
    }

    #[test]
    fn external_cancel_flag_stops_the_pool() {
        let tasks: Vec<u64> = (0..1000).collect();
        let flag = Arc::new(AtomicBool::new(false));
        let mut sched = Scheduler::new(2).with_batch(1);
        sched.cancel = Some(Arc::clone(&flag));
        let done = AtomicUsize::new(0);
        let out = sched.run(
            &tasks,
            |_, _, _| {
                if done.fetch_add(1, Ordering::SeqCst) == 10 {
                    flag.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(1));
                Some(())
            },
            |_, _| {},
        );
        assert!(out.completed < 1000, "cancel flag ignored");
        assert!(!out.deadline_hit);
    }

    #[test]
    fn empty_task_list() {
        let out = Scheduler::new(4).run(&[] as &[u64], |_, _, _| Some(()), |_, _| {});
        assert_eq!(out.completed, 0);
        assert!(out.results.is_empty());
    }
}
