//! # mi6-grid
//!
//! Sharded, resumable experiment orchestration. The evaluation is a large
//! variant×workload×seed grid; this crate holds everything needed to run
//! that grid across worker threads, OS processes, and hosts with no
//! coordination beyond a shared directory of JSON-lines shard files:
//!
//! - [`plan`] — the deterministic shard planner: every grid point has a
//!   canonical key string, and a stable hash assigns each key to shard
//!   `i` of `N`. Any set of hosts that covers `0/N .. N-1/N` covers the
//!   grid exactly once, with no scheduler process anywhere.
//! - [`scheduler`] — the in-process work-stealing scheduler: per-worker
//!   queues, batched claims (many short simulations per lock), steal-on-
//!   empty, a cooperative cancel flag, and an optional deadline that
//!   cancels in-flight work so a shard can stop cleanly and resume later.
//! - [`driver`] — the slice-multiplexing machine driver: M in-flight
//!   resumable tasks over K worker threads, runnable tasks in a FIFO,
//!   blocked tasks parked in a min-heap keyed by wake cycle. Built for
//!   tasks that implement the simulator's `step_slice` contract, where
//!   the slice sequence is provably invisible in the results.
//! - [`cache`] — the content-addressed result cache: canonical point key
//!   → journaled line, the admission layer a result-serving daemon sits
//!   on.
//! - [`journal`] — the resumable shard journal: one JSONL file per shard,
//!   appended line-by-line as points complete; restarting a shard reads
//!   the journal back and skips finished points (a torn trailing line
//!   from a kill is detected and recomputed).
//! - [`json`] — a minimal flat-JSON-object parser (the grid interchange
//!   format is hand-rolled JSON lines; the simulator stays
//!   dependency-free).
//! - [`merge`] — coverage validation for merging shard files: every
//!   expected point exactly once, with missing and duplicated points as
//!   hard errors.
//!
//! The crate is deliberately generic — it knows nothing about machines,
//! variants, or workloads. `mi6-bench` supplies the point type, the key
//! function, and the run closure.

pub mod cache;
pub mod driver;
pub mod journal;
pub mod json;
pub mod merge;
pub mod plan;
pub mod scheduler;

pub use cache::ResultCache;
pub use driver::{DriverOutcome, MachineDriver, SliceTask, Step};
pub use journal::Journal;
pub use json::{parse_object, JsonValue};
pub use merge::{validate_coverage, Coverage};
pub use plan::{shard_of, ShardSpec};
pub use scheduler::{Scheduler, SchedulerOutcome, WorkerCtx};
